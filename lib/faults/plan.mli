(** Serializable benign-fault plans.

    A plan parameterises the deterministic fault injector
    ({!Injector}) that sits {e underneath} the Byzantine adversary in
    [Ks_sim.Net] and [Ks_async.Async_net]: it describes how unreliable
    the network itself is, independent of (and never charged against)
    the adversary's corruption budget.  See docs/FAULTS.md. *)

type t = {
  seed : int64;  (** seed of the fault stream, independent of the run seed *)
  drop : float;  (** per-delivery omission probability *)
  dup : float;  (** per-delivery duplication probability *)
  crash : float;  (** per-round, per-processor crash probability *)
  recover : float;  (** per-round, per-crashed-processor recovery probability *)
  max_down : int;  (** cap on simultaneously crashed processors; 0 = no cap *)
  silence : float;  (** per-round, per-processor silence-window start probability *)
  silence_len : int;  (** length of a silence window, in rounds *)
}

(** The trivial plan: all fault rates zero, [seed = 1], [recover = 0.25],
    [silence_len = 1].  Running under [none] is bit-identical to running
    with no plan at all. *)
val none : t

(** A plan is trivial when it can never inject a fault ([drop], [dup],
    [crash] and [silence] all zero).  Trivial plans build no injector. *)
val is_trivial : t -> bool

(** Canonical serialization: a comma-separated [key=value] list with all
    eight fields in fixed order.  [of_string (to_string t) = Ok t]. *)
val to_string : t -> string

(** Parse a [key=value] comma-separated plan.  Unknown keys, rates
    outside [0,1] and non-positive [silence_len] are errors; omitted
    keys keep their {!none} defaults; the empty string is {!none}. *)
val of_string : string -> (t, string) result

(** Named plans for the CLI: [(name, plan, one-line description)].
    The first three reproduce the T16 sweep rows. *)
val presets : (string * t * string) list

(** Resolve a {!presets} name, falling back to {!of_string}. *)
val of_string_or_preset : string -> (t, string) result

(** [with_plan t f] runs [f] with [t] installed as the ambient plan;
    nets created inside pick it up by default.  Restores the previous
    ambient plan on exit (exceptions included). *)
val with_plan : t -> (unit -> 'a) -> 'a

(** The currently installed ambient plan, if any. *)
val ambient : unit -> t option
