(** Deterministic benign-fault injector, one per net.

    The injector sits below the adversary in the delivery pipeline:
    crash/recover churn and silence windows suppress sends before the
    adversary even sees the round's traffic, while per-delivery
    omission/duplication ([transit]) applies to messages already in
    flight — including the adversary's own.  Every decision is drawn
    from a dedicated SplitMix64 stream derived from
    [plan.seed XOR fnv1a(label)], so a plan replays byte-for-byte and
    perturbs no protocol or adversary randomness. *)

type kind = Drop | Dup | Crash | Recover | Silence

val kind_to_string : kind -> string

type t

(** [create plan ~label ~n] builds an injector for an [n]-processor net,
    or [None] when the plan is trivial ({!Plan.is_trivial}) — the caller
    then pays nothing, not even RNG draws. *)
val create : Plan.t -> label:string -> n:int -> t option

(** [begin_round t ~round ~on_fault] advances churn and silence windows
    for [round]: crashed processors may recover (probability
    [plan.recover]), live ones may crash (probability [plan.crash],
    subject to [plan.max_down]) or start a silence window (probability
    [plan.silence], for [plan.silence_len] rounds).  Each state change
    is reported through [on_fault] (with [info] = window length for
    {!Silence}, 0 otherwise), in ascending processor order.  Not calling
    this (as the round-free async net does) leaves churn and silence
    permanently off. *)
val begin_round : t -> round:int -> on_fault:(kind -> proc:int -> info:int -> unit) -> unit

(** [down t p]: is [p] crashed?  A crashed processor neither sends nor
    receives, but keeps its state and resumes on recovery (omission
    semantics; the engine still steps it). *)
val down : t -> int -> bool

(** [silent t p]: is [p] inside a silence window?  Silence suppresses a
    good processor's sends only; it still receives. *)
val silent : t -> int -> bool

(** [send_suppressed t p] = [down t p || silent t p]. *)
val send_suppressed : t -> int -> bool

(** Per-delivery draw for a message in flight: omit it, deliver it
    twice, or deliver it normally.  At most two Bernoulli draws, gated
    on the corresponding rate being positive. *)
val transit : t -> [ `Deliver | `Drop | `Duplicate ]
