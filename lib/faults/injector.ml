(* The fault injector proper.  One injector per net, seeded from
   [plan.seed] mixed with a hash of the net's label so that every net in
   a run (tree, a2e, rabin, ...) draws an independent but reproducible
   fault stream from one plan.  All draws come from the injector's own
   SplitMix64 stream: protocol and adversary randomness are untouched,
   so a run under a trivial plan is bit-identical to an unfaulted run. *)

type kind = Drop | Dup | Crash | Recover | Silence

let kind_to_string = function
  | Drop -> "drop"
  | Dup -> "dup"
  | Crash -> "crash"
  | Recover -> "recover"
  | Silence -> "silence"

type t = {
  plan : Plan.t;
  n : int;
  rng : Ks_stdx.Prng.t;
  is_down : bool array;
  mutable down_count : int;
  (* [silent_until.(p)] is the first round in which [p] may speak again;
     a processor is silent while [round < silent_until.(p)]. *)
  silent_until : int array;
  mutable round : int;
}

(* FNV-1a, 64-bit: a deterministic label hash (Hashtbl.hash would work
   but spelling the mix out keeps the fault stream's derivation
   self-contained and obviously stable across compiler versions). *)
let hash_label s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let create plan ~label ~n =
  if Plan.is_trivial plan then None
  else
    Some
      {
        plan;
        n;
        rng = Ks_stdx.Prng.create (Int64.logxor plan.seed (hash_label label));
        is_down = Array.make n false;
        down_count = 0;
        silent_until = Array.make n 0;
        round = 0;
      }

let down t p = t.is_down.(p)
let silent t p = t.silent_until.(p) > t.round
let send_suppressed t p = t.is_down.(p) || silent t p

let begin_round t ~round ~on_fault =
  t.round <- round;
  let cap = if t.plan.max_down <= 0 then t.n else t.plan.max_down in
  if t.plan.crash > 0. then
    for p = 0 to t.n - 1 do
      if t.is_down.(p) then begin
        if Ks_stdx.Prng.bernoulli t.rng t.plan.recover then begin
          t.is_down.(p) <- false;
          t.down_count <- t.down_count - 1;
          on_fault Recover ~proc:p ~info:0
        end
      end
      else if Ks_stdx.Prng.bernoulli t.rng t.plan.crash && t.down_count < cap
      then begin
        t.is_down.(p) <- true;
        t.down_count <- t.down_count + 1;
        on_fault Crash ~proc:p ~info:0
      end
    done;
  if t.plan.silence > 0. then
    for p = 0 to t.n - 1 do
      if
        (not (silent t p))
        && (not t.is_down.(p))
        && Ks_stdx.Prng.bernoulli t.rng t.plan.silence
      then begin
        t.silent_until.(p) <- round + t.plan.silence_len;
        on_fault Silence ~proc:p ~info:t.plan.silence_len
      end
    done

let transit t =
  if t.plan.drop > 0. && Ks_stdx.Prng.bernoulli t.rng t.plan.drop then `Drop
  else if t.plan.dup > 0. && Ks_stdx.Prng.bernoulli t.rng t.plan.dup then
    `Duplicate
  else `Deliver
