(* Serializable fault plans.  A plan is a small record of benign-fault
   rates; the canonical string form is a comma-separated key=value list
   so a plan travels unchanged through CLI flags, experiment-table
   captions and trace headers.  Faults drawn from a plan never consume
   the adversary's corruption budget: they model the network being bad,
   not the adversary being clever. *)

type t = {
  seed : int64;
  drop : float;
  dup : float;
  crash : float;
  recover : float;
  max_down : int;
  silence : float;
  silence_len : int;
}

let none =
  {
    seed = 1L;
    drop = 0.;
    dup = 0.;
    crash = 0.;
    recover = 0.25;
    max_down = 0;
    silence = 0.;
    silence_len = 1;
  }

let is_trivial t = t.drop = 0. && t.dup = 0. && t.crash = 0. && t.silence = 0.

let to_string t =
  Printf.sprintf
    "seed=%Ld,drop=%g,dup=%g,crash=%g,recover=%g,max_down=%d,silence=%g,silence_len=%d"
    t.seed t.drop t.dup t.crash t.recover t.max_down t.silence t.silence_len

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_float k v =
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | Some _ -> err "fault plan: %s=%s is not a probability in [0,1]" k v
    | None -> err "fault plan: %s=%s is not a number" k v
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | _ -> err "fault plan: %s=%s is not a non-negative integer" k v
  in
  let fields =
    String.split_on_char ',' s
    |> List.filter (fun f -> String.trim f <> "")
    |> List.map String.trim
  in
  let step acc field =
    match acc with
    | Error _ as e -> e
    | Ok t -> (
      match String.index_opt field '=' with
      | None -> err "fault plan: expected key=value, got %S" field
      | Some i -> (
        let k = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match k with
        | "seed" -> (
          match Int64.of_string_opt v with
          | Some seed -> Ok { t with seed }
          | None -> err "fault plan: seed=%s is not an integer" v)
        | "drop" -> Result.map (fun drop -> { t with drop }) (parse_float k v)
        | "dup" -> Result.map (fun dup -> { t with dup }) (parse_float k v)
        | "crash" -> Result.map (fun crash -> { t with crash }) (parse_float k v)
        | "recover" ->
          Result.map (fun recover -> { t with recover }) (parse_float k v)
        | "max_down" ->
          Result.map (fun max_down -> { t with max_down }) (parse_int k v)
        | "silence" ->
          Result.map (fun silence -> { t with silence }) (parse_float k v)
        | "silence_len" -> (
          match int_of_string_opt v with
          | Some i when i >= 1 -> Ok { t with silence_len = i }
          | _ -> err "fault plan: silence_len=%s is not a positive integer" v)
        | _ -> err "fault plan: unknown key %S" k))
  in
  List.fold_left step (Ok none) fields

(* Named presets for the CLI ([ba_sim --faults NAME], --list-faults).
   The first three mirror the T16 sweep rows so a table cell can be
   reproduced from the command line verbatim. *)
let presets =
  let plan s = match of_string s with Ok p -> p | Error e -> invalid_arg e in
  [
    ("lossy", plan "seed=21,drop=0.02", "2% omission on every delivery");
    ( "choppy",
      plan "seed=22,drop=0.05,dup=0.02",
      "5% omission plus 2% duplication" );
    ( "churn",
      plan "seed=23,crash=0.02,recover=0.25,max_down=8",
      "2%/round crashes, 25%/round recovery, at most 8 down" );
    ( "flaky",
      plan "seed=24,silence=0.05,silence_len=3",
      "5%/round chance of a 3-round silence window per processor" );
  ]

let of_string_or_preset s =
  match List.find_opt (fun (name, _, _) -> String.equal name s) presets with
  | Some (_, p, _) -> Ok p
  | None -> of_string s

(* Ambient plan, mirroring Ks_monitor.Hub: [Net.create] and
   [Async_net.create] default their [?faults] argument to the ambient
   plan, so a single [with_plan] around a run covers every net the run
   creates (tree, a2e, baselines) without threading a parameter through
   each layer. *)

let current : t option ref = ref None
let ambient () = !current

let with_plan t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f
