(** (n, t+1) threshold secret sharing (Shamir 1979), the primitive behind
    the paper's [secretShare(s)] (Definition 1).

    A dealer hides a secret as the constant term of a uniformly random
    polynomial of degree [t]; holder [i] receives the evaluation at a
    public non-zero point [x_i].  Any [t+1] shares reconstruct the secret;
    any [t] or fewer reveal nothing (perfect hiding, Lemma 1 of the
    paper).

    The paper sets [t = n/2] ("any t in [n/3, 2n/3] would work"); the
    protocol stack uses [t = (holders - 1) / 2] so that a strict majority
    reconstructs.

    Reconstruction comes in two flavours: [reconstruct] trusts its input
    (use when shares travelled only between good processors), while
    [reconstruct_robust] is a Reed–Solomon decoder (Berlekamp–Welch) that
    tolerates up to [(m - t - 1) / 2] corrupted shares out of [m] — this
    is what lets a good node with a < 1/3 corrupt membership still recover
    a secret during [sendDown]. *)

module Make (F : Ks_field.Field_intf.S) : sig
  type share = { index : int; value : F.t }
  (** [index] is the holder's public evaluation point minus one: holder
      [i] holds the evaluation at [of_int (index + 1)], never at zero. *)

  (** [deal rng ~threshold ~holders secret] produces [holders] shares such
      that any [threshold + 1] reconstruct and any [threshold] reveal
      nothing.  Requires [0 <= threshold < holders < F.order - 1]. *)
  val deal : Ks_stdx.Prng.t -> threshold:int -> holders:int -> F.t -> share array

  (** [reconstruct ~threshold shares] — Lagrange interpolation at zero
      using the first [threshold + 1] distinct shares.  Returns [None] if
      fewer than [threshold + 1] distinct indices are present.  Garbage in,
      garbage out: corrupted shares yield a wrong (but well-defined)
      secret. *)
  val reconstruct : threshold:int -> share list -> F.t option

  (** [reconstruct_robust ~threshold shares] — Berlekamp–Welch decoding.
      With [m] distinct shares of which at most [(m - threshold - 1) / 2]
      are corrupted, returns [Some secret]; returns [None] when no
      polynomial of degree [<= threshold] agrees with enough shares. *)
  val reconstruct_robust : threshold:int -> share list -> F.t option

  (** [deal_at rng ~threshold ~xs secret] — like [deal] but evaluating at
      the points [of_int (xs.(i) + 1)]: used when holders are identified
      by member {e positions} rather than 0..n-1 (the uplink pattern).
      The [xs] must be distinct and non-negative. *)
  val deal_at : Ks_stdx.Prng.t -> threshold:int -> xs:int array -> F.t -> share array

  (** Sharing of a sequence of words: the [i]-th element of the result is
      holder [i]'s vector of shares (one per word, independent dealer
      polynomials).  This is [secretShare(s)] for a sequence [s]. *)
  val deal_vector :
    Ks_stdx.Prng.t -> threshold:int -> holders:int -> F.t array -> share array array

  (** [deal_vector_at rng ~threshold ~xs words] — vector sharing at given
      points; result.(i) is the share vector (one value per word) for the
      holder at [xs.(i)]. *)
  val deal_vector_at :
    Ks_stdx.Prng.t -> threshold:int -> xs:int array -> F.t array -> F.t array array

  (** [reconstruct_vectors ~threshold holders] — decode a whole share
      {e vector} at once, exploiting that corruption is per-{e holder}:
      [holders] is a list of [(x_index, vector)] pairs, all vectors of
      equal length.  The good-holder set is identified once (fast path:
      unanimous consistency on a probe word; slow path: Berlekamp–Welch
      on the probe), then every word is a Lagrange dot-product.  Words on
      which the two verification subsets disagree fall back to per-word
      Berlekamp–Welch.  Returns [None] when no degree-[threshold]
      polynomial explains enough holders — and, as a detection hook for
      graceful degradation, increments [?failures] once per such failed
      decode so callers can retry or report instead of silently losing
      the value. *)
  val reconstruct_vectors :
    ?failures:int ref -> threshold:int -> (int * F.t array) list -> F.t array option

  (** [reconstruct_vector ~threshold per_word] reconstructs each word
      independently; [None] if any word fails. *)
  val reconstruct_vector : threshold:int -> share list array -> F.t array option

  val reconstruct_vector_robust : threshold:int -> share list array -> F.t array option
end
