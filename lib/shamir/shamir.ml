module Make (F : Ks_field.Field_intf.S) = struct
  module P = Ks_field.Poly.Make (F)
  module L = Ks_field.Linalg.Make (F)

  type share = { index : int; value : F.t }

  let point index = F.of_int (index + 1)

  let deal rng ~threshold ~holders secret =
    if threshold < 0 then invalid_arg "Shamir.deal: negative threshold";
    if holders <= threshold then invalid_arg "Shamir.deal: holders <= threshold";
    if holders >= F.order - 1 then invalid_arg "Shamir.deal: too many holders for field";
    let poly = P.random rng ~degree:threshold ~const:secret in
    Array.init holders (fun index -> { index; value = P.eval poly (point index) })

  let deal_at rng ~threshold ~xs secret =
    if threshold < 0 then invalid_arg "Shamir.deal_at: negative threshold";
    let holders = Array.length xs in
    if holders <= threshold then invalid_arg "Shamir.deal_at: holders <= threshold";
    Array.iter (fun x -> if x < 0 then invalid_arg "Shamir.deal_at: negative x") xs;
    let poly = P.random rng ~degree:threshold ~const:secret in
    Array.map (fun index -> { index; value = P.eval poly (point index) }) xs

  (* Keep one share per distinct index, in first-seen order.  Protocol
     indices are small, so a one-word bitmask usually replaces the
     hashtable; the hashtable remains for out-of-range indices. *)
  let dedup shares =
    if List.for_all (fun s -> s.index >= 0 && s.index < 63) shares then begin
      let seen = ref 0 in
      List.filter
        (fun s ->
          let bit = 1 lsl s.index in
          if !seen land bit <> 0 then false
          else begin
            seen := !seen lor bit;
            true
          end)
        shares
    end
    else begin
      let seen = Hashtbl.create 16 in
      List.filter
        (fun s ->
          if Hashtbl.mem seen s.index then false
          else begin
            Hashtbl.add seen s.index ();
            true
          end)
        shares
    end

  let reconstruct ~threshold shares =
    let shares = dedup shares in
    if List.length shares < threshold + 1 then None
    else begin
      let chosen = List.filteri (fun i _ -> i <= threshold) shares in
      let pts = List.map (fun s -> (point s.index, s.value)) chosen in
      Some (P.lagrange_eval pts F.zero)
    end

  (* Berlekamp–Welch: find E monic of degree e and Q of degree <= t + e
     with Q(x_i) = y_i * E(x_i) for all i; then the message polynomial is
     Q / E.  We iterate e downward from its maximum until a consistent
     system yields a divisible pair that matches enough points. *)
  let berlekamp_welch_poly ~threshold pts =
    let m = Array.length pts in
    let k = threshold + 1 in
    if m < k then None
    else begin
      let e_max = (m - k) / 2 in
      let matches poly =
        Array.fold_left
          (fun acc (x, y) -> if F.equal (P.eval poly x) y then acc + 1 else acc)
          0 pts
      in
      let try_e e =
        (* Unknowns: q_0..q_{k-1+e}, e_0..e_{e-1}; E = X^e + sum e_j X^j.
           Rows are built with running powers — per-entry [F.pow] would
           redo a square-and-multiply ladder for every cell. *)
        let nq = k + e in
        let ncols = nq + e in
        let a =
          Array.init m (fun i ->
              let x, y = pts.(i) in
              let row = Array.make ncols F.zero in
              let xp = ref F.one in
              for c = 0 to nq - 1 do
                row.(c) <- !xp;
                xp := F.mul !xp x
              done;
              let xp = ref F.one in
              for c = nq to ncols - 1 do
                row.(c) <- F.neg (F.mul y !xp);
                xp := F.mul !xp x
              done;
              row)
        in
        let b =
          Array.init m (fun i ->
              let x, y = pts.(i) in
              F.mul y (F.pow x e))
        in
        match L.solve a b with
        | None -> None
        | Some sol ->
          let q = P.of_coeffs (Array.sub sol 0 nq) in
          let e_coeffs = Array.append (Array.sub sol nq e) [| F.one |] in
          let err = P.of_coeffs e_coeffs in
          let quot, rem = P.divmod q err in
          if P.degree rem >= 0 then None
          else if P.degree quot > threshold then None
          else if
            (* Accept only with at least one redundant matching point:
               k points always fit a degree-(k-1) polynomial, so an
               exactly-k fit carries no evidence.  Rejecting it turns
               undetectable corruption into an erasure, which the
               protocol's majority layers absorb. *)
            matches quot >= Stdlib.max (k + 1) (m - e_max)
          then Some quot
          else None
      in
      let rec search e =
        if e < 0 then None
        else match try_e e with Some p -> Some p | None -> search (e - 1)
      in
      search e_max
    end

  (* Maximum-likelihood list decoding: gather candidate polynomials from
     every cyclic window of k consecutive points (a window is clean with
     good probability when errors are scattered) plus the Berlekamp–Welch
     decode, score each candidate by how many points it explains, and
     accept the uniquely best-supported codeword with at least k + 1
     supporters.  This decodes far beyond the half-distance radius when
     corruption is uncoordinated, yet a coordinated wrong codeword must
     out-support the truth to win — impossible while honest pieces hold a
     majority — and an exact tie yields None rather than a guess.

     The accepted codeword is returned as an evaluation closure rather
     than a coefficient vector: every caller only ever evaluates it (at
     zero, or at the holder points), and the winning window's barycentric
     evaluator is already in hand when the decision falls — interpolating
     coefficients would redo that work with k extra inversions. *)
  let best_codeword ~threshold pts =
    let m = Array.length pts in
    let k = threshold + 1 in
    if m < k + 1 then None
    else if m > 62 then
      (* Bitmask support sets need m to fit an int; fall back to plain
         Berlekamp–Welch for very wide deals (not used by the protocol). *)
      Option.map P.eval (berlekamp_welch_poly ~threshold pts)
    else begin
      let e_max = (m - k) / 2 in
      (* Within the classical radius the codeword is unique — accept
         immediately. *)
      let radius_accept = Stdlib.max (k + 1) (m - e_max) in
      let support_of eval =
        let mask = ref 0 and count = ref 0 in
      for p = 0 to m - 1 do
          let x, y = pts.(p) in
          if F.equal (eval x) y then begin
            mask := !mask lor (1 lsl p);
            incr count
          end
        done;
        (!mask, !count)
      in
      (* Candidate subsets: cyclic windows at several strides — each is
         clean (error-free) with decent probability when errors are
         scattered, and different strides decorrelate the windows.  A
         stride works only when its orbit is long enough for k distinct
         indices. *)
      let strides =
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        List.filter (fun s -> s < m && m / gcd s m >= k) [ 1; 3; 7; 11; 13 ]
      in
      (* Track the two best distinct codewords (a support mask of >= k+1
         points identifies a codeword uniquely). *)
      let best = ref (0, 0) and second_count = ref 0 in
      let winner = ref None in
      let eval_of_subset idx =
        (* Lagrange through the window, in barycentric form: weights with
           one batch inversion up front, then O(k) multiplications per
           evaluation via prefix/suffix hole products (no division). *)
        let sub_xs = Array.map (fun i -> fst pts.(i)) idx in
        let denoms =
          Array.mapi
            (fun a xa ->
              let d = ref F.one in
              Array.iteri
                (fun b xb -> if b <> a then d := F.mul !d (F.sub xa xb))
                sub_xs;
              !d)
            sub_xs
        in
        let inv_denoms = P.batch_inv denoms in
        let cs = Array.mapi (fun a i -> F.mul (snd pts.(i)) inv_denoms.(a)) idx in
        let prefix = Array.make (k + 1) F.one in
        fun x ->
          for a = 0 to k - 1 do
            prefix.(a + 1) <- F.mul prefix.(a) (F.sub x sub_xs.(a))
          done;
          let acc = ref F.zero in
          let suffix = ref F.one in
          for a = k - 1 downto 0 do
            acc := F.add !acc (F.mul cs.(a) (F.mul prefix.(a) !suffix));
            suffix := F.mul !suffix (F.sub x sub_xs.(a))
          done;
          !acc
      in
      (* Support masks of codewords already scored.  A window lying wholly
         inside a scored codeword's support interpolates that very
         codeword (k points pin a degree-(k-1) polynomial), and re-scoring
         a codeword never changes the best/second tracking — so skip the
         whole derivation.  Distinct strides rediscover the same windows
         constantly, which made this the dominant cost.  Windows are
         generated lazily, stride by stride in scan order: the mask check
         runs before the index array is even materialised, and an
         in-radius acceptance stops the sweep immediately. *)
      let seen = ref [] in
      let stopped = ref false in
      List.iter
        (fun s ->
          let start = ref 0 in
          while (not !stopped) && !start < m do
            let wmask = ref 0 in
            for j = 0 to k - 1 do
              wmask := !wmask lor (1 lsl ((!start + (j * s)) mod m))
            done;
            let wmask = !wmask in
            if not (List.exists (fun msk -> msk lor wmask = msk) !seen) then begin
              let idx = Array.init k (fun j -> (!start + (j * s)) mod m) in
              let eval = eval_of_subset idx in
              let mask, count = support_of eval in
              if count >= radius_accept then begin
                winner := Some eval;
                stopped := true
              end
              else begin
                seen := mask :: !seen;
                let bmask, bcount = !best in
                if mask <> bmask then begin
                  if count > bcount then begin
                    if bcount > !second_count then second_count := bcount;
                    best := (mask, count)
                  end
                  else if count > !second_count then second_count := count
                end
              end
            end;
            incr start
          done)
        strides;
      match !winner with
      | Some eval -> Some eval
      | None ->
        (* Berlekamp–Welch as a last candidate, then the tie rule. *)
        let bw = berlekamp_welch_poly ~threshold pts in
        let bw_scored =
          Option.map
            (fun poly ->
              let mask, count = support_of (P.eval poly) in
              (poly, mask, count))
            bw
        in
        let bmask, bcount = !best in
        (match bw_scored with
         | Some (poly, mask, count) when mask <> bmask && count > bcount ->
           if count >= k + 1 && count > bcount then Some (P.eval poly) else None
         | _ ->
           if bcount >= k + 1 && bcount > !second_count then begin
             (* Rebuild the best window's codeword from its support. *)
             let pts_of_mask =
               List.filteri (fun i _ -> bmask land (1 lsl i) <> 0)
                 (Array.to_list pts)
             in
             let chosen = List.filteri (fun i _ -> i < k) pts_of_mask in
             Some (P.evaluator chosen)
           end
           else None)
    end

  let reconstruct_robust ~threshold shares =
    let shares = dedup shares in
    let pts = Array.of_list (List.map (fun s -> (point s.index, s.value)) shares) in
    Option.map (fun eval -> eval F.zero) (best_codeword ~threshold pts)

  let deal_vector rng ~threshold ~holders words =
    let per_word = Array.map (fun w -> deal rng ~threshold ~holders w) words in
    (* Transpose: per_word.(w).(h) -> per_holder.(h).(w). *)
    Array.init holders (fun h -> Array.map (fun shares -> shares.(h)) per_word)

  let deal_vector_at rng ~threshold ~xs words =
    let per_word = Array.map (fun w -> deal_at rng ~threshold ~xs w) words in
    Array.init (Array.length xs) (fun h ->
        Array.map (fun shares -> shares.(h).value) per_word)

  let reconstruct_with f ~threshold per_word =
    let out = Array.map (fun shares -> f ~threshold shares) per_word in
    if Array.for_all Option.is_some out then Some (Array.map Option.get out) else None

  let reconstruct_vector ~threshold per_word =
    reconstruct_with reconstruct ~threshold per_word

  let reconstruct_vector_robust ~threshold per_word =
    reconstruct_with reconstruct_robust ~threshold per_word

  (* Lagrange coefficients at zero for a point set given as x-indices,
     with the k divisions collapsed into one batch inversion.  These
     weights are computed once per verification subset and reused for
     every word of the vector. *)
  let weights_at_zero xs =
    let nums = Array.make (Array.length xs) F.one in
    let denoms = Array.make (Array.length xs) F.one in
    Array.iteri
      (fun i xi ->
        let pi = point xi in
        let num = ref F.one and denom = ref F.one in
        Array.iteri
          (fun j xj ->
            if i <> j then begin
              let pj = point xj in
              num := F.mul !num pj;
              denom := F.mul !denom (F.sub pj pi)
            end)
          xs;
        nums.(i) <- !num;
        denoms.(i) <- !denom)
      xs;
    let inv_denoms = P.batch_inv denoms in
    Array.mapi (fun i num -> F.mul num inv_denoms.(i)) nums

  let reconstruct_vectors ~threshold holders =
    let holders =
      if List.for_all (fun (x, _) -> x >= 0 && x < 63) holders then begin
        let seen = ref 0 in
        List.filter
          (fun (x, _) ->
            let bit = 1 lsl x in
            if !seen land bit <> 0 then false
            else begin
              seen := !seen lor bit;
              true
            end)
          holders
      end
      else begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun (x, _) ->
            if Hashtbl.mem seen x then false
            else begin
              Hashtbl.add seen x ();
              true
            end)
          holders
      end
    in
    let m = List.length holders in
    let k = threshold + 1 in
    (* m = k would be vacuously consistent (see berlekamp_welch_poly);
       demand one redundant holder. *)
    if m < k + 1 then None
    else begin
      let words =
        match holders with (_, v) :: _ -> Array.length v | [] -> 0
      in
      if List.exists (fun (_, v) -> Array.length v <> words) holders then
        invalid_arg "Shamir.reconstruct_vectors: ragged vectors";
      if words = 0 then Some [||]
      else begin
        let xs = Array.of_list (List.map fst holders) in
        let vs = Array.of_list (List.map snd holders) in
        let probe_pts = Array.map2 (fun x v -> (point x, v.(0))) xs vs in
        (* Identify the honest holders once, on the probe word: fast path
           interpolates through the first k and hopes for unanimity; the
           slow path decodes the probe with Berlekamp–Welch. *)
        let honest =
          let first_k = Array.to_list (Array.sub probe_pts 0 k) in
          (* One evaluator for the probe subset, shared across all m
             support checks: O(k) per point instead of a fresh O(k²)
             Lagrange sum with per-term divisions. *)
          let eval_first_k = P.evaluator first_k in
          let unanimous =
            Array.for_all (fun (x, y) -> F.equal (eval_first_k x) y) probe_pts
          in
          if unanimous then Some (Array.init m (fun i -> i))
          else
            match best_codeword ~threshold probe_pts with
            | None -> None
            | Some eval ->
              let fit = ref [] in
              Array.iteri
                (fun i (x, y) -> if F.equal (eval x) y then fit := i :: !fit)
                probe_pts;
              Some (Array.of_list (List.rev !fit))
        in
        match honest with
        | None -> None
        | Some fit when Array.length fit < k -> None
        | Some fit ->
          (* Two verification subsets: a holder lying only on later words
             is caught when the subsets disagree, triggering a per-word
             Berlekamp–Welch decode. *)
          let nfit = Array.length fit in
          let sub_a = Array.sub fit 0 k in
          let sub_b = Array.sub fit (nfit - k) k in
          let xs_of sub = Array.map (fun i -> xs.(i)) sub in
          let same_subsets = nfit = k in
          let w_a = weights_at_zero (xs_of sub_a) in
          (* The second subset only matters when it differs from the
             first; its weights go unused otherwise. *)
          let w_b = if same_subsets then w_a else weights_at_zero (xs_of sub_b) in
          (* Weighted sum straight out of the holder vectors — no per-word
             value array. *)
          let dot_sub weights sub w =
            let acc = ref F.zero in
            for i = 0 to k - 1 do
              acc := F.add !acc (F.mul weights.(i) vs.(sub.(i)).(w))
            done;
            !acc
          in
          let out = Array.make words F.zero in
          let ok = ref true in
          for w = 0 to words - 1 do
            if !ok then begin
              let va = dot_sub w_a sub_a w in
              let agreed = same_subsets || F.equal va (dot_sub w_b sub_b w) in
              if agreed then out.(w) <- va
              else begin
                let pts = Array.map2 (fun x v -> (point x, v.(w))) xs vs in
                match best_codeword ~threshold pts with
                | Some eval -> out.(w) <- eval F.zero
                | None -> ok := false
              end
            end
          done;
          if !ok then Some out else None
      end
    end

  (* Detection hook for graceful degradation: callers that can retry or
     report (Ks_core.Comm, the fault experiments) count failed decodes
     where they happen instead of silently losing them. *)
  let reconstruct_vectors ?failures ~threshold holders =
    match reconstruct_vectors ~threshold holders with
    | Some _ as s -> s
    | None ->
      (match failures with Some r -> incr r | None -> ());
      None
end
