(** The reproduction experiments — one function per table of
    EXPERIMENTS.md (T1–T10, DESIGN.md §3).

    Every function prints its table (via [Ks_stdx.Table]) and returns the
    rows so tests can assert on them.  [quick] shrinks sizes/seeds to
    smoke-test scale; the benchmark executable runs the full versions. *)

type row = string list

(** Data point shared by T1/T2/T10 (one full Everywhere run + baselines
    at one n). *)
type scaling_point = {
  n : int;
  ks_ae_bits : float;  (** max bits/processor, tournament phase *)
  ks_a2e_bits : float;  (** max bits/processor, amplification phase *)
  ks_total_bits : float;
  ks_rounds : float;
  rabin_bits : float;
  rabin_rounds : float;
  king_bits : float;
  king_rounds : float;
  ks_success : bool;
}

(** [collect_scaling ~ns ~seeds] — runs the full protocol and both
    baselines at each n (T1/T2/T10 share this data). *)
val collect_scaling : ns:int list -> seeds:int list -> scaling_point list

val t1_bits : scaling_point list -> row list
val t2_latency : scaling_point list -> row list
val t10_crossover : scaling_point list -> row list

(** T3: almost-everywhere agreement fraction vs adversary scenario. *)
val t3_ae_agreement : ?ns:int list -> ?seeds:int list -> unit -> row list

(** T4: Algorithm 5 standalone — failure probability vs good-coin rounds,
    and agreement vs corruption fraction. *)
val t4_aeba_coins : ?n:int -> ?trials:int -> unit -> row list

(** T5: Feige elections under a rushing bin-stuffing adversary. *)
val t5_election : ?candidates:int -> ?trials:int -> unit -> row list

(** T6: Algorithm 3 standalone — success probability, Õ(√n) bits,
    overload events; honest and flooding adversaries. *)
val t6_a2e : ?ns:int list -> ?seeds:int list -> unit -> row list

(** T7: secret-sharing hiding (Lemma 1) — distinguishing advantage with
    t vs t+1 shares, through iterated resharing. *)
val t7_hiding : ?trials:int -> unit -> row list

(** T8: sampler quality (Lemma 2) — measured δ and max degree vs d. *)
val t8_samplers : ?r:int -> ?s:int -> unit -> row list

(** T9: everywhere-BA success rate vs corruption fraction (the 1/3
    threshold). *)
val t9_threshold : ?n:int -> ?seeds:int list -> unit -> row list

(** T11: ablations of the design choices DESIGN.md calls out (sharing
    threshold policy, amplification fan-out, round budgets). *)
val t11_ablation : ?n:int -> ?seeds:int list -> unit -> row list

(** T12: universe reduction (§1.2) and the array-vs-processor election
    motivation (§1.3) — committee representativeness before and after a
    post-election hunt, with coin quality measured after the hunt. *)
val t12_universe : ?n:int -> ?seeds:int list -> unit -> row list

(** T13: the KSSV'06 processor tournament (the paper's non-adaptive
    predecessor) against static vs adaptive adversaries. *)
val t13_kssv : ?n:int -> ?seeds:int list -> unit -> row list

(** T14: the two parameter profiles side by side (pure formulas). *)
val t14_parameters : unit -> row list

(** T15: the §6 open problem explored — asynchronous binary agreement
    (MMR'14) with a common-coin oracle, under hostile scheduling. *)
val t15_async : ?ns:int list -> ?seeds:int list -> unit -> row list

(** T16: breaking points under benign faults (docs/FAULTS.md) crossed
    with Byzantine corruption past 1/3 — agreement and degradation rate,
    retry rounds taken, residual decode failures, bit overhead relative
    to the fault-free cell, and the Rabin baseline under the same plan. *)
val t16_faults : ?n:int -> ?seeds:int list -> unit -> row list

(** T17: survival under the active-attack library (docs/ATTACKS.md) —
    every {!Ks_attacks} strategy crossed with corruption fraction (past
    1/3 on purpose) and with the provable-misbehaviour quarantine armed
    and disarmed, with agreement rate, bits, rounds, quarantine
    convictions, and the Rabin baseline under the same attack's votes. *)
val t17_attacks : ?n:int -> ?seeds:int list -> unit -> row list

(** The always-on accounting monitors every experiment runs under:
    corruption-budget, Õ(√n) bit budget and polylog round bound (the
    latter two scoped to the King–Saia phase networks — the O(n²)
    baselines exist to violate them). *)
val standard_monitors : unit -> Ks_monitor.Monitor.t list

(** [monitored ?trace name f] — run [f] under an ambient hub with
    {!standard_monitors} (or [?monitors]); on any violation, print the
    violation table and raise [Failure]. *)
val monitored :
  ?trace:Ks_monitor.Trace.sink ->
  ?monitors:(unit -> Ks_monitor.Monitor.t list) ->
  string ->
  (unit -> 'a) ->
  'a

(** [run_all ~quick ()] — every table, in order, each net-driving table
    guarded by {!monitored}.  [?trace] streams all of them into one
    JSONL sink (closed on return). *)
val run_all : ?quick:bool -> ?trace:Ks_monitor.Trace.sink -> unit -> unit
