module Prng = Ks_stdx.Prng
module Stats = Ks_stdx.Stats
module Table = Ks_stdx.Table
module Intmath = Ks_stdx.Intmath

type row = string list

let seed_of n seed = Int64.add (Int64.mul 1000003L (Int64.of_int n)) (Int64.of_int seed)

type scaling_point = {
  n : int;
  ks_ae_bits : float;
  ks_a2e_bits : float;
  ks_total_bits : float;
  ks_rounds : float;
  rabin_bits : float;
  rabin_rounds : float;
  king_bits : float;
  king_rounds : float;
  ks_success : bool;
}

let mean_of xs = Stats.mean (Array.of_list xs)

(* One full King–Saia run plus both baselines at a given n/seed, all under
   a 25% static Byzantine adversary. *)
let scaling_run ~n ~seed =
  let params = Ks_core.Params.practical n in
  let scenario = Attacks.byzantine_static in
  let budget = Attacks.budget_of scenario ~params in
  let rng = Prng.create (seed_of n seed) in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  let tree = Ks_topology.Tree.build (Prng.split rng) (Ks_core.Params.tree_config params) in
  let res =
    Ks_core.Everywhere.run ~params ~seed:(seed_of n seed) ~inputs
      ~behavior:scenario.Attacks.behavior
      ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
      ~a2e_strategy:(fun ~carried ~coin ->
        Attacks.a2e_strategy scenario ~params ~coin ~carried)
      ~budget ()
  in
  let lg = Intmath.ceil_log2 n in
  let rabin =
    Ks_baselines.Rabin.run ~seed:(seed_of n seed) ~n ~budget
      ~rounds:((2 * lg) + 6) ~epsilon:params.Ks_core.Params.epsilon ~inputs
      ~strategy:(Attacks.vote_flipper scenario ~params)
  in
  let pk_faults = Stdlib.max 1 (n / 5) in
  let king =
    Ks_baselines.Phase_king.run ~seed:(seed_of n seed) ~n ~budget:pk_faults
      ~faults:pk_faults ~inputs
      ~strategy:(Attacks.generic_strategy scenario ~params)
  in
  (res, rabin, king)

let collect_scaling ~ns ~seeds =
  List.map
    (fun n ->
      let runs = List.map (fun seed -> scaling_run ~n ~seed) seeds in
      let f sel = mean_of (List.map sel runs) in
      {
        n;
        ks_ae_bits = f (fun (r, _, _) -> float_of_int r.Ks_core.Everywhere.max_sent_bits_ae);
        ks_a2e_bits = f (fun (r, _, _) -> float_of_int r.Ks_core.Everywhere.max_sent_bits_a2e);
        ks_total_bits =
          f (fun (r, _, _) -> float_of_int r.Ks_core.Everywhere.max_sent_bits_total);
        ks_rounds =
          f (fun (r, _, _) ->
              float_of_int (r.Ks_core.Everywhere.ae_rounds + r.Ks_core.Everywhere.a2e_rounds));
        rabin_bits = f (fun (_, r, _) -> float_of_int r.Ks_baselines.Outcome.max_sent_bits);
        rabin_rounds = f (fun (_, r, _) -> float_of_int r.Ks_baselines.Outcome.rounds);
        king_bits = f (fun (_, _, k) -> float_of_int k.Ks_baselines.Outcome.max_sent_bits);
        king_rounds = f (fun (_, _, k) -> float_of_int k.Ks_baselines.Outcome.rounds);
        ks_success = List.for_all (fun (r, _, _) -> r.Ks_core.Everywhere.success) runs;
      })
    ns

let slope pts sel =
  let ns = Array.of_list (List.map (fun p -> float_of_int p.n) pts) in
  let ys = Array.of_list (List.map sel pts) in
  fst (Stats.loglog_slope ns ys)

let t1_bits pts =
  let rows =
    List.map
      (fun p ->
        [
          Table.fint p.n;
          Table.fbits p.ks_ae_bits;
          Table.fbits p.ks_a2e_bits;
          Table.fbits p.ks_total_bits;
          Table.fbits p.rabin_bits;
          Table.fbits p.king_bits;
          (if p.ks_success then "yes" else "NO");
        ])
      pts
  in
  let footer =
    [
      "slope";
      Printf.sprintf "n^%.2f" (slope pts (fun p -> p.ks_ae_bits));
      Printf.sprintf "n^%.2f" (slope pts (fun p -> p.ks_a2e_bits));
      Printf.sprintf "n^%.2f" (slope pts (fun p -> p.ks_total_bits));
      Printf.sprintf "n^%.2f" (slope pts (fun p -> p.rabin_bits));
      Printf.sprintf "n^%.2f" (slope pts (fun p -> p.king_bits));
      "";
    ]
  in
  (* The Õ(√n) law, made visible: amplification bits divided by
     √n·log₂ n should be near-constant across the sweep. *)
  let normalised =
    "amplify/(sqrt n * lg n)"
    :: List.map
         (fun p ->
           let norm =
             p.ks_a2e_bits
             /. (sqrt (float_of_int p.n)
                 *. float_of_int (Intmath.ceil_log2 p.n))
           in
           Printf.sprintf "%.0f b" norm)
         pts
    @ List.init (6 - List.length pts) (fun _ -> "")
  in
  let normalised = List.filteri (fun i _ -> i < 7) normalised in
  let rows = rows @ [ footer; normalised ] in
  Table.print ~title:"T1 (Thm 1): max bits sent per good processor"
    ~headers:[ "n"; "KS tournament"; "KS amplify"; "KS total"; "Rabin"; "PhaseKing"; "agree" ]
    rows;
  rows

let t2_latency pts =
  let rows =
    List.map
      (fun p ->
        [
          Table.fint p.n;
          Table.ffloat ~decimals:0 p.ks_rounds;
          Table.ffloat ~decimals:0 p.rabin_rounds;
          Table.ffloat ~decimals:0 p.king_rounds;
        ])
      pts
  in
  Table.print ~title:"T2 (Thm 1): latency in synchronous rounds"
    ~headers:[ "n"; "King-Saia"; "Rabin"; "PhaseKing" ]
    rows;
  rows

let t10_crossover pts =
  let fit sel =
    let ns = Array.of_list (List.map (fun p -> float_of_int p.n) pts) in
    let ys = Array.of_list (List.map sel pts) in
    let lx = Array.map log ns and ly = Array.map log ys in
    let a, b, _ = Stats.linear_fit lx ly in
    (a, b)
  in
  let a_ks, b_ks = fit (fun p -> p.ks_total_bits) in
  let a_r, b_r = fit (fun p -> p.rabin_bits) in
  let a_k, b_k = fit (fun p -> p.king_bits) in
  let crossover (a1, b1) (a2, b2) =
    (* a1 + b1 x = a2 + b2 x, x = ln n *)
    if b2 <= b1 then None else Some (exp ((a1 -. a2) /. (b2 -. b1)))
  in
  let show = function
    | Some x when x < 1e15 -> Printf.sprintf "%.2e" x
    | Some _ -> ">1e15"
    | None -> "never"
  in
  let rows =
    [
      [ "King-Saia total"; Printf.sprintf "%.2f" (exp a_ks); Printf.sprintf "%.2f" b_ks; "-" ];
      [ "Rabin"; Printf.sprintf "%.2f" (exp a_r); Printf.sprintf "%.2f" b_r;
        show (crossover (a_ks, b_ks) (a_r, b_r)) ];
      [ "PhaseKing"; Printf.sprintf "%.2f" (exp a_k); Printf.sprintf "%.2f" b_k;
        show (crossover (a_ks, b_ks) (a_k, b_k)) ];
    ]
  in
  Table.print
    ~title:"T10: bits/processor power-law fits and extrapolated crossover n*"
    ~headers:[ "protocol"; "coefficient"; "exponent"; "crossover vs KS" ]
    rows;
  rows

let t3_ae_agreement ?(ns = [ 64; 128 ]) ?(seeds = [ 1; 2 ]) () =
  let scenarios =
    [ Attacks.honest; Attacks.crash; Attacks.byzantine_static;
      Attacks.byzantine_adaptive; Attacks.eclipse ]
  in
  let rows =
    List.concat_map
      (fun n ->
        let params = Ks_core.Params.practical n in
        let target = 1.0 -. (1.0 /. float_of_int (Intmath.ceil_log2 n)) in
        List.map
          (fun sc ->
            let runs =
              List.map
                (fun seed ->
                  let rng = Prng.create (seed_of n (seed + 77)) in
                  let inputs = Inputs.generate rng ~n Inputs.Split in
                  let tree =
                    Ks_topology.Tree.build (Prng.split rng)
                      (Ks_core.Params.tree_config params)
                  in
                  Ks_core.Ae_ba.run ~params ~seed:(seed_of n (seed + 77)) ~inputs
                    ~behavior:sc.Attacks.behavior
                    ~strategy:(Attacks.tree_strategy sc ~params ~tree)
                    ~budget:(Attacks.budget_of sc ~params) ())
                seeds
            in
            let agreement = mean_of (List.map (fun r -> r.Ks_core.Ae_ba.agreement) runs) in
            let valid =
              List.length (List.filter (fun r -> r.Ks_core.Ae_ba.valid) runs)
            in
            let gw =
              mean_of
                (List.concat_map
                   (fun r ->
                     List.map
                       (fun (e : Ks_core.Ae_ba.election_stats) -> e.good_winner_fraction)
                       r.Ks_core.Ae_ba.elections)
                   runs)
            in
            [
              Table.fint n;
              sc.Attacks.label;
              Table.fpct agreement;
              Table.fpct target;
              Printf.sprintf "%d/%d" valid (List.length runs);
              Table.fpct gw;
            ])
          scenarios)
      ns
  in
  Table.print
    ~title:"T3 (Thm 2): almost-everywhere agreement vs adversary"
    ~headers:[ "n"; "adversary"; "agreement"; "target >=1-1/log n"; "valid"; "good winners" ]
    rows;
  rows

let t4_aeba_coins ?(n = 256) ?(trials = 10) () =
  let params = Ks_core.Params.practical n in
  let lg = Intmath.ceil_log2 n in
  let degree = params.Ks_core.Params.aeba_degree in
  let epsilon = params.Ks_core.Params.epsilon in
  let target = 1.0 -. (2.0 /. float_of_int lg) in
  let scenario = Attacks.byzantine_static in
  let run ~rounds ~fraction ~coin ~seed =
    let budget = int_of_float (fraction *. float_of_int n) in
    let rng = Prng.create (seed_of n (seed + 31)) in
    let inputs = Inputs.generate rng ~n Inputs.Split in
    Ks_core.Aeba_coin.run_standalone ~seed:(seed_of n (seed + 31)) ~n ~degree
      ~rounds ~epsilon ~budget ~inputs
      ~strategy:(Attacks.vote_flipper scenario ~params)
      ~coin ()
  in
  let success_rate ~rounds ~fraction ~coin =
    (* Success = near-total agreement on a good input (agreement without
       validity is what an over-budget adversary still allows). *)
    let ok = ref 0 in
    for seed = 1 to trials do
      let o = run ~rounds ~fraction ~coin ~seed in
      if o.Ks_core.Aeba_coin.agreement >= target && o.Ks_core.Aeba_coin.valid then
        incr ok
    done;
    float_of_int !ok /. float_of_int trials
  in
  let part_a =
    List.map
      (fun rounds ->
        let rate = success_rate ~rounds ~fraction:0.25 ~coin:Ks_core.Aeba_coin.Ideal in
        [
          Printf.sprintf "rounds=%d" rounds;
          "f=0.25, ideal coin";
          Table.fpct rate;
          Printf.sprintf "1-2^-%d=%.3f" rounds (1.0 -. (0.5 ** float_of_int rounds));
        ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  let part_b =
    List.map
      (fun fraction ->
        let rate =
          success_rate ~rounds:(lg + 4) ~fraction ~coin:Ks_core.Aeba_coin.Ideal
        in
        [
          Printf.sprintf "f=%.2f" fraction;
          Printf.sprintf "rounds=%d, ideal coin" (lg + 4);
          Table.fpct rate;
          (if fraction < 1.0 /. 3.0 then "should succeed" else "beyond 1/3");
        ])
      [ 0.10; 0.20; 0.25; 0.30; 0.33; 0.36 ]
  in
  let part_c =
    List.map
      (fun (label, coin) ->
        let rate = success_rate ~rounds:(lg + 4) ~fraction:0.25 ~coin in
        [ label; Printf.sprintf "f=0.25, rounds=%d" (lg + 4); Table.fpct rate; "" ])
      [
        ("ideal coin", Ks_core.Aeba_coin.Ideal);
        ("coin missed 10%", Ks_core.Aeba_coin.Unreliable 0.1);
        ("coin missed 30%", Ks_core.Aeba_coin.Unreliable 0.3);
        ("coin leaked to adversary", Ks_core.Aeba_coin.Adversarial_known);
      ]
  in
  (* Part D — the validity boundary at sparse degree: unanimous inputs
     against the coordinated minority-echo.  Asymptotically (degree
     k·log n, k large) validity holds to 1/3; at practical degrees the
     uninformed tail erodes it earlier, and this sweep maps where. *)
  let part_d =
    List.map
      (fun fraction ->
        let ok = ref 0 in
        for seed = 1 to trials do
          let budget = int_of_float (fraction *. float_of_int n) in
          let o =
            Ks_core.Aeba_coin.run_standalone ~seed:(seed_of n (seed + 63)) ~n
              ~degree ~rounds:(lg + 4) ~epsilon ~budget
              ~inputs:(Array.make n false)
              ~strategy:(Attacks.vote_flipper scenario ~params)
              ~coin:Ks_core.Aeba_coin.Ideal ()
          in
          if o.Ks_core.Aeba_coin.agreement >= target && o.Ks_core.Aeba_coin.valid
          then incr ok
        done;
        [
          Printf.sprintf "validity f=%.2f" fraction;
          Printf.sprintf "unanimous-0 inputs, minority echo";
          Table.fpct (float_of_int !ok /. float_of_int trials);
          "erodes below 1/3 at sparse degree";
        ])
      [ 0.10; 0.15; 0.20; 0.25; 0.30 ]
  in
  let rows = part_a @ part_b @ part_c @ part_d in
  Table.print
    ~title:
      (Printf.sprintf
         "T4 (Thm 3/5): Algorithm 5 at n=%d — agreement rate (target fraction %.2f)" n
         target)
    ~headers:[ "sweep"; "setting"; "success rate"; "reference" ]
    rows;
  rows

let t5_election ?(candidates = 256) ?(trials = 200) () =
  let winners_target = Stdlib.max 2 (candidates / 32) in
  let num_bins = Ks_core.Election.num_bins ~candidates ~winners:winners_target in
  let rng = Prng.create 90210L in
  let lg = Intmath.ceil_log2 candidates in
  let run_one good_fraction =
    let good_count = int_of_float (good_fraction *. float_of_int candidates) in
    let is_good = Array.init candidates (fun i -> i < good_count) in
    Prng.shuffle rng is_good;
    let bins = Array.make candidates 0 in
    Array.iteri
      (fun i g -> if g then bins.(i) <- Prng.int rng num_bins)
      is_good;
    (* The rushing adversary sees every good bin choice, then stuffs the
       currently lightest bin just shy of overtaking the runner-up, so as
       many of its candidates as possible ride the lightest bin. *)
    let counts = Array.make num_bins 0 in
    Array.iteri (fun i g -> if g then counts.(bins.(i)) <- counts.(bins.(i)) + 1) is_good;
    let order = Array.init num_bins (fun b -> b) in
    Array.sort (fun a b -> compare counts.(a) counts.(b)) order;
    let lightest = order.(0) in
    let second = if num_bins > 1 then counts.(order.(1)) else max_int in
    let room = Stdlib.max 0 (second - counts.(lightest) - 1) in
    let placed = ref 0 in
    Array.iteri
      (fun i g ->
        if not g then begin
          if !placed < room then begin
            bins.(i) <- lightest;
            incr placed
          end
          else bins.(i) <- Prng.int rng num_bins
        end)
      is_good;
    let winners =
      Ks_core.Election.winner_indices ~num_bins ~target:winners_target bins
    in
    let goodw = Array.fold_left (fun acc i -> if is_good.(i) then acc + 1 else acc) 0 winners in
    float_of_int goodw /. float_of_int (Stdlib.max 1 (Array.length winners))
  in
  let rows =
    List.map
      (fun gf ->
        let samples = Array.init trials (fun _ -> run_one gf) in
        let bound = gf -. (1.0 /. float_of_int lg) in
        [
          Table.fpct gf;
          Table.fpct (Stats.mean samples);
          Table.fpct (Stats.percentile samples 10.0);
          Table.fpct (Stdlib.max 0.0 bound);
        ])
      [ 1.0; 0.9; 0.75; 0.67; 0.5 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T5 (Lemma 4): Feige election, r=%d candidates, %d bins, rushing bin-stuffer"
         candidates num_bins)
    ~headers:[ "good cands"; "good winners (mean)"; "p10"; "bound |S|/r - 1/log r" ]
    rows;
  rows

let t6_a2e ?(ns = [ 256; 1024 ]) ?(seeds = [ 1; 2; 3 ]) () =
  let rows =
    List.concat_map
      (fun n ->
        let params = Ks_core.Params.practical n in
        let config = Ks_core.Ae_to_e.config_of_params params in
        List.map
          (fun (label, flood) ->
            let scenario = if flood then Attacks.flood else Attacks.byzantine_static in
            let budget = Attacks.budget_of scenario ~params in
            let runs =
              List.map
                (fun seed ->
                  let rng = Prng.create (seed_of n (seed + 555)) in
                  (* Knowledgeable majority holds M = 1; a slice of good
                     processors is confused (believes 0). *)
                  let m_value = 1 in
                  let confused = Array.init n (fun _ -> Prng.bernoulli rng 0.08) in
                  let knows p = Some (if confused.(p) then 0 else m_value) in
                  let coin_rng = Prng.split rng in
                  let ks =
                    Array.init config.Ks_core.Ae_to_e.iterations (fun _ ->
                        Prng.int coin_rng config.Ks_core.Ae_to_e.labels)
                  in
                  let coin ~iteration p =
                    if iteration >= Array.length ks then None
                    else if confused.(p) then None
                    else Some ks.(iteration)
                  in
                  let strategy =
                    Attacks.a2e_strategy scenario ~params ~coin ~carried:[]
                  in
                  let net =
                    Ks_sim.Net.create ~label:"a2e" ~seed:(seed_of n (seed + 555))
                      ~n ~budget
                      ~msg_bits:Ks_core.Ae_to_e.msg_bits
                      ~strategy ()
                  in
                  let res = Ks_core.Ae_to_e.run ~net ~config ~knows ~coin in
                  let good p = not (Ks_sim.Net.is_corrupt net p) in
                  let all_ok = ref true and wrong = ref 0 in
                  Array.iteri
                    (fun p d ->
                      if good p then
                        match d with
                        | Some v when v = m_value -> ()
                        | Some _ -> incr wrong; all_ok := false
                        | None -> all_ok := false)
                    res.Ks_core.Ae_to_e.decided;
                  (res, !all_ok, !wrong))
                seeds
            in
            let succ = List.length (List.filter (fun (_, ok, _) -> ok) runs) in
            let wrongs = List.fold_left (fun acc (_, _, w) -> acc + w) 0 runs in
            let bits =
              mean_of
                (List.map (fun (r, _, _) -> float_of_int r.Ks_core.Ae_to_e.max_sent_bits) runs)
            in
            let overloads =
              List.fold_left
                (fun acc (r, _, _) -> acc + r.Ks_core.Ae_to_e.overloaded_events)
                0 runs
            in
            [
              Table.fint n;
              label;
              Printf.sprintf "%d/%d" succ (List.length runs);
              Table.fint wrongs;
              Table.fbits bits;
              Table.fint overloads;
            ])
          [ ("byz-static", false); ("flood", true) ])
      ns
  in
  (* √n slope over the honest-adversary rows. *)
  Table.print
    ~title:"T6 (Lemmas 7-10): Algorithm 3 standalone"
    ~headers:[ "n"; "adversary"; "all decided M"; "wrong"; "max bits/proc"; "overloads" ]
    rows;
  rows

let t7_hiding ?(trials = 20000) () =
  let module Sh = Ks_shamir.Shamir.Make (Ks_field.Gf256) in
  let module Add = Ks_shamir.Additive.Make (Ks_field.Gf256) in
  let rng = Prng.create 4242L in
  let holders = 9 and threshold = 4 in
  (* 16-bucket statistic keeps the sampling noise well below any real
     signal at these trial counts. *)
  let buckets = 16 in
  let tv hist0 hist1 total =
    let acc = ref 0.0 in
    for i = 0 to buckets - 1 do
      acc := !acc +. Float.abs (float_of_int (hist0.(i) - hist1.(i)))
    done;
    !acc /. (2.0 *. float_of_int total)
  in
  (* Distinguishing statistic: the XOR of the observed shares (any fixed
     function of the view lower-bounds its TV distance). *)
  let observe_direct ~count secret =
    let shares = Sh.deal rng ~threshold ~holders secret in
    let acc = ref 0 in
    for i = 0 to count - 1 do
      acc := !acc lxor Ks_field.Gf256.to_int shares.(i).Sh.value
    done;
    !acc land 0xF
  in
  let observe_iterated ~count secret =
    (* Reshare share 0 among a second ring of holders; the adversary sees
       [count] level-1 shares (excluding share 0) plus [count] 2-shares of
       share 0 — Lemma 1's worst allowed view. *)
    let shares = Sh.deal rng ~threshold ~holders secret in
    let sub =
      Sh.deal rng ~threshold ~holders shares.(0).Sh.value
    in
    let acc = ref 0 in
    for i = 0 to count - 1 do
      acc := !acc lxor Ks_field.Gf256.to_int shares.(i + 1).Sh.value;
      acc := !acc lxor Ks_field.Gf256.to_int sub.(i).Sh.value
    done;
    !acc land 0xF
  in
  let advantage observe =
    let h0 = Array.make buckets 0 and h1 = Array.make buckets 0 in
    for _ = 1 to trials do
      let v0 = observe (Ks_field.Gf256.of_int 0) in
      h0.(v0) <- h0.(v0) + 1;
      let v1 = observe (Ks_field.Gf256.of_int 57) in
      h1.(v1) <- h1.(v1) + 1
    done;
    tv h0 h1 trials
  in
  let reconstruct_rate count =
    let ok = ref 0 in
    let secret = Ks_field.Gf256.of_int 57 in
    for _ = 1 to 200 do
      let shares = Sh.deal rng ~threshold ~holders secret in
      let subset = Array.to_list (Array.sub shares 0 count) in
      match Sh.reconstruct ~threshold subset with
      | Some v when Ks_field.Gf256.equal v secret -> incr ok
      | Some _ | None -> ()
    done;
    float_of_int !ok /. 200.0
  in
  let additive_adv count =
    let h0 = Array.make buckets 0 and h1 = Array.make buckets 0 in
    for _ = 1 to trials do
      let obs secret =
        let shares = Add.deal rng ~holders:5 secret in
        let acc = ref 0 in
        for i = 0 to count - 1 do
          acc := !acc lxor Ks_field.Gf256.to_int shares.(i)
        done;
        !acc land 0xF
      in
      let v0 = obs (Ks_field.Gf256.of_int 0) in
      h0.(v0) <- h0.(v0) + 1;
      let v1 = obs (Ks_field.Gf256.of_int 57) in
      h1.(v1) <- h1.(v1) + 1
    done;
    tv h0 h1 trials
  in
  let noise = 1.0 /. sqrt (float_of_int trials /. float_of_int buckets) in
  let rows =
    [
      [ "Shamir (9,5) direct"; Printf.sprintf "t=%d shares" threshold;
        Table.ffloat ~decimals:4 (advantage (observe_direct ~count:threshold));
        Printf.sprintf "sampling noise ~%.3f" noise ];
      [ "Shamir (9,5) direct"; "t+1 shares (reconstruct)";
        Table.fpct (reconstruct_rate (threshold + 1)); "should be 100%" ];
      [ "Shamir iterated (Lemma 1)"; Printf.sprintf "t 1-shares + t 2-shares";
        Table.ffloat ~decimals:4 (advantage (observe_iterated ~count:threshold));
        Printf.sprintf "sampling noise ~%.3f" noise ];
      [ "Additive 5-of-5"; "4 shares";
        Table.ffloat ~decimals:4 (additive_adv 4);
        Printf.sprintf "sampling noise ~%.3f" noise ];
      [ "Additive 5-of-5"; "5 shares (reconstruct)"; "100.0%"; "by construction" ];
    ]
  in
  Table.print ~title:"T7 (Lemma 1): hiding — distinguishing advantage of the adversary view"
    ~headers:[ "scheme"; "view"; "advantage (TV)"; "reference" ]
    rows;
  rows

let t8_samplers ?(r = 1024) ?(s = 1024) () =
  let rng = Prng.create 777L in
  let lg = Intmath.ceil_log2 s in
  let rows =
    List.map
      (fun d ->
        let sampler = Ks_sampler.Sampler.create rng ~r ~s ~d in
        let delta_at theta =
          Ks_sampler.Sampler.estimate_delta rng sampler ~theta ~trials:30
            ~set_fraction:(1.0 /. 3.0)
        in
        let maxdeg = Ks_sampler.Sampler.max_degree sampler in
        let bound = r * d / s * lg in
        [
          Table.fint d;
          Table.fpct (delta_at 0.05);
          Table.fpct (delta_at 0.10);
          Table.fpct (delta_at 0.20);
          Table.fint maxdeg;
          Printf.sprintf "O(%d)" bound;
        ])
      [ 8; 16; 32; 64; 128 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T8 (Lemma 2): sampler quality vs degree, r=s=%d, adversarial 1/3 sets" r)
    ~headers:
      [ "degree d"; "delta@theta=.05"; "delta@theta=.10"; "delta@theta=.20";
        "max degree"; "degree bound" ]
    rows;
  rows

let t9_threshold ?(n = 64) ?(seeds = [ 1; 2; 3 ]) () =
  let params = Ks_core.Params.practical n in
  let rows =
    List.map
      (fun f ->
        let budget = Stdlib.min (n - 1) (int_of_float (f *. float_of_int n)) in
        let runs =
          List.map
            (fun seed ->
              let rng = Prng.create (seed_of n (seed + 999)) in
              let inputs = Inputs.generate rng ~n Inputs.Split in
              let sc = Attacks.byzantine_static in
              let strategy =
                Ks_sim.Adversary.make ~name:"static"
                  ~initial_corruptions:(fun rng ~n ~budget:b ->
                    Ks_sim.Adversary.uniform_random_set rng ~n
                      ~budget:(Stdlib.min budget b))
                  ()
              in
              Ks_core.Everywhere.run ~params ~seed:(seed_of n (seed + 999)) ~inputs
                ~behavior:sc.Attacks.behavior ~tree_strategy:strategy
                ~a2e_strategy:(fun ~carried ~coin:_ ->
                  Ks_core.Everywhere.carry_corruptions Ks_sim.Adversary.none ~carried)
                ~budget ())
            seeds
        in
        let succ = List.length (List.filter (fun r -> r.Ks_core.Everywhere.success) runs) in
        let safe = List.length (List.filter (fun r -> r.Ks_core.Everywhere.safe) runs) in
        let agreement =
          mean_of (List.map (fun r -> r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.agreement) runs)
        in
        [
          Table.fpct f;
          Printf.sprintf "%d/%d" succ (List.length seeds);
          Printf.sprintf "%d/%d" safe (List.length seeds);
          Table.fpct agreement;
          (if f < 1.0 /. 3.0 then "< 1/3" else ">= 1/3");
        ])
      [ 0.15; 0.20; 0.25; 0.30; 0.33; 0.36; 0.40 ]
  in
  Table.print
    ~title:(Printf.sprintf "T9: everywhere agreement vs corruption fraction, n=%d" n)
    ~headers:[ "corrupt"; "success"; "safe"; "ae agreement"; "regime" ]
    rows;
  rows

let t11_ablation ?(n = 64) ?(seeds = [ 1; 2; 3 ]) () =
  (* Design-choice ablations on the full stack at 25% static Byzantine
     corruption: the sharing-threshold policy (Third leaves Reed–Solomon
     slack; Half_minus_one is the paper-literal t = n/2, which turns every
     corrupted custodian into an uncorrectable error), and the
     amplification fan-out a·log n (the Chernoff margin of Lemma 8). *)
  let base = Ks_core.Params.practical n in
  let variants =
    [
      ("threshold policy = third (default)", base);
      ( "threshold policy = half (paper-literal)",
        { base with Ks_core.Params.share_policy = Ks_core.Params.Half_minus_one } );
      ( "a2e requests/label halved",
        { base with
          Ks_core.Params.a2e_requests_per_label =
            Stdlib.max 4 (base.Ks_core.Params.a2e_requests_per_label / 2) } );
      ( "election rounds halved",
        { base with
          Ks_core.Params.max_election_rounds =
            Stdlib.max 2 (base.Ks_core.Params.max_election_rounds / 2);
          Ks_core.Params.aeba_rounds =
            Stdlib.max 2 (base.Ks_core.Params.aeba_rounds / 2) } );
    ]
  in
  let scenario = Attacks.byzantine_static in
  let rows =
    List.map
      (fun (label, params) ->
        (* Stress at 30% corruption — the margins the ablated choices buy
           only show near the threshold. *)
        let budget = Stdlib.min (n - 1) (3 * n / 10) in
        let runs =
          List.map
            (fun seed ->
              let rng = Prng.create (seed_of n (seed + 1300)) in
              let inputs = Inputs.generate rng ~n Inputs.Split in
              let tree =
                Ks_topology.Tree.build (Prng.split rng)
                  (Ks_core.Params.tree_config params)
              in
              Ks_core.Everywhere.run ~params ~seed:(seed_of n (seed + 1300)) ~inputs
                ~behavior:scenario.Attacks.behavior
                ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
                ~a2e_strategy:(fun ~carried ~coin ->
                  Attacks.a2e_strategy scenario ~params ~coin ~carried)
                ~budget ())
            seeds
        in
        let succ = List.length (List.filter (fun r -> r.Ks_core.Everywhere.success) runs) in
        let agreement =
          mean_of (List.map (fun r -> r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.agreement) runs)
        in
        let bits =
          mean_of
            (List.map (fun r -> float_of_int r.Ks_core.Everywhere.max_sent_bits_total) runs)
        in
        [
          label;
          Printf.sprintf "%d/%d" succ (List.length runs);
          Table.fpct agreement;
          Table.fbits bits;
        ])
      variants
  in
  Table.print
    ~title:(Printf.sprintf "T11 (ablations): design choices at n=%d, 30%% byzantine" n)
    ~headers:[ "variant"; "success"; "ae agreement"; "max bits/proc" ]
    rows;
  rows

let t12_universe ?(n = 64) ?(seeds = [ 1; 2; 3 ]) () =
  (* Universe reduction (§1.2) and the paper's core motivation (§1.3):
     the adversary corrupts half its budget up front, keeps the rest, and
     spends it on the committee the moment it is announced.  The elected
     PROCESSORS fall; the elected ARRAYS' coins keep working. *)
  let params = Ks_core.Params.practical n in
  let model_budget = Ks_core.Params.corruption_budget params in
  let upfront = model_budget / 2 in
  let rows =
    List.map
      (fun seed ->
        let strategy =
          Ks_sim.Adversary.make ~name:"half-upfront"
            ~initial_corruptions:(fun rng ~n ~budget:_ ->
              Ks_sim.Adversary.uniform_random_set rng ~n ~budget:upfront)
            ()
        in
        let r =
          Ks_core.Universe.reduce ~params ~seed:(seed_of n (seed + 2100))
            ~behavior:Ks_core.Comm.Garbage ~strategy ~budget:model_budget ()
        in
        [
          Printf.sprintf "seed %d" seed;
          Table.fint (Array.length r.Ks_core.Universe.committee);
          Table.fpct r.Ks_core.Universe.good_at_election;
          Table.fpct r.Ks_core.Universe.good_after_hunt;
          Table.fpct r.Ks_core.Universe.coin_commonality;
          Table.fpct r.Ks_core.Universe.coin_distinct_rate;
        ])
      seeds
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T12 (§1.2/§1.3): universe reduction at n=%d — committee vs the \
          post-election hunt; coins opened after the hunt"
         n)
    ~headers:
      [ "run"; "committee"; "good at election"; "good after hunt";
        "coin commonality"; "coin freshness" ]
    rows;
  rows

let t13_kssv ?(n = 256) ?(seeds = [ 1; 2; 3 ]) () =
  (* The non-adaptive predecessor ([17]) electing processors in the
     clear: representative against a static adversary, dead against an
     adaptive one — §1.3's "prima facie impossible" measured as a
     protocol comparison (contrast T12, where the 2010 design's array
     elections survive the same hunt). *)
  let params = Ks_core.Params.practical n in
  let budget = Ks_core.Params.corruption_budget params in
  let rows =
    List.concat_map
      (fun adaptive ->
        List.map
          (fun seed ->
            let r =
              Ks_baselines.Kssv_tournament.run ~seed:(seed_of n (seed + 3100))
                ~params ~adaptive ~budget
            in
            [
              (if adaptive then "adaptive" else "static");
              Printf.sprintf "seed %d" seed;
              Table.fint (Array.length r.Ks_baselines.Kssv_tournament.committee);
              Table.fpct r.Ks_baselines.Kssv_tournament.good_fraction;
              Table.fint r.Ks_baselines.Kssv_tournament.corrupted_total;
              Table.fbits (float_of_int r.Ks_baselines.Kssv_tournament.max_sent_bits);
            ])
          seeds)
      [ false; true ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T13 (§1.3): KSSV'06 processor tournament at n=%d — representative           when static, owned when adaptive" n)
    ~headers:[ "adversary"; "run"; "committee"; "good"; "corruptions"; "max bits/proc" ]
    rows;
  rows

let t14_parameters () =
  (* No simulation: the two profiles' derived parameters side by side.
     The theoretical column shows why the paper's constants need
     astronomical n before the formulas are even self-consistent
     (k1 <= n requires log^3 n <= n — fine — but q = log^8 n exceeds n
     until n is enormous). *)
  let rows =
    List.map
      (fun n ->
        let p = Ks_core.Params.practical n in
        let t = Ks_core.Params.theoretical n in
        [
          Table.fint n;
          Printf.sprintf "k1=%d q=%d d=%d" p.Ks_core.Params.k1 p.Ks_core.Params.q
            p.Ks_core.Params.up_degree;
          Printf.sprintf "k1=%d q=%d d=%d" t.Ks_core.Params.k1 t.Ks_core.Params.q
            t.Ks_core.Params.up_degree;
          (if t.Ks_core.Params.q <= n then "yes" else "q > n");
        ])
      [ 64; 1024; 65536; 1048576; 1073741824 ]
  in
  Table.print
    ~title:"T14: practical vs theoretical parameter profiles"
    ~headers:[ "n"; "practical"; "theoretical (paper formulas)"; "self-consistent" ]
    rows;
  rows

let t15_async ?(ns = [ 32; 64; 128 ]) ?(seeds = [ 1; 2; 3 ]) () =
  (* §6 open problem, explored: asynchronous binary agreement (MMR'14)
     with the common coin as an oracle — the piece a full async
     adaptation would need the tournament to supply.  Measured under an
     equivocating f = (n-2)/3 coalition and the starvation scheduler. *)
  let rows =
    List.concat_map
      (fun n ->
        let f = (n - 2) / 3 in
        List.map
          (fun (label, scheduler) ->
            let runs =
              List.map
                (fun seed ->
                  let rng = Prng.create (seed_of n (seed + 4100)) in
                  let inputs = Inputs.generate rng ~n Inputs.Split in
                  Ks_async.Async_ba.run ~seed:(seed_of n (seed + 4100)) ~n ~f
                    ~inputs ~byz:Ks_async.Async_ba.Equivocate ~scheduler
                    ~max_events:40_000_000 ())
                seeds
            in
            let agree =
              List.length (List.filter (fun o -> o.Ks_async.Async_ba.agreement) runs)
            in
            (* Safety: across every run, the decided values (ignoring the
               undecided) never conflict. *)
            let safe =
              List.for_all
                (fun o ->
                  let values =
                    Array.to_list o.Ks_async.Async_ba.decided
                    |> List.filter_map Fun.id
                    |> List.sort_uniq compare
                  in
                  List.length values <= 1)
                runs
            in
            let rounds =
              mean_of (List.map (fun o -> float_of_int o.Ks_async.Async_ba.max_rounds) runs)
            in
            let bits =
              mean_of
                (List.map (fun o -> float_of_int o.Ks_async.Async_ba.max_sent_bits) runs)
            in
            [
              Table.fint n;
              label;
              Printf.sprintf "%d/%d" agree (List.length runs);
              (if safe then "yes" else "NO");
              Table.ffloat ~decimals:1 rounds;
              Table.fbits bits;
            ])
          [ ("fair", Ks_async.Async_net.Fair);
            ("starve n/8", Ks_async.Async_net.Delay_targets (List.init (n / 8) (fun i -> i))) ])
      ns
  in
  Table.print
    ~title:
      "T15 (§6 open problem): async binary BA with a common-coin oracle,        equivocating f=(n-2)/3"
    ~headers:
      [ "n"; "scheduler"; "all decided"; "no conflict"; "rounds (mean)";
        "max bits/proc" ]
    rows;
  rows

let t16_faults ?(n = 32) ?(seeds = [ 1; 2 ]) () =
  (* Breaking-point table for the benign-fault layer (docs/FAULTS.md):
     sweep fault intensity and Byzantine corruption fraction together,
     past the 1/3 threshold, and watch how gracefully the stack degrades.
     Faults come from ambient Ks_faults plans, so every net a run creates
     (tree, a2e, rabin) draws an independent stream from one plan without
     touching the adversary's budget.  The Everywhere runs get a bounded
     re-request budget (retries=2): robust-decode failures become
     detected, bounded recovery instead of silent data loss.  The
     "bits x none" column is max bits/proc relative to the fault-free
     cell at the same corruption fraction — the measured net effect of
     the faults.  It can land below 1.0: retry rounds and duplicated
     deliveries add bits, but crashed or silenced senders and dropped
     requests also mean fewer responses to pay for. *)
  let params = Ks_core.Params.practical n in
  let plan_of s =
    match Ks_faults.Plan.of_string s with Ok p -> p | Error e -> invalid_arg e
  in
  let plans =
    [
      ("none", Ks_faults.Plan.none);
      ("drop 2%", plan_of "seed=21,drop=0.02");
      ("drop 5% dup 2%", plan_of "seed=22,drop=0.05,dup=0.02");
      ("churn 2% cap 8", plan_of "seed=23,crash=0.02,recover=0.25,max_down=8");
    ]
  in
  let fractions = [ 0.20; 0.30; 0.36 ] in
  let everywhere_run plan ~budget ~seed =
    Ks_faults.Plan.with_plan plan (fun () ->
        let rng = Prng.create (seed_of n (seed + 5200)) in
        let inputs = Inputs.generate rng ~n Inputs.Split in
        let sc = Attacks.byzantine_static in
        let strategy =
          Ks_sim.Adversary.make ~name:"static"
            ~initial_corruptions:(fun rng ~n ~budget:b ->
              Ks_sim.Adversary.uniform_random_set rng ~n
                ~budget:(Stdlib.min budget b))
            ()
        in
        Ks_core.Everywhere.run ~retries:2 ~params ~seed:(seed_of n (seed + 5200))
          ~inputs ~behavior:sc.Attacks.behavior ~tree_strategy:strategy
          ~a2e_strategy:(fun ~carried ~coin:_ ->
            Ks_core.Everywhere.carry_corruptions Ks_sim.Adversary.none ~carried)
          ~budget ())
  in
  let rabin_run plan ~budget ~seed =
    Ks_faults.Plan.with_plan plan (fun () ->
        let rng = Prng.create (seed_of n (seed + 5300)) in
        let inputs = Inputs.generate rng ~n Inputs.Split in
        let lg = Intmath.ceil_log2 n in
        Ks_baselines.Rabin.run ~seed:(seed_of n (seed + 5300)) ~n ~budget
          ~rounds:((2 * lg) + 6) ~epsilon:params.Ks_core.Params.epsilon ~inputs
          ~strategy:(Attacks.vote_flipper Attacks.byzantine_static ~params))
  in
  (* Every (plan, fraction) cell once; the fault-free row doubles as the
     bits reference for the overhead column. *)
  let cells =
    List.map
      (fun (label, plan) ->
        ( label,
          List.map
            (fun f ->
              let budget =
                Stdlib.min (n - 1) (int_of_float (f *. float_of_int n))
              in
              let runs =
                List.map (fun seed -> everywhere_run plan ~budget ~seed) seeds
              in
              let rabins =
                List.map (fun seed -> rabin_run plan ~budget ~seed) seeds
              in
              (f, runs, rabins))
            fractions ))
      plans
  in
  let mean_bits runs =
    mean_of
      (List.map (fun r -> float_of_int r.Ks_core.Everywhere.max_sent_bits_total) runs)
  in
  let base_bits f =
    match cells with
    | (_, fcells) :: _ ->
      let _, runs, _ = List.find (fun (f', _, _) -> f' = f) fcells in
      mean_bits runs
    | [] -> assert false
  in
  let rows =
    List.concat_map
      (fun (label, fcells) ->
        List.map
          (fun (f, runs, rabins) ->
            let total = List.length runs in
            let succ =
              List.length (List.filter (fun r -> r.Ks_core.Everywhere.success) runs)
            in
            let degraded =
              List.length (List.filter (fun r -> r.Ks_core.Everywhere.degraded) runs)
            in
            let retries =
              mean_of
                (List.map (fun r -> float_of_int r.Ks_core.Everywhere.retries_used) runs)
            in
            let fails =
              mean_of
                (List.map
                   (fun r -> float_of_int r.Ks_core.Everywhere.decode_failures)
                   runs)
            in
            let rabin_agree =
              List.length
                (List.filter (fun o -> o.Ks_baselines.Outcome.agreement) rabins)
            in
            [
              label;
              Table.fpct f;
              Printf.sprintf "%d/%d" succ total;
              Printf.sprintf "%d/%d" degraded total;
              Table.ffloat ~decimals:1 retries;
              Table.ffloat ~decimals:1 fails;
              Printf.sprintf "%.2fx" (mean_bits runs /. base_bits f);
              Printf.sprintf "%d/%d" rabin_agree total;
            ])
          fcells)
      cells
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T16: breaking points under benign faults + byzantine corruption, n=%d, \
          retries=2" n)
    ~headers:
      [ "fault plan"; "corrupt"; "success"; "degraded"; "retries"; "decode fails";
        "bits x none"; "rabin agree" ]
    rows;
  rows

let t17_attacks ?(n = 32) ?(seeds = [ 1; 2 ]) () =
  (* Breaking-point table for the active-attack library (docs/ATTACKS.md):
     every {!Ks_attacks} strategy crossed with the corruption fraction —
     deliberately walking past the 1/3 threshold — and with the
     provable-misbehaviour quarantine armed and disarmed.  The attacks
     use the protocol's public randomness (tree topology, candidate
     array layout), so the targeted ones aim at the real committees;
     what keeps sub-1/3 cells honest is robust decoding plus the
     quarantine layer, which is exactly what the on/off pair isolates.
     "quarantined" counts provable-misbehaviour convictions recorded by
     good processors (always 0 with the layer disarmed).  Rabin's
     committee-less baseline runs under the same attack's vote strategy
     for scale; it is quarantine-blind, so the pair shares one value. *)
  let params = Ks_core.Params.practical n in
  (* 0.20 and 0.25 sit below the 1/3 threshold (budgets 6 and 8 of 32);
     0.36 rounds to 11/32 = 34.4%, deliberately past it. *)
  let fractions = [ 0.20; 0.25; 0.36 ] in
  let everywhere_run atk ~quarantine ~fraction ~seed =
    let seed64 = seed_of n (seed + 6200) in
    let rng = Prng.create seed64 in
    let inputs = Inputs.generate rng ~n Inputs.Split in
    let budget = Ks_attacks.budget ~params ~fraction in
    let tree =
      Ks_attacks.protocol_tree ~params ~ae_seed:(Ks_attacks.ae_seed_of seed64)
    in
    Ks_core.Everywhere.run ~retries:2 ~quarantine ~params ~seed:seed64 ~inputs
      ~behavior:atk.Ks_attacks.behavior
      ~tree_strategy:(atk.Ks_attacks.tree ~params ~tree)
      ~a2e_strategy:(fun ~carried ~coin ->
        atk.Ks_attacks.a2e ~params ~carried ~coin)
      ~budget ()
  in
  let rabin_run atk ~fraction ~seed =
    let seed64 = seed_of n (seed + 6300) in
    let rng = Prng.create seed64 in
    let inputs = Inputs.generate rng ~n Inputs.Split in
    let budget = Ks_attacks.budget ~params ~fraction in
    let lg = Intmath.ceil_log2 n in
    Ks_baselines.Rabin.run ~seed:seed64 ~n ~budget ~rounds:((2 * lg) + 6)
      ~epsilon:params.Ks_core.Params.epsilon ~inputs
      ~strategy:(atk.Ks_attacks.vote ~params)
  in
  let rows =
    List.concat_map
      (fun atk ->
        List.concat_map
          (fun f ->
            let rabins =
              List.map (fun seed -> rabin_run atk ~fraction:f ~seed) seeds
            in
            let rabin_agree =
              List.length
                (List.filter (fun o -> o.Ks_baselines.Outcome.agreement) rabins)
            in
            List.map
              (fun quarantine ->
                let runs =
                  List.map
                    (fun seed -> everywhere_run atk ~quarantine ~fraction:f ~seed)
                    seeds
                in
                let total = List.length runs in
                let succ =
                  List.length
                    (List.filter
                       (fun r -> r.Ks_core.Everywhere.success)
                       runs)
                in
                let bits =
                  mean_of
                    (List.map
                       (fun r ->
                         float_of_int r.Ks_core.Everywhere.max_sent_bits_total)
                       runs)
                in
                let rounds =
                  mean_of
                    (List.map
                       (fun r ->
                         float_of_int
                           (r.Ks_core.Everywhere.ae_rounds
                           + r.Ks_core.Everywhere.a2e_rounds))
                       runs)
                in
                let quarantined =
                  mean_of
                    (List.map
                       (fun r ->
                         float_of_int
                           (Ks_core.Comm.quarantine_events
                              r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm))
                       runs)
                in
                [
                  atk.Ks_attacks.name;
                  Table.fpct f;
                  (if quarantine then "on" else "off");
                  Printf.sprintf "%d/%d" succ total;
                  Table.ffloat ~decimals:0 (bits /. 1000.);
                  Table.ffloat ~decimals:0 rounds;
                  Table.ffloat ~decimals:1 quarantined;
                  Printf.sprintf "%d/%d" rabin_agree total;
                ])
              [ true; false ])
          fractions)
      Ks_attacks.all
  in
  Table.print
    ~title:
      (Printf.sprintf
         "T17: survival under active Byzantine attacks x quarantine, n=%d, \
          retries=2" n)
    ~headers:
      [ "attack"; "corrupt"; "quarantine"; "agree"; "kbits/proc"; "rounds";
        "quarantined"; "rabin agree" ]
    rows;
  rows

let standard_monitors () =
  [
    Ks_monitor.Monitor.corruption_budget ();
    Ks_monitor.Monitor.bit_budget ();
    Ks_monitor.Monitor.round_bound ();
  ]

let monitored ?trace ?(monitors = standard_monitors) name f =
  (* Shared sinks ([run_all ?trace] reuses one across tables): the hub
     must not close what it does not own. *)
  let hub = Ks_monitor.Hub.create ?trace ~close_trace:false (monitors ()) in
  let result = Ks_monitor.Hub.with_ambient hub f in
  match Ks_monitor.Hub.finish hub with
  | [] -> result
  | vs ->
    print_string (Ks_monitor.Hub.render_violations vs);
    failwith
      (Printf.sprintf "%s: %d invariant violation(s) — see table above" name
         (List.length vs))

let run_all ?(quick = false) ?trace () =
  let monitored ?monitors name f = monitored ?trace ?monitors name f in
  let ns_scaling = if quick then [ 64; 128 ] else [ 64; 128; 256; 512 ] in
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  let pts = monitored "scaling" (fun () -> collect_scaling ~ns:ns_scaling ~seeds) in
  ignore (t1_bits pts);
  ignore (t2_latency pts);
  monitored "t3" (fun () ->
      ignore
        (t3_ae_agreement
           ~ns:(if quick then [ 64 ] else [ 64; 128 ])
           ~seeds:(if quick then [ 1 ] else [ 1; 2 ])
           ()));
  monitored "t4" (fun () ->
      ignore
        (t4_aeba_coins ~n:(if quick then 128 else 256)
           ~trials:(if quick then 4 else 10) ()));
  monitored "t5" (fun () ->
      ignore (t5_election ~candidates:256 ~trials:(if quick then 50 else 200) ()));
  monitored "t6" (fun () ->
      ignore
        (t6_a2e
           ~ns:(if quick then [ 256 ] else [ 256; 1024 ])
           ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ])
           ()));
  ignore (t7_hiding ~trials:(if quick then 4000 else 20000) ());
  ignore (t8_samplers ());
  monitored "t9" (fun () ->
      ignore (t9_threshold ~n:64 ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ]) ()));
  ignore (t10_crossover pts);
  monitored "t11" (fun () ->
      ignore (t11_ablation ~n:64 ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ]) ()));
  monitored "t12" (fun () ->
      ignore (t12_universe ~n:64 ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ]) ()));
  monitored "t13" (fun () ->
      ignore
        (t13_kssv ~n:(if quick then 128 else 256)
           ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ]) ()));
  ignore (t14_parameters ());
  monitored "t15" (fun () ->
      ignore
        (t15_async
           ~ns:(if quick then [ 32 ] else [ 32; 64; 128 ])
           ~seeds:(if quick then [ 1 ] else [ 1; 2; 3 ])
           ()));
  (* T16 drives deliberately faulted nets: retry rounds and duplicated
     deliveries overrun the fault-free bit and round envelopes by
     design, so only the budget invariant is enforced — benign faults
     must never consume the adversary's corruption budget. *)
  monitored "t16"
    ~monitors:(fun () -> [ Ks_monitor.Monitor.corruption_budget () ])
    (fun () ->
      ignore (t16_faults ~n:32 ~seeds:(if quick then [ 1 ] else [ 1; 2 ]) ()));
  (* T17 runs deliberate attacks, several past the 1/3 threshold and all
     of them flooding crafted traffic, so the bit and round envelopes do
     not apply; the budget invariant still must hold — attacks corrupt
     only through the adversary interface. *)
  monitored "t17"
    ~monitors:(fun () -> [ Ks_monitor.Monitor.corruption_budget () ])
    (fun () ->
      ignore (t17_attacks ~n:32 ~seeds:(if quick then [ 1 ] else [ 1; 2 ]) ()));
  match trace with Some sink -> Ks_monitor.Trace.close sink | None -> ()
