type ring = {
  cap : int;
  buf : Event.t option array;
  mutable next : int;
  mutable count : int;
}

type sink =
  | Channel of { oc : out_channel; close_oc : bool; mutable closed : bool }
  | Ring of ring

let file path = Channel { oc = open_out path; close_oc = true; closed = false }
let channel oc = Channel { oc; close_oc = false; closed = false }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Trace.ring: capacity must be positive";
  Ring { cap = capacity; buf = Array.make capacity None; next = 0; count = 0 }

let emit sink ev =
  match sink with
  | Channel c ->
    if not c.closed then begin
      output_string c.oc (Event.to_json ev);
      output_char c.oc '\n'
    end
  | Ring r ->
    r.buf.(r.next) <- Some ev;
    r.next <- (r.next + 1) mod r.cap;
    if r.count < r.cap then r.count <- r.count + 1

let flush = function
  | Channel c -> if not c.closed then Stdlib.flush c.oc
  | Ring _ -> ()

let close = function
  | Channel c ->
    if not c.closed then begin
      c.closed <- true;
      if c.close_oc then close_out c.oc else Stdlib.flush c.oc
    end
  | Ring _ -> ()

let contents = function
  | Channel _ -> []
  | Ring r ->
    let out = ref [] in
    for i = 0 to r.count - 1 do
      (* Oldest event first: when full, [next] points at the oldest. *)
      let idx = (r.next - r.count + i + r.cap * 2) mod r.cap in
      match r.buf.(idx) with Some e -> out := e :: !out | None -> ()
    done;
    List.rev !out

let render events = String.concat "" (List.map (fun e -> Event.to_json e ^ "\n") events)

let replay path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let events = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Event.of_json line with
             | Some e -> events := e :: !events
             | None ->
               failwith (Printf.sprintf "Trace.replay: %s:%d: malformed event" path !lineno)
         done
       with End_of_file -> ());
      List.rev !events)

let sent_bits_by_proc events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Send { net; src; bits; adv = false; _ } ->
        let key = (net, src) in
        Hashtbl.replace tbl key (bits + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    events;
  tbl

let meter_by_proc events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Meter_proc { net; proc; sent_bits; recv_bits; sent_msgs } ->
        (* Last snapshot per (net, proc) wins. *)
        Hashtbl.replace tbl (net, proc) (sent_bits, recv_bits, sent_msgs)
      | _ -> ())
    events;
  tbl
