type violation = {
  invariant : string;
  net : int;
  proc : int option;
  round : int;
  observed : float;
  bound : float;
  detail : string;
}

type t = {
  name : string;
  on_event : emit:(violation -> unit) -> Event.t -> unit;
  at_finish : emit:(violation -> unit) -> unit;
}

let make ~name ?(on_event = fun ~emit:_ _ -> ()) ?(at_finish = fun ~emit:_ -> ()) () =
  { name; on_event; at_finish }

let name t = t.name
let feed t ~emit ev = t.on_event ~emit ev
let finish t ~emit = t.at_finish ~emit

let hooks ~name ?(on_round = fun ~emit:_ ~net:_ ~round:_ -> ())
    ?(on_send = fun ~emit:_ ~net:_ ~round:_ ~src:_ ~dst:_ ~bits:_ ~adv:_ -> ())
    ?(on_decide = fun ~emit:_ ~net:_ ~proc:_ ~value:_ -> ()) ?at_finish () =
  make ~name
    ~on_event:(fun ~emit ev ->
      match ev with
      | Event.Round_start { net; round } -> on_round ~emit ~net ~round
      | Event.Send { net; round; src; dst; bits; adv } ->
        on_send ~emit ~net ~round ~src ~dst ~bits ~adv
      | Event.Decide { net; proc; value } -> on_decide ~emit ~net ~proc ~value
      | _ -> ())
    ?at_finish ()

let log2f n = log (float_of_int (Stdlib.max 2 n)) /. log 2.0

(* --- Built-in monitors.  Each keeps per-net state keyed by the net id
   carried on every event, so monitors survive multi-network runs (the
   full stack uses one net per phase, concurrently metered). --- *)

let corruption_budget ?limit () =
  make ~name:"corruption-budget"
    ~on_event:(fun ~emit ev ->
      match ev with
      | Event.Corrupt { net; round; proc; total; budget } ->
        let bound = match limit with Some l -> l | None -> budget in
        if total > bound then
          emit
            {
              invariant = "corruption-budget";
              net;
              proc = Some proc;
              round;
              observed = float_of_int total;
              bound = float_of_int bound;
              detail = Printf.sprintf "corruption #%d of processor %d exceeds %d" total proc bound;
            }
      | _ -> ())
    ()

type net_scope = { n : int; watched : bool }

let scope_table ?(labels = []) () =
  let scopes : (int, net_scope) Hashtbl.t = Hashtbl.create 8 in
  let on_run_start ~net ~label ~n =
    let watched = labels = [] || List.mem label labels in
    Hashtbl.replace scopes net { n; watched }
  in
  (scopes, on_run_start)

(* Theorem 1's per-processor budget, with a practical-profile constant:
   flag any honest processor whose metered sent bits exceed
   [c · √n · log₂³ n].  The default [c] leaves headroom above the
   measured practical-profile constants (T1), so firing means a genuine
   accounting regression, not noise. *)
let default_bit_bound ?(c = 4096.0) ~n () = c *. sqrt (float_of_int n) *. (log2f n ** 3.0)

let bit_budget ?labels ?(bound = fun ~n -> default_bit_bound ~n ()) () =
  let scopes, on_run_start = scope_table ?labels () in
  let sent : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let flagged : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  make ~name:"bit-budget"
    ~on_event:(fun ~emit ev ->
      match ev with
      | Event.Run_start { net; label; n; _ } -> on_run_start ~net ~label ~n
      | Event.Send { net; round; src; bits; adv = false; _ } ->
        (match Hashtbl.find_opt scopes net with
         | Some { n; watched = true } ->
           let key = (net, src) in
           let total = bits + Option.value ~default:0 (Hashtbl.find_opt sent key) in
           Hashtbl.replace sent key total;
           let b = bound ~n in
           if float_of_int total > b && not (Hashtbl.mem flagged key) then begin
             Hashtbl.replace flagged key ();
             emit
               {
                 invariant = "bit-budget";
                 net;
                 proc = Some src;
                 round;
                 observed = float_of_int total;
                 bound = b;
                 detail =
                   Printf.sprintf "processor %d sent %d bits > %.0f (c*sqrt n*lg^3 n)" src
                     total b;
               }
           end
         | Some { watched = false; _ } | None -> ())
      | _ -> ())
    ()

(* Polylogarithmic latency: flag any watched network whose round count
   exceeds [c · log₂² n].  The default constant covers the practical
   profile's tree phase, the deepest of the stack. *)
let default_round_bound ?(c = 64.0) ~n () = c *. (log2f n ** 2.0)

let round_bound ?labels ?(bound = fun ~n -> default_round_bound ~n ()) () =
  let scopes, on_run_start = scope_table ?labels () in
  let flagged : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  make ~name:"round-bound"
    ~on_event:(fun ~emit ev ->
      match ev with
      | Event.Run_start { net; label; n; _ } -> on_run_start ~net ~label ~n
      | Event.Round_start { net; round } ->
        (match Hashtbl.find_opt scopes net with
         | Some { n; watched = true } ->
           let b = bound ~n in
           if float_of_int (round + 1) > b && not (Hashtbl.mem flagged net) then begin
             Hashtbl.replace flagged net ();
             emit
               {
                 invariant = "round-bound";
                 net;
                 proc = None;
                 round;
                 observed = float_of_int (round + 1);
                 bound = b;
                 detail = Printf.sprintf "round %d exceeds %.0f (c*lg^2 n)" (round + 1) b;
               }
           end
         | Some { watched = false; _ } | None -> ())
      | _ -> ())
    ()

let agreement () =
  (* Per net: the reference decision (first good decider) and each
     processor's recorded decision; any conflict — across processors or a
     re-decision by one processor — is a violation. *)
  let reference : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let decided : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"agreement"
    ~on_event:(fun ~emit ev ->
      match ev with
      | Event.Decide { net; proc; value } ->
        (match Hashtbl.find_opt decided (net, proc) with
         | Some prior when prior <> value ->
           emit
             {
               invariant = "agreement";
               net;
               proc = Some proc;
               round = -1;
               observed = float_of_int value;
               bound = float_of_int prior;
               detail = Printf.sprintf "processor %d re-decided %d after %d" proc value prior;
             }
         | Some _ -> ()
         | None ->
           Hashtbl.replace decided (net, proc) value;
           (match Hashtbl.find_opt reference net with
            | None -> Hashtbl.replace reference net (proc, value)
            | Some (p0, v0) ->
              if v0 <> value then
                emit
                  {
                    invariant = "agreement";
                    net;
                    proc = Some proc;
                    round = -1;
                    observed = float_of_int value;
                    bound = float_of_int v0;
                    detail =
                      Printf.sprintf "processor %d decided %d but processor %d decided %d"
                        proc value p0 v0;
                  }))
      | _ -> ())
    ()

let validity ~inputs =
  let unanimous =
    if Array.length inputs = 0 then None
    else if Array.for_all (fun v -> v = inputs.(0)) inputs then Some inputs.(0)
    else None
  in
  make ~name:"validity"
    ~on_event:(fun ~emit ev ->
      match (ev, unanimous) with
      | Event.Decide { net; proc; value }, Some v when value <> v ->
        emit
          {
            invariant = "validity";
            net;
            proc = Some proc;
            round = -1;
            observed = float_of_int value;
            bound = float_of_int v;
            detail =
              Printf.sprintf "unanimous input %d but processor %d decided %d" v proc value;
          }
      | _ -> ())
    ()

let decided_everywhere ~n =
  (* Termination: every one of the [n] processors that stayed good must
     have decided by the end of the run.  Good = never seen in a Corrupt
     event on any net. *)
  let corrupt : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let decided : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"termination"
    ~on_event:(fun ~emit:_ ev ->
      match ev with
      | Event.Corrupt { proc; _ } -> Hashtbl.replace corrupt proc ()
      | Event.Decide { proc; _ } -> Hashtbl.replace decided proc ()
      | _ -> ())
    ~at_finish:(fun ~emit ->
      for p = 0 to n - 1 do
        if (not (Hashtbl.mem corrupt p)) && not (Hashtbl.mem decided p) then
          emit
            {
              invariant = "termination";
              net = 0;
              proc = Some p;
              round = -1;
              observed = 0.0;
              bound = 1.0;
              detail = Printf.sprintf "good processor %d never decided" p;
            }
      done)
    ()
