type t =
  | Run_start of { net : int; label : string; n : int; budget : int }
  | Round_start of { net : int; round : int }
  | Send of { net : int; round : int; src : int; dst : int; bits : int; adv : bool }
  | Corrupt of { net : int; round : int; proc : int; total : int; budget : int }
  | Phase of { name : string }
  | Decide of { net : int; proc : int; value : int }
  | Round_end of {
      net : int;
      round : int;
      msgs : int;
      bits : int;
      adv_msgs : int;
      adv_bits : int;
    }
  | Meter_proc of {
      net : int;
      proc : int;
      sent_bits : int;
      recv_bits : int;
      sent_msgs : int;
    }
  | Run_end of { net : int; rounds : int; total_bits : int }
  | Fault of { net : int; round : int; kind : string; proc : int; dst : int; info : int }
  | Quarantine of {
      net : int;
      round : int;
      accuser : int;
      offender : int;
      evidence : string;
      info : int;
    }
  | Violation of {
      invariant : string;
      net : int;
      proc : int;
      round : int;
      observed : float;
      bound : float;
      detail : string;
    }

(* --- JSON rendering.  One flat object per event, fixed field order, so
   that identical event streams render to byte-identical JSONL. --- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json = function
  | Run_start { net; label; n; budget } ->
    Printf.sprintf {|{"ev":"run_start","net":%d,"label":"%s","n":%d,"budget":%d}|}
      net (escape label) n budget
  | Round_start { net; round } ->
    Printf.sprintf {|{"ev":"round_start","net":%d,"round":%d}|} net round
  | Send { net; round; src; dst; bits; adv } ->
    Printf.sprintf {|{"ev":"send","net":%d,"round":%d,"src":%d,"dst":%d,"bits":%d,"adv":%b}|}
      net round src dst bits adv
  | Corrupt { net; round; proc; total; budget } ->
    Printf.sprintf {|{"ev":"corrupt","net":%d,"round":%d,"proc":%d,"total":%d,"budget":%d}|}
      net round proc total budget
  | Phase { name } -> Printf.sprintf {|{"ev":"phase","name":"%s"}|} (escape name)
  | Decide { net; proc; value } ->
    Printf.sprintf {|{"ev":"decide","net":%d,"proc":%d,"value":%d}|} net proc value
  | Round_end { net; round; msgs; bits; adv_msgs; adv_bits } ->
    Printf.sprintf
      {|{"ev":"round_end","net":%d,"round":%d,"msgs":%d,"bits":%d,"adv_msgs":%d,"adv_bits":%d}|}
      net round msgs bits adv_msgs adv_bits
  | Meter_proc { net; proc; sent_bits; recv_bits; sent_msgs } ->
    Printf.sprintf
      {|{"ev":"meter","net":%d,"proc":%d,"sent_bits":%d,"recv_bits":%d,"sent_msgs":%d}|}
      net proc sent_bits recv_bits sent_msgs
  | Run_end { net; rounds; total_bits } ->
    Printf.sprintf {|{"ev":"run_end","net":%d,"rounds":%d,"total_bits":%d}|} net rounds
      total_bits
  | Fault { net; round; kind; proc; dst; info } ->
    Printf.sprintf
      {|{"ev":"fault","net":%d,"round":%d,"kind":"%s","proc":%d,"dst":%d,"info":%d}|}
      net round (escape kind) proc dst info
  | Quarantine { net; round; accuser; offender; evidence; info } ->
    Printf.sprintf
      {|{"ev":"quarantine","net":%d,"round":%d,"accuser":%d,"offender":%d,"evidence":"%s","info":%d}|}
      net round accuser offender (escape evidence) info
  | Violation { invariant; net; proc; round; observed; bound; detail } ->
    Printf.sprintf
      {|{"ev":"violation","invariant":"%s","net":%d,"proc":%d,"round":%d,"observed":%.17g,"bound":%.17g,"detail":"%s"}|}
      (escape invariant) net proc round observed bound (escape detail)

(* --- Parsing.  A minimal scanner for the flat objects above: string,
   integer, float and boolean values only.  Anything else is a malformed
   trace line. --- *)

type jv = I of int | F of float | B of bool | S of string

exception Malformed

let parse_flat s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= len then raise Malformed else s.[!pos] in
  let skip_ws () =
    while !pos < len && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Malformed;
    incr pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 >= len then raise Malformed;
           let hex = String.sub s (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some c when c < 0x80 -> Buffer.add_char b (Char.chr c)
            | Some _ | None -> raise Malformed);
           pos := !pos + 4
         | _ -> raise Malformed);
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let value () =
    skip_ws ();
    match peek () with
    | '"' -> S (string_lit ())
    | 't' ->
      if !pos + 4 <= len && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        B true
      end
      else raise Malformed
    | 'f' ->
      if !pos + 5 <= len && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        B false
      end
      else raise Malformed
    | _ ->
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        || c = 'n' || c = 'a' || c = 'i' || c = 'f'
        (* nan / inf *)
      in
      while !pos < len && is_num s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      (match int_of_string_opt tok with
       | Some i -> I i
       | None ->
         (match float_of_string_opt tok with
          | Some f -> F f
          | None -> raise Malformed))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then incr pos
  else begin
    let rec members () =
      let k = string_lit () in
      expect ':';
      let v = value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' ->
        incr pos;
        skip_ws ();
        members ()
      | '}' -> incr pos
      | _ -> raise Malformed
    in
    members ()
  end;
  List.rev !fields

let of_json line =
  match parse_flat line with
  | exception Malformed -> None
  | fields ->
    let int k =
      match List.assoc_opt k fields with Some (I i) -> i | _ -> raise Malformed
    in
    let flo k =
      match List.assoc_opt k fields with
      | Some (F f) -> f
      | Some (I i) -> float_of_int i
      | _ -> raise Malformed
    in
    let str k =
      match List.assoc_opt k fields with Some (S s) -> s | _ -> raise Malformed
    in
    let boo k =
      match List.assoc_opt k fields with Some (B b) -> b | _ -> raise Malformed
    in
    (try
       match List.assoc_opt "ev" fields with
       | Some (S "run_start") ->
         Some
           (Run_start
              { net = int "net"; label = str "label"; n = int "n"; budget = int "budget" })
       | Some (S "round_start") ->
         Some (Round_start { net = int "net"; round = int "round" })
       | Some (S "send") ->
         Some
           (Send
              { net = int "net"; round = int "round"; src = int "src"; dst = int "dst";
                bits = int "bits"; adv = boo "adv" })
       | Some (S "corrupt") ->
         Some
           (Corrupt
              { net = int "net"; round = int "round"; proc = int "proc";
                total = int "total"; budget = int "budget" })
       | Some (S "phase") -> Some (Phase { name = str "name" })
       | Some (S "decide") ->
         Some (Decide { net = int "net"; proc = int "proc"; value = int "value" })
       | Some (S "round_end") ->
         Some
           (Round_end
              { net = int "net"; round = int "round"; msgs = int "msgs";
                bits = int "bits"; adv_msgs = int "adv_msgs"; adv_bits = int "adv_bits" })
       | Some (S "meter") ->
         Some
           (Meter_proc
              { net = int "net"; proc = int "proc"; sent_bits = int "sent_bits";
                recv_bits = int "recv_bits"; sent_msgs = int "sent_msgs" })
       | Some (S "run_end") ->
         Some
           (Run_end { net = int "net"; rounds = int "rounds"; total_bits = int "total_bits" })
       | Some (S "fault") ->
         Some
           (Fault
              { net = int "net"; round = int "round"; kind = str "kind";
                proc = int "proc"; dst = int "dst"; info = int "info" })
       | Some (S "quarantine") ->
         Some
           (Quarantine
              { net = int "net"; round = int "round"; accuser = int "accuser";
                offender = int "offender"; evidence = str "evidence";
                info = int "info" })
       | Some (S "violation") ->
         Some
           (Violation
              { invariant = str "invariant"; net = int "net"; proc = int "proc";
                round = int "round"; observed = flo "observed"; bound = flo "bound";
                detail = str "detail" })
       | _ -> None
     with Malformed -> None)
