(** The hub fans one event stream out to a trace sink and a set of
    monitors, and collects the violations they emit.

    Wiring: [Ks_sim.Net.create] attaches a hub (an explicit [?hub]
    argument, or the {e ambient} hub installed by {!with_ambient}) and
    registers itself via {!register_net}; every subsequent exchange
    feeds events here.  [Ks_sim.Engine.run ?monitors ?trace] builds a
    hub and attaches it for protocol-level users. *)

type t

(** [create ?trace ?trace_sends monitors] — [trace_sends] (default
    [true]) controls whether per-message [Send] events reach the trace
    sink; monitors always see them.  Set it [false] (or use a ring sink)
    for low-overhead always-on monitoring.  [close_trace] (default
    [true]) makes {!finish} close the sink; pass [false] when several
    hubs share one sink — it is flushed instead, and the owner closes
    it. *)
val create :
  ?trace:Trace.sink -> ?trace_sends:bool -> ?close_trace:bool -> Monitor.t list -> t

val add_monitor : t -> Monitor.t -> unit
val trace : t -> Trace.sink option

(** [emit t ev] — write to the trace and feed every monitor. *)
val emit : t -> Event.t -> unit

(** [register_net t ~label ~n ~budget] — allocate a fresh net id and
    emit its [Run_start]. *)
val register_net : t -> label:string -> n:int -> budget:int -> int

(** [phase t name] — emit a protocol-phase marker. *)
val phase : t -> string -> unit

(** Violations collected so far, oldest first. *)
val violations : t -> Monitor.violation list

(** [finish t] — run every monitor's end-of-run check, close the trace,
    and return all violations.  Idempotent. *)
val finish : t -> Monitor.violation list

(** [render_violations vs] — the violation table ([Ks_stdx.Table]). *)
val render_violations : Monitor.violation list -> string

(** [report t] — [Some table] when violations were recorded. *)
val report : t -> string option

(** {1 Ambient installation} *)

(** The hub new networks attach to when no explicit [?hub] is given. *)
val ambient : unit -> t option

(** [with_ambient t f] — run [f] with [t] installed as the ambient hub
    (restored afterwards, exception-safe). *)
val with_ambient : t -> (unit -> 'a) -> 'a
