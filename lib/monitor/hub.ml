type t = {
  mutable monitors : Monitor.t list;
  trace : Trace.sink option;
  trace_sends : bool;
  close_trace : bool;
  mutable violations : Monitor.violation list; (* newest first *)
  mutable net_counter : int;
  mutable finished : bool;
}

let create ?trace ?(trace_sends = true) ?(close_trace = true) monitors =
  {
    monitors;
    trace;
    trace_sends;
    close_trace;
    violations = [];
    net_counter = 0;
    finished = false;
  }

let add_monitor t m = t.monitors <- t.monitors @ [ m ]
let trace t = t.trace

let violation_event (v : Monitor.violation) =
  Event.Violation
    {
      invariant = v.Monitor.invariant;
      net = v.Monitor.net;
      proc = Option.value ~default:(-1) v.Monitor.proc;
      round = v.Monitor.round;
      observed = v.Monitor.observed;
      bound = v.Monitor.bound;
      detail = v.Monitor.detail;
    }

let record t v =
  t.violations <- v :: t.violations;
  (* Violations land in the trace too, but are never fed back to
     monitors — no re-entrancy. *)
  match t.trace with Some sink -> Trace.emit sink (violation_event v) | None -> ()

let emit t ev =
  (match t.trace with
   | Some sink ->
     (match ev with
      | Event.Send _ when not t.trace_sends -> ()
      | _ -> Trace.emit sink ev)
   | None -> ());
  List.iter (fun m -> Monitor.feed m ~emit:(record t) ev) t.monitors

let register_net t ~label ~n ~budget =
  t.net_counter <- t.net_counter + 1;
  let id = t.net_counter in
  emit t (Event.Run_start { net = id; label; n; budget });
  id

let phase t name = emit t (Event.Phase { name })
let violations t = List.rev t.violations

let finish t =
  if not t.finished then begin
    t.finished <- true;
    List.iter (fun m -> Monitor.finish m ~emit:(record t)) t.monitors;
    match t.trace with
    | Some sink -> if t.close_trace then Trace.close sink else Trace.flush sink
    | None -> ()
  end;
  violations t

let render_violations vs =
  let fp = function Some p -> string_of_int p | None -> "-" in
  let rows =
    List.map
      (fun (v : Monitor.violation) ->
        [
          v.Monitor.invariant;
          string_of_int v.Monitor.net;
          fp v.Monitor.proc;
          (if v.Monitor.round < 0 then "-" else string_of_int v.Monitor.round);
          Printf.sprintf "%.0f" v.Monitor.observed;
          Printf.sprintf "%.0f" v.Monitor.bound;
          v.Monitor.detail;
        ])
      vs
  in
  Ks_stdx.Table.render ~title:"INVARIANT VIOLATIONS"
    ~headers:[ "invariant"; "net"; "proc"; "round"; "observed"; "bound"; "detail" ]
    rows

let report t =
  match violations t with [] -> None | vs -> Some (render_violations vs)

(* --- Ambient installation.  [Ks_sim.Net.create] attaches the ambient
   hub by default, so wrapping any existing entry point in
   [with_ambient] monitors every network it creates without threading a
   parameter through the whole stack. --- *)

let current : t option ref = ref None
let ambient () = !current

let with_ambient t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f
