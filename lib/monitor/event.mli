(** Structured simulation events — the shared vocabulary of the monitor
    and trace layer.

    Every network created during a monitored run gets a fresh [net] id
    (from {!Hub.register_net}); all events carry it so that interleaved
    networks (the tree net keeps metering coin opens while the
    amplification net runs, for example) stay distinguishable in a single
    stream.

    Events serialise to single-line JSON objects (JSONL when written one
    per line).  Field order is fixed, so identical event streams render
    to byte-identical text — the determinism regression tests rely on
    this. *)

type t =
  | Run_start of { net : int; label : string; n : int; budget : int }
      (** a network came up: [label] names the protocol phase
          ("tree", "a2e", "rabin", ...) *)
  | Round_start of { net : int; round : int }
  | Send of { net : int; round : int; src : int; dst : int; bits : int; adv : bool }
      (** one delivered message; [adv] marks adversarial traffic injected
          by the strategy's [act] on behalf of corrupted processors
          (metered against the corrupted sender, but excluded from
          good-processor bit budgets) *)
  | Corrupt of { net : int; round : int; proc : int; total : int; budget : int }
      (** [proc] fell; [total] corruptions so far against [budget] *)
  | Phase of { name : string }  (** protocol-phase transition marker *)
  | Decide of { net : int; proc : int; value : int }
      (** a good processor's final decision (only emitted by protocols
          whose contract is {e everywhere} agreement) *)
  | Round_end of {
      net : int;
      round : int;
      msgs : int;
      bits : int;
      adv_msgs : int;
      adv_bits : int;
    }  (** per-round aggregate message and bit counts *)
  | Meter_proc of {
      net : int;
      proc : int;
      sent_bits : int;
      recv_bits : int;
      sent_msgs : int;
    }
      (** meter snapshot for one processor; emitted at the end of a run —
          when re-emitted (a net metered again by a later phase), the
          {e last} snapshot per (net, proc) is authoritative *)
  | Run_end of { net : int; rounds : int; total_bits : int }
  | Fault of { net : int; round : int; kind : string; proc : int; dst : int; info : int }
      (** a benign fault injected by [Ks_faults] (docs/FAULTS.md):
          [kind] is one of ["drop"], ["dup"], ["crash"], ["recover"],
          ["silence"]; [dst] is -1 for processor-state faults
          (crash/recover/silence); [info] carries the dropped or
          duplicated message's bits, or the silence-window length *)
  | Quarantine of {
      net : int;
      round : int;
      accuser : int;
      offender : int;
      evidence : string;
      info : int;
    }
      (** [accuser] recorded proof of misbehaviour by [offender] and
          stopped accepting its messages: [evidence] is one of
          ["out_of_field"] (share word outside Z_p), ["wrong_length"]
          (payload length differs from the publicly known size) or
          ["equivocation"] (two conflicting values for the same slot on
          a private channel); [info] carries the offending word, length
          or instance (docs/ATTACKS.md) *)
  | Violation of {
      invariant : string;
      net : int;
      proc : int;  (** -1 when the violation is not tied to a processor *)
      round : int;
      observed : float;
      bound : float;
      detail : string;
    }

(** [to_json e] — one-line JSON, no trailing newline. *)
val to_json : t -> string

(** [of_json line] — inverse of [to_json]; [None] on malformed input. *)
val of_json : string -> t option
