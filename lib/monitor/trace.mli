(** Trace sinks (JSONL file / in-memory ring buffer) and the replay
    reader used by tests and tooling to assert event-level properties.

    A file sink writes one JSON object per line as events arrive.  A
    ring sink keeps only the most recent [capacity] events in memory —
    the low-overhead mode for always-on monitoring of long runs, and the
    determinism tests' way of capturing a run without touching disk. *)

type sink

(** [file path] — open [path] for writing; one JSON line per event.
    [close] flushes and closes the file. *)
val file : string -> sink

(** [channel oc] — write to an existing channel; [close] flushes but
    does not close [oc]. *)
val channel : out_channel -> sink

(** [ring ~capacity] — keep the last [capacity] events in memory. *)
val ring : capacity:int -> sink

val emit : sink -> Event.t -> unit
val flush : sink -> unit

val close : sink -> unit

(** [contents sink] — the buffered events, oldest first.  Only ring
    sinks buffer; file/channel sinks return []. *)
val contents : sink -> Event.t list

(** [render events] — the exact JSONL text the events serialise to
    (used to compare traces byte-for-byte). *)
val render : Event.t list -> string

(** [replay path] — parse a JSONL trace file back into events.
    Raises [Failure] naming the offending line on malformed input. *)
val replay : string -> Event.t list

(** [sent_bits_by_proc events] — per-(net, proc) metered sent bits summed
    from the [Send] events (adversarial traffic excluded), for
    cross-checking against meter snapshots. *)
val sent_bits_by_proc : Event.t list -> (int * int, int) Hashtbl.t

(** [meter_by_proc events] — the {e last} [Meter_proc] snapshot per
    (net, proc): [(sent_bits, recv_bits, sent_msgs)]. *)
val meter_by_proc : Event.t list -> (int * int, int * int * int) Hashtbl.t
