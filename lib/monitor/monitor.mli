(** Pluggable run-time invariant monitors.

    A monitor consumes the event stream of a monitored run (see
    {!Event.t}) and emits structured {!violation}s the moment an
    invariant breaks — during execution, not just in the end-of-run
    summary.  Monitors are passive: they never touch the simulation's
    PRNG streams or message flow, so enabling them cannot change a
    run's outcome.

    Built-ins cover the paper's Theorem 1 guarantees: agreement,
    validity, the Õ(√n) per-processor bit budget, polylog round counts,
    and corruption-budget accounting. *)

type violation = {
  invariant : string;  (** which monitor fired *)
  net : int;  (** network id (see {!Event.t}); 0 when global *)
  proc : int option;  (** offending processor, when one is implicated *)
  round : int;  (** round at violation time; -1 when roundless *)
  observed : float;
  bound : float;
  detail : string;  (** human-readable one-liner *)
}

type t

(** [make ~name ?on_event ?at_finish ()] — a monitor from an event
    callback; call [emit] for each violation found.  [at_finish] runs
    when the hub is finished, for end-of-run invariants. *)
val make :
  name:string ->
  ?on_event:(emit:(violation -> unit) -> Event.t -> unit) ->
  ?at_finish:(emit:(violation -> unit) -> unit) ->
  unit ->
  t

(** [hooks ~name ?on_round ?on_send ?on_decide ?at_finish ()] — the
    hook-style constructor: per-round, per-send and per-decision
    callbacks dispatched from the event stream. *)
val hooks :
  name:string ->
  ?on_round:(emit:(violation -> unit) -> net:int -> round:int -> unit) ->
  ?on_send:
    (emit:(violation -> unit) ->
    net:int -> round:int -> src:int -> dst:int -> bits:int -> adv:bool -> unit) ->
  ?on_decide:(emit:(violation -> unit) -> net:int -> proc:int -> value:int -> unit) ->
  ?at_finish:(emit:(violation -> unit) -> unit) ->
  unit ->
  t

val name : t -> string

(** [feed t ~emit ev] — drive one event through the monitor (the hub
    calls this; exposed for tests). *)
val feed : t -> emit:(violation -> unit) -> Event.t -> unit

(** [finish t ~emit] — run the end-of-run check. *)
val finish : t -> emit:(violation -> unit) -> unit

(** {1 Built-ins} *)

(** [corruption_budget ()] fires when a [Corrupt] event reports more
    total corruptions than the originating network's own budget (a
    regression in [Ks_sim.Net]'s enforcement).  [?limit] substitutes a
    stricter budget — the way tests deliberately trip the monitor. *)
val corruption_budget : ?limit:int -> unit -> t

(** [default_bit_bound ?c ~n ()] = [c · √n · log₂³ n]. *)
val default_bit_bound : ?c:float -> n:int -> unit -> float

(** [bit_budget ?labels ?bound ()] — flags any processor whose metered
    sent bits on a watched network exceed [bound ~n] (default
    {!default_bit_bound}).  [labels] restricts to networks whose
    [Run_start] label matches (the Õ(√n) theorem is about the King–Saia
    phases, not the O(n²) baselines); empty/omitted watches every
    network.  Adversarial traffic is never counted. *)
val bit_budget : ?labels:string list -> ?bound:(n:int -> float) -> unit -> t

(** [default_round_bound ?c ~n ()] = [c · log₂² n]. *)
val default_round_bound : ?c:float -> n:int -> unit -> float

(** [round_bound ?labels ?bound ()] — fires when a watched network
    starts a round past [bound ~n]. *)
val round_bound : ?labels:string list -> ?bound:(n:int -> float) -> unit -> t

(** [agreement ()] — all [Decide] events on one network must carry one
    value; re-decisions must not change a processor's value. *)
val agreement : unit -> t

(** [validity ~inputs] — when [inputs] (one per processor, as ints) are
    unanimous, every decision must equal that input.  Inert otherwise. *)
val validity : inputs:int array -> t

(** [decided_everywhere ~n] — end-of-run check that every never-corrupted
    processor in [0, n) decided. *)
val decided_everywhere : n:int -> t
