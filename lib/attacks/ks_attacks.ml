(* Seeded, replayable active-Byzantine strategies against the simulator's
   adversary interface (Ks_sim.Adversary.make).  Every strategy draws only
   from the view's adversary RNG, so a run is a pure function of its seed;
   compiling this library changes nothing about unattacked runs.

   Each attack packages the three per-phase strategies the Everywhere
   stack wants — the tree phase (Comm payloads), the amplification phase
   (Ae_to_e messages) and the plain vote nets used by Algorithm 5 and the
   Rabin baseline — plus the Comm behavior policy applied to whatever the
   corrupted processors would have sent anyway.  docs/ATTACKS.md is the
   narrative catalog; table T17 measures the breaking points. *)

module Prng = Ks_stdx.Prng
module Zp = Ks_field.Zp
module Params = Ks_core.Params
module Comm = Ks_core.Comm
module A2e = Ks_core.Ae_to_e
module Tree = Ks_topology.Tree
module Adversary = Ks_sim.Adversary
open Ks_sim.Types

type t = {
  name : string;
  doc : string;
  behavior : Comm.behavior;
  tree : params:Params.t -> tree:Tree.t -> Comm.payload strategy;
  a2e :
    params:Params.t ->
    carried:int list ->
    coin:(iteration:int -> int -> int option) ->
    A2e.msg strategy;
  vote : params:Params.t -> bool strategy;
}

(* The attack budget is the swept corruption fraction, NOT clamped to the
   model's (1/3 - eps) allowance: T17 deliberately walks past 1/3 to find
   the breaking points.  The engine itself caps at n - 1. *)
let budget ~params ~fraction =
  let n = params.Params.n in
  Stdlib.min (n - 1) (int_of_float (fraction *. float_of_int n))

(* The tree the protocol actually builds.  Ae_ba.run derives it from its
   seed ([Prng.split] of the seed's root stream); Everywhere.run derives
   the Ae_ba seed as the first [bits64] of its own root.  Mirroring that
   derivation is legitimate adversary knowledge — the tree is built by
   public samplers — and lets targeted attacks aim at the real topology
   rather than a lookalike.  test_attacks pins this coupling against
   [Comm.tree] so a drift in the seed plumbing fails loudly. *)
let ae_seed_of seed = Prng.bits64 (Prng.create seed)

let protocol_tree ~params ~ae_seed =
  let root = Prng.create ae_seed in
  Tree.build (Prng.split root) (Params.tree_config params)

(* The public length of every candidate array, craftable from params and
   tree alone — what a forged Deal must match to pass the length gate. *)
let array_len ~params ~tree =
  (Ks_core.Ae_ba.Layout.make params tree).Ks_core.Ae_ba.Layout.total

let static rng ~n ~budget = Adversary.uniform_random_set rng ~n ~budget

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* Corrupt up to [per_node] members of each level-1 node, nodes visited in
   a seeded random order, until the budget runs out.  Because processors
   sit in several leaf nodes, the realised per-node corruption can exceed
   [per_node] by the overlap; the targeted tests pin exact sets instead. *)
let per_leaf_targets rng tree ~per_node ~budget =
  let leaves = Tree.node_count tree ~level:1 in
  let order = Prng.permutation rng leaves in
  let chosen = ref [] and left = ref budget in
  Array.iter
    (fun leaf ->
      if !left > 0 then begin
        let members = Tree.members tree ~level:1 ~node:leaf in
        let taken = ref 0 in
        Array.iter
          (fun p ->
            if !left > 0 && !taken < per_node && not (List.mem p !chosen) then begin
              chosen := p :: !chosen;
              incr taken;
              decr left
            end)
          members
      end)
    order;
  !chosen

(* Berlekamp–Welch correction radius of one leaf decode. *)
let leaf_radius ~params ~tree =
  let k1 = Tree.node_size tree ~level:1 in
  let t1 = Params.share_threshold params ~holders:k1 in
  Stdlib.max 0 ((k1 - t1 - 1) / 2)

(* Shared inert pieces: a static random corruption set with no extra
   messages, for the phases an attack does not target. *)
let passive_a2e name ~params:_ ~carried ~coin:_ =
  Ks_core.Everywhere.carry_corruptions
    (Adversary.make ~name ~initial_corruptions:static ())
    ~carried

let passive_vote name ~params:_ =
  Adversary.make ~name ~initial_corruptions:static ()

(* Minority echo on plain vote nets (the classic coin-biasing move the
   baselines already face in the workload layer). *)
let minority_echo_vote name ~params:_ =
  Adversary.make ~name ~initial_corruptions:static
    ~act:(fun view ->
      let ones =
        List.fold_left (fun acc e -> if e.payload then acc + 1 else acc) 0
          view.view_visible
      in
      let total = List.length view.view_visible in
      let minority =
        if total = 0 then Prng.bool view.view_rng else 2 * ones < total
      in
      List.concat_map
        (fun p ->
          List.init view.view_n (fun dst -> { src = p; dst; payload = minority }))
        view.view_corrupt)
    ()

(* Per-recipient split vote: tell every even destination [true] and every
   odd one [false] — maximal disagreement pressure on threshold rules. *)
let split_vote name ~params:_ =
  Adversary.make ~name ~initial_corruptions:static
    ~act:(fun view ->
      List.concat_map
        (fun p ->
          List.init view.view_n (fun dst ->
              { src = p; dst; payload = dst land 1 = 0 }))
        view.view_corrupt)
    ()

(* --- equivocate -------------------------------------------------------- *)

(* Rushing equivocation: the behavior policy already tells a different
   in-field lie per recipient parity class; on top of that, each corrupted
   dealer sends a second, conflicting copy of its Deal down the same
   private channels in the deal round (round 0).  Two conflicting values
   for the same slot from the same sender is exactly the provable evidence
   the quarantine layer wants ("equivocation"). *)
let equivocate_tree ~params ~tree =
  let len = array_len ~params ~tree in
  Adversary.make ~name:"equivocate" ~initial_corruptions:static
    ~act:(fun view ->
      if view.view_round <> 0 then []
      else
        List.concat_map
          (fun p ->
            let members = Tree.members tree ~level:1 ~node:p in
            Array.to_list
              (Array.mapi
                 (fun h dst ->
                   let words =
                     Array.init len (fun _ -> Zp.random view.view_rng)
                   in
                   { src = p; dst; payload = Comm.Deal { cand = p; inst = h; words } })
                 members))
          view.view_corrupt)
    ()

(* Conflicting replies per requester parity: requesters with even ids are
   told 0, odd ones 1 — within one response round. *)
let equivocate_a2e ~params:_ ~carried ~coin:_ =
  let base =
    Adversary.make ~name:"equivocate" ~initial_corruptions:static
      ~act:(fun view ->
        List.filter_map
          (fun e ->
            match e.payload with
            | A2e.Request label ->
              Some
                { src = e.dst; dst = e.src;
                  payload = A2e.Reply { label; value = e.src land 1 } }
            | A2e.Reply _ -> None)
          view.view_visible)
      ()
  in
  Ks_core.Everywhere.carry_corruptions base ~carried

let equivocate =
  {
    name = "equivocate";
    doc =
      "rushing equivocation: conflicting in-field values to different \
       recipients within a round, plus duplicate conflicting deals on the \
       same channel (provable evidence)";
    behavior = Comm.Equivocate;
    tree = equivocate_tree;
    a2e = equivocate_a2e;
    vote = (fun ~params -> split_vote "equivocate" ~params);
  }

(* --- bad-share flooding ------------------------------------------------ *)

(* Shares off the dealt polynomial, targeted at the Berlekamp–Welch
   radius.  [Flip] adds one to every word, so the liars agree on the
   consistent wrong polynomial p(x) + 1 — the worst consistent lie.
   Inside the radius the robust decoder corrects all of it; just outside,
   decodes fail detectably (graceful degradation), never silently. *)
let bad_share_tree ~just_outside ~params ~tree =
  let radius = leaf_radius ~params ~tree in
  let per_node = if just_outside then radius + 1 else radius in
  Adversary.make
    ~name:(if just_outside then "bad-share-outside" else "bad-share-inside")
    ~initial_corruptions:(fun rng ~n:_ ~budget ->
      per_leaf_targets rng tree ~per_node ~budget)
    ()

let bad_share_inside =
  {
    name = "bad-share-inside";
    doc =
      "off-polynomial shares from at most the Berlekamp-Welch radius of \
       holders per leaf: robust decoding must correct every one";
    behavior = Comm.Flip;
    tree = bad_share_tree ~just_outside:false;
    a2e = passive_a2e "bad-share-inside";
    vote = (fun ~params -> passive_vote "bad-share-inside" ~params);
  }

let bad_share_outside =
  {
    name = "bad-share-outside";
    doc =
      "off-polynomial shares from one holder past the decoding radius per \
       leaf: decodes fail detectably instead of flipping";
    behavior = Comm.Flip;
    tree = bad_share_tree ~just_outside:true;
    a2e = passive_a2e "bad-share-outside";
    vote = (fun ~params -> minority_echo_vote "bad-share-outside" ~params);
  }

(* --- hunt-committee ---------------------------------------------------- *)

(* Adaptive sampler/committee corruption: half the budget up front, the
   rest spent hunting the members of the top election level — the node
   whose winners feed the root agreement — preferring processors the
   rushing view just saw talking (their queued messages are reclaimed the
   moment they fall). *)
let hunt_tree ~params:_ ~tree =
  let top = Stdlib.max 2 (Tree.levels tree - 1) in
  let top_members =
    List.sort_uniq Int.compare
      (List.concat_map
         (fun node -> Array.to_list (Tree.members tree ~level:top ~node))
         (List.init (Tree.node_count tree ~level:top) (fun j -> j)))
  in
  Adversary.make ~name:"hunt-committee"
    ~initial_corruptions:(fun rng ~n ~budget ->
      Adversary.uniform_random_set rng ~n ~budget:(budget / 2))
    ~adapt:(fun view ->
      if view.view_budget_left <= 0 then []
      else begin
        let fresh =
          List.filter (fun p -> not (view.view_is_corrupt p)) top_members
        in
        let seen =
          List.sort_uniq Int.compare
            (List.filter_map
               (fun e -> if List.mem e.src fresh then Some e.src else None)
               view.view_visible)
        in
        take 2 (match seen with [] -> fresh | s -> s)
      end)
    ()

(* Same hunt in the amplification phase: corrupted processors probe with
   requests; any knowledgeable processor whose reply becomes visible is
   corrupted next round, eating the reply on its way out. *)
let hunt_a2e ~params ~carried ~coin:_ =
  let labels = params.Params.a2e_labels in
  let base =
    Adversary.make ~name:"hunt-committee" ~initial_corruptions:static
      ~adapt:(fun view ->
        if view.view_budget_left <= 0 then []
        else
          take 2
            (List.sort_uniq Int.compare
               (List.filter_map
                  (fun e ->
                    match e.payload with
                    | A2e.Reply _ when not (view.view_is_corrupt e.src) ->
                      Some e.src
                    | _ -> None)
                  view.view_visible)))
      ~act:(fun view ->
        if view.view_round mod 2 <> 0 then []
        else
          List.map
            (fun p ->
              let dst = Prng.int view.view_rng view.view_n in
              { src = p; dst;
                payload = A2e.Request (Prng.int view.view_rng labels) })
            view.view_corrupt)
      ()
  in
  Ks_core.Everywhere.carry_corruptions base ~carried

let hunt_committee =
  {
    name = "hunt-committee";
    doc =
      "adaptive hunt: half the budget up front, the rest corrupting top \
       election-node members and observed responders via the rushing view";
    behavior = Comm.Garbage;
    tree = hunt_tree;
    a2e = hunt_a2e;
    vote = (fun ~params -> passive_vote "hunt-committee" ~params);
  }

(* --- coin-split -------------------------------------------------------- *)

(* Coin-flip biasing against the Algorithm 5 rule: corrupted node members
   answer every election/agreement instance they can see with a vote that
   depends only on the recipient's parity, keeping the two halves of every
   node maximally split so the (2/3 + eps/2) threshold never clears. *)
let coin_split_tree ~params:_ ~tree =
  Adversary.make ~name:"coin-split" ~initial_corruptions:static
    ~act:(fun view ->
      let seen = Hashtbl.create 8 in
      List.concat_map
        (fun e ->
          match e.payload with
          | Comm.Vote { level; node; ba; vote = _ }
            when not (Hashtbl.mem seen (level, node, ba)) ->
            Hashtbl.add seen (level, node, ba) ();
            let members = Tree.members tree ~level ~node in
            List.concat_map
              (fun p ->
                match Tree.position_of tree ~level ~node p with
                | None -> []
                | Some _ ->
                  Array.to_list
                    (Array.map
                       (fun dst ->
                         { src = p; dst;
                           payload =
                             Comm.Vote
                               { level; node; ba; vote = dst land 1 = 0 } })
                       members))
              view.view_corrupt
          | Comm.Votes { level; node; packed }
            when not (Hashtbl.mem seen (level, node, -1)) ->
            Hashtbl.add seen (level, node, -1) ();
            let members = Tree.members tree ~level ~node in
            let flipped =
              Bytes.init (Bytes.length packed) (fun i ->
                  Char.chr (lnot (Char.code (Bytes.get packed i)) land 0xFF))
            in
            List.concat_map
              (fun p ->
                match Tree.position_of tree ~level ~node p with
                | None -> []
                | Some _ ->
                  Array.to_list
                    (Array.map
                       (fun dst ->
                         let payload =
                           Comm.Votes
                             { level; node;
                               packed =
                                 (if dst land 1 = 0 then Bytes.copy packed
                                  else flipped) }
                         in
                         { src = p; dst; payload })
                       members))
              view.view_corrupt
          | _ -> [])
        view.view_visible)
    ()

let coin_split =
  {
    name = "coin-split";
    doc =
      "coin biasing: per-recipient-parity conflicting votes in every \
       election and agreement instance the rushing view exposes";
    behavior = Comm.Follow;
    tree = coin_split_tree;
    a2e = passive_a2e "coin-split";
    vote = (fun ~params -> split_vote "coin-split" ~params);
  }

(* --- wire-junk --------------------------------------------------------- *)

(* Malformed-wire injection: syntactically well-formed envelopes whose
   contents violate the public contracts — words outside Z_p, wrong vector
   lengths, out-of-range identifiers — thrown at every decode path.  The
   hardened handlers must reject each one with a typed refusal (quarantine
   evidence where the sender slot is provable, a silent drop where it is
   not), never an exception.  Byte-level garbage is covered by the wire
   fuzzers in test_attacks, which drive the decoders directly. *)
let wire_junk_tree ~params ~tree =
  let len = array_len ~params ~tree in
  Adversary.make ~name:"wire-junk" ~initial_corruptions:static
    ~act:(fun view ->
      let deals =
        if view.view_round <> 0 then []
        else
          List.concat_map
            (fun p ->
              let members = Tree.members tree ~level:1 ~node:p in
              Array.to_list
                (Array.mapi
                   (fun h dst ->
                     let payload =
                       if h land 1 = 0 then
                         (* A word past the modulus: out_of_field evidence. *)
                         Comm.Deal
                           { cand = p; inst = h;
                             words =
                               Array.init len (fun i ->
                                   if i = 0 then Zp.p + 1 + Prng.int view.view_rng 1000
                                   else Zp.random view.view_rng) }
                       else
                         (* One word too many: wrong_length evidence. *)
                         Comm.Deal
                           { cand = p; inst = h;
                             words =
                               Array.init (len + 1) (fun _ ->
                                   Zp.random view.view_rng) }
                     in
                     { src = p; dst; payload })
                   members))
            view.view_corrupt
      in
      (* A steady drizzle of decodable-but-illegitimate payloads at random
         processors: absurd identifiers, negative words, foreign slots.
         Every handler's route guards must drop them on the floor. *)
      let spray =
        List.map
          (fun p ->
            let dst = Prng.int view.view_rng view.view_n in
            let payload =
              match Prng.int view.view_rng 3 with
              | 0 ->
                Comm.Share_up
                  { cand = 1 lsl 29; inst = Prng.int view.view_rng 4096;
                    words = [| -1; Zp.random view.view_rng |] }
              | 1 ->
                Comm.Share_down
                  { cand = Prng.int view.view_rng view.view_n;
                    level = 1 + Prng.int view.view_rng 30;
                    node = Prng.int view.view_rng 4096;
                    inst = Prng.int view.view_rng 4096;
                    off = Prng.int view.view_rng 64;
                    words = [| Zp.p + 7 |] }
              | _ ->
                Comm.Open_val
                  { cand = Prng.int view.view_rng view.view_n;
                    leaf = Prng.int view.view_rng 4096;
                    off = Prng.int view.view_rng 64;
                    words = [| Zp.random view.view_rng; -5 |] }
            in
            { src = p; dst; payload })
          view.view_corrupt
      in
      deals @ spray)
    ()

let wire_junk_a2e ~params:_ ~carried ~coin:_ =
  let base =
    Adversary.make ~name:"wire-junk" ~initial_corruptions:static
      ~act:(fun view ->
        List.map
          (fun p ->
            let dst = Prng.int view.view_rng view.view_n in
            let payload =
              if view.view_round mod 2 = 0 then
                A2e.Request (1 lsl 28)
              else
                A2e.Reply
                  { label = Prng.int view.view_rng (1 lsl 20); value = -42 }
            in
            { src = p; dst; payload })
          view.view_corrupt)
      ()
  in
  Ks_core.Everywhere.carry_corruptions base ~carried

let wire_junk =
  {
    name = "wire-junk";
    doc =
      "malformed injection: out-of-field words, wrong lengths and absurd \
       identifiers on every decode path; all must be rejected typed";
    behavior = Comm.Garbage;
    tree = wire_junk_tree;
    a2e = wire_junk_a2e;
    vote = (fun ~params -> passive_vote "wire-junk" ~params);
  }

(* --- registry ----------------------------------------------------------- *)

let all =
  [
    equivocate; bad_share_inside; bad_share_outside; hunt_committee; coin_split;
    wire_junk;
  ]

let find name = List.find_opt (fun a -> String.equal a.name name) all
