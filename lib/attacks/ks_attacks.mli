(** Seeded, replayable active-Byzantine attack strategies.

    Each attack bundles the Comm {!Ks_core.Comm.behavior} policy for the
    corrupted processors' regular protocol traffic with three bespoke
    {!Ks_sim.Types.strategy} constructors — one per network the
    Everywhere stack creates.  All randomness comes from the adversary
    view's RNG, so runs replay bit-identically from their seed; the
    library being linked changes nothing about unattacked executions.

    The catalog (docs/ATTACKS.md):
    - [equivocate] — rushing equivocation: conflicting in-field values per
      recipient parity, plus duplicate conflicting deals on one channel
      (the provable kind);
    - [bad-share-inside] / [bad-share-outside] — off-polynomial share
      floods targeted just inside / just outside the Berlekamp–Welch
      radius of each leaf decode;
    - [hunt-committee] — adaptive corruption of top election-node members
      and observed responders, driven by the rushing view;
    - [coin-split] — per-recipient-parity conflicting votes against every
      election and agreement instance ({!Ks_core.Aeba_coin} biasing);
    - [wire-junk] — malformed payloads (out-of-field words, wrong lengths,
      absurd identifiers) at every decode path. *)

type t = {
  name : string;  (** registry key; [ba_sim --attack NAME] *)
  doc : string;  (** one-line description ([--list-attacks]) *)
  behavior : Ks_core.Comm.behavior;
      (** what corrupted processors do with their regular tree traffic *)
  tree :
    params:Ks_core.Params.t ->
    tree:Ks_topology.Tree.t ->
    Ks_core.Comm.payload Ks_sim.Types.strategy;
  a2e :
    params:Ks_core.Params.t ->
    carried:int list ->
    coin:(iteration:int -> int -> int option) ->
    Ks_core.Ae_to_e.msg Ks_sim.Types.strategy;
      (** amplification-phase strategy; [carried] are the processors that
          fell during the tournament (already included) *)
  vote : params:Ks_core.Params.t -> bool Ks_sim.Types.strategy;
      (** plain vote nets: Algorithm 5 standalone and the Rabin baseline *)
}

val all : t list
val find : string -> t option

(** [budget ~params ~fraction] — ⌊fraction·n⌋ capped at n − 1 but {e not}
    at the model's (1/3 − ε) allowance: breaking-point sweeps walk past
    1/3 on purpose. *)
val budget : params:Ks_core.Params.t -> fraction:float -> int

(** Mirror of the protocol's seed plumbing: [ae_seed_of seed] is the
    tournament seed {!Ks_core.Everywhere.run} derives from its own, and
    [protocol_tree ~params ~ae_seed] rebuilds the exact tree
    {!Ks_core.Ae_ba.run} will build from it — public-sampler knowledge
    the model grants the adversary.  Pinned against [Comm.tree] in
    test_attacks. *)
val ae_seed_of : int64 -> int64

val protocol_tree :
  params:Ks_core.Params.t -> ae_seed:int64 -> Ks_topology.Tree.t

(** Exposed for tests: the per-leaf Berlekamp–Welch correction radius and
    the seeded per-leaf target picker the bad-share attacks use. *)
val leaf_radius : params:Ks_core.Params.t -> tree:Ks_topology.Tree.t -> int

val per_leaf_targets :
  Ks_stdx.Prng.t -> Ks_topology.Tree.t -> per_node:int -> budget:int -> int list

(** The public candidate-array length (words) a forged [Deal] must match. *)
val array_len : params:Ks_core.Params.t -> tree:Ks_topology.Tree.t -> int
