module Prng = Ks_stdx.Prng
open Ks_sim.Types

let log_src = Logs.Src.create "ks.everywhere" ~doc:"Algorithm 4 composition"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  ae : Ae_ba.result;
  a2e : Ae_to_e.result;
  success : bool;
  safe : bool;
  degraded : bool;
  decode_failures : int;
  retries_used : int;
  agreed_value : int option;
  ae_rounds : int;
  a2e_rounds : int;
  max_sent_bits_ae : int;
  max_sent_bits_a2e : int;
  max_sent_bits_total : int;
  total_sent_bits : int;
}

let carry_corruptions base ~carried =
  {
    base with
    initial_corruptions =
      (fun rng ~n ~budget -> carried @ base.initial_corruptions rng ~n ~budget);
  }

let run ?(retries = 0) ?quarantine ~params ~seed ~inputs ~behavior ~tree_strategy
    ~a2e_strategy ?budget () =
  let root = Prng.create seed in
  let ae_seed = Prng.bits64 root in
  let a2e_seed = Prng.bits64 root in
  (match Ks_monitor.Hub.ambient () with
   | Some h -> Ks_monitor.Hub.phase h "tournament"
   | None -> ());
  let ae =
    Ae_ba.run ~retries ?quarantine ~params ~seed:ae_seed ~inputs ~behavior
      ~strategy:tree_strategy ?budget ()
  in
  let ae_net = Comm.net ae.Ae_ba.comm in
  let carried =
    List.filter
      (fun p -> Ks_sim.Net.is_corrupt ae_net p)
      (List.init params.Params.n (fun i -> i))
  in
  let config = Ae_to_e.config_of_params params in
  let a2e_net =
    Ks_sim.Net.create ~label:"a2e" ~seed:a2e_seed ~n:params.Params.n
      ~budget:(Option.value ~default:(Params.corruption_budget params) budget)
      ~msg_bits:Ae_to_e.msg_bits
      ~strategy:(a2e_strategy ~carried ~coin:ae.Ae_ba.coin_view) ()
  in
  Log.info (fun m ->
      m "tournament done: a.e. agreement %.3f, %d corrupted; amplifying"
        ae.Ae_ba.agreement (List.length carried));
  (match Ks_monitor.Hub.ambient () with
   | Some h -> Ks_monitor.Hub.phase h "amplify"
   | None -> ());
  let knows p = Some (Bool.to_int ae.Ae_ba.votes.(p)) in
  let a2e =
    Ae_to_e.run ~net:a2e_net ~config ~knows ~coin:ae.Ae_ba.coin_view
  in
  (* Good = never corrupted in either phase. *)
  let good p =
    (not (Ks_sim.Net.is_corrupt ae_net p)) && not (Ks_sim.Net.is_corrupt a2e_net p)
  in
  let target = Bool.to_int ae.Ae_ba.majority in
  let success = ref true and safe = ref true in
  for p = 0 to params.Params.n - 1 do
    if good p then begin
      match a2e.Ae_to_e.decided.(p) with
      | Some v when v = target -> ()
      | Some _ -> success := false; safe := false
      | None -> success := false
    end
  done;
  (* Meters: the coin opens triggered lazily by the a2e phase landed on
     the tree network's meter, so read both only now. *)
  let ae_meter = Ks_sim.Net.meter ae_net in
  let a2e_meter = Ks_sim.Net.meter a2e_net in
  let goods = List.filter good (List.init params.Params.n (fun i -> i)) in
  let max_ae = Ks_sim.Meter.max_sent_bits ae_meter ~over:goods in
  let max_a2e = Ks_sim.Meter.max_sent_bits a2e_meter ~over:goods in
  let max_total =
    List.fold_left
      (fun acc p ->
        Stdlib.max acc
          (Ks_sim.Meter.sent_bits ae_meter p + Ks_sim.Meter.sent_bits a2e_meter p))
      0 goods
  in
  let total =
    List.fold_left
      (fun acc p ->
        acc + Ks_sim.Meter.sent_bits ae_meter p + Ks_sim.Meter.sent_bits a2e_meter p)
      0 goods
  in
  Log.info (fun m -> m "everywhere: success=%b safe=%b" !success !safe);
  (* The a2e phase triggers lazy coin opens charged to the tree meter, so
     the tree snapshot is only final now. *)
  Ks_sim.Net.emit_meter ae_net;
  let decode_failures = Comm.decode_failures ae.Ae_ba.comm in
  let retries_used = Comm.retries_used ae.Ae_ba.comm in
  {
    ae;
    a2e;
    success = !success;
    safe = !safe;
    degraded = decode_failures > 0 || retries_used > 0;
    decode_failures;
    retries_used;
    agreed_value = (if !success then Some target else None);
    ae_rounds = Ks_sim.Meter.rounds ae_meter;
    a2e_rounds = Ks_sim.Meter.rounds a2e_meter;
    max_sent_bits_ae = max_ae;
    max_sent_bits_a2e = max_a2e;
    max_sent_bits_total = max_total;
    total_sent_bits = total;
  }
