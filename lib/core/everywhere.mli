(** Everywhere Byzantine agreement — Algorithm 4 (§5), the paper's main
    result (Theorem 1).

    Composition: run the almost-everywhere tournament ({!Ae_ba}), then
    repeatedly amplify with {!Ae_to_e}, drawing each iteration's common
    random label from the almost-everywhere coin subsequence (§3.5) —
    each label is opened from the surviving arrays only when its
    iteration starts, so the adversary cannot target responders in
    advance.  Per-processor communication is dominated by the
    amplification phase's Õ(√n) bits.

    The corruption state carries across the phases: processors the
    adversary took during the tournament stay corrupted in the
    amplification network, and the overall budget is shared. *)

type result = {
  ae : Ae_ba.result;
  a2e : Ae_to_e.result;
  success : bool;
      (** every good processor decided the almost-everywhere majority *)
  safe : bool;  (** no good processor decided anything else *)
  degraded : bool;
      (** the tree phase detected robust-decode failures or spent
          re-request rounds (graceful degradation under benign faults —
          agreement may still hold; see docs/FAULTS.md) *)
  decode_failures : int;  (** decodes still failed after the retry budget *)
  retries_used : int;  (** re-request rounds actually taken *)
  agreed_value : int option;  (** the common decision when [success] *)
  ae_rounds : int;
  a2e_rounds : int;
  max_sent_bits_ae : int;  (** max bits sent by a good processor, AE phase *)
  max_sent_bits_a2e : int;
  max_sent_bits_total : int;
  total_sent_bits : int;  (** all good processors, both phases *)
}

(** [run ~params ~seed ~inputs ~behavior ~tree_strategy ~a2e_strategy] —
    [a2e_strategy] receives the processors already corrupted during the
    tournament (include them in its initial corruptions — use
    {!carry_corruptions}) and the §3.5 coin view, through which a
    flooding adversary learns each iteration's label exactly when its
    corrupted knowledgeable processors do.  [?retries] (default 0) is
    the tree phase's per-decode re-request budget ({!Comm.create});
    [?quarantine] (default true) arms the tree phase's
    provable-misbehaviour quarantine list. *)
val run :
  ?retries:int ->
  ?quarantine:bool ->
  params:Params.t ->
  seed:int64 ->
  inputs:bool array ->
  behavior:Comm.behavior ->
  tree_strategy:Comm.payload Ks_sim.Types.strategy ->
  a2e_strategy:
    (carried:int list ->
     coin:(iteration:int -> int -> int option) ->
     Ae_to_e.msg Ks_sim.Types.strategy) ->
  ?budget:int ->
  unit ->
  result

(** [carry_corruptions base ~carried] — a strategy that first corrupts
    [carried], then defers to [base] (whose own initial corruptions are
    applied after, within the remaining budget). *)
val carry_corruptions :
  'msg Ks_sim.Types.strategy -> carried:int list -> 'msg Ks_sim.Types.strategy
