(** Tree communication layer: [secretShare], [sendSecretUp], [sendDown]
    and [sendOpen] (§3.2.3), with the iterated-share bookkeeping of
    Definition 1.

    A candidate array is a vector of words.  After the initial deal it
    exists only as {e share instances}: the 1-shares held by the members
    of the candidate's level-1 node, then — after each [reshare_up] — as
    i-shares held by members of the level-i ancestor node, every lower
    level having been {e erased}.  The instance tree (who holds a share
    of which share) is determined purely by member {e positions} and the
    position-based uplink pattern, so one {!Structure} is shared by every
    candidate.

    Corrupted holders participate according to a {!behavior} policy
    (silent / garbage / flip / follow), wired into the network's
    adversary strategy by {!create}: the adversary decides {e who} falls
    and {e when} through its [Ks_sim] strategy; this policy decides what
    the fallen do inside the tree protocol. *)

type word = int
(** Field elements of Z_p (p = 2³¹ − 1), canonical representatives. *)

(** What corrupted processors do inside the tree protocol. *)
type behavior =
  | Follow  (** behave honestly (pure eavesdropping adversary) *)
  | Silent  (** withhold every message (crash) *)
  | Garbage  (** replace every word by a fresh uniform one *)
  | Flip  (** add one to every word (consistent equivocation) *)
  | Equivocate
      (** rushing equivocation: a different in-field lie per recipient
          parity class, so different recipients of the "same" share see
          conflicting values within the round *)

type payload =
  | Deal of { cand : int; inst : int; words : word array }
  | Share_up of { cand : int; inst : int; words : word array }
  | Share_down of {
      cand : int;
      level : int;  (** sender's level *)
      node : int;  (** receiver's node on level - 1 *)
      inst : int;  (** the sender-level instance whose value is carried *)
      off : int;
      words : word array;
    }
  | Leaf_val of { cand : int; leaf : int; inst : int; off : int; words : word array }
  | Open_val of { cand : int; leaf : int; off : int; words : word array }
  | Vote of { level : int; node : int; ba : int; vote : bool }
      (** one agreement instance's vote inside a node election *)
  | Votes of { level : int; node : int; packed : Bytes.t }
      (** all of a member's election votes for the round, bit-packed *)

(** Exact binary codec for payloads (tag byte, varint ids, fixed 32-bit
    words).  [payload_bits] charges the meter with the true encoded size:
    [header_bits + 8 × encoded_length]. *)

val encode_payload : payload -> Bytes.t

(** [decode_payload data] — typed rejection of malformed input: unknown
    tags, truncation and trailing bytes come back as
    [Error (_ : Ks_stdx.Wire.invalid)], never as an exception. *)
val decode_payload : Bytes.t -> (payload, Ks_stdx.Wire.invalid) result

(** [encoded_length p] — bytes [encode_payload] produces, computed
    without allocating. *)
val encoded_length : payload -> int

val payload_bits : Params.t -> payload -> int

(** The shared share-instance tree. *)
module Structure : sig
  type t

  (** [build tree] enumerates instances for every level. *)
  val build : Ks_topology.Tree.t -> t

  (** [count s ~level] — instances at a level (level 1: k1). *)
  val count : t -> level:int -> int

  (** [pos s ~level ~inst] — the member position holding the instance. *)
  val pos : t -> level:int -> inst:int -> int

  (** [parent s ~level ~inst] — parent instance id on [level - 1]
      (raises for level 1). *)
  val parent : t -> level:int -> inst:int -> int

  (** [children s ~level ~inst] — child instance ids on [level + 1], in
      uplink order. *)
  val children : t -> level:int -> inst:int -> int array

  (** [at_position s ~level ~pos] — instances held at a position. *)
  val at_position : t -> level:int -> pos:int -> int array
end

type t

(** [create ~params ~tree ~seed ~behavior ~strategy] — builds the network
    (wrapping [strategy] so that corrupt tree-protocol traffic generated
    under [behavior] reaches the wire) and the shared structure.  The
    candidate set is one array per processor.

    [?retries] (default 0) bounds graceful degradation: each robust
    decode that fails may trigger up to that many re-request rounds — the
    same shares are resent, so losses from a benign-fault plan
    (docs/FAULTS.md) get fresh delivery draws — before the failure is
    accepted and counted.  With [retries = 0] the protocol behaves
    bit-identically to the pre-degradation code (failures are merely
    counted where they were silently dropped).

    [?quarantine] (default true) arms the per-processor quarantine list:
    a sender caught provably misbehaving — share word outside Z_p, wrong
    public length, or equivocation witnessed on a private channel — is
    recorded as a [Quarantine] monitor event and ignored by the accusing
    processor from then on.  Honest and behavior-policy traffic never
    produces evidence, so the default leaves unattacked runs
    byte-identical; disable it to measure undefended breaking points
    (table T17). *)
val create :
  ?retries:int ->
  ?quarantine:bool ->
  params:Params.t ->
  tree:Ks_topology.Tree.t ->
  seed:int64 ->
  behavior:behavior ->
  strategy:payload Ks_sim.Types.strategy ->
  ?budget:int ->
  unit ->
  t

val net : t -> payload Ks_sim.Net.t

(** Degradation counters: robust decodes that still failed after the
    retry budget, and re-request rounds actually taken.  Both stay 0 in
    an unfaulted run with [retries = 0]. *)
val decode_failures : t -> int

val retries_used : t -> int

(** Quarantine accusations recorded so far (an (accuser, offender) pair
    counts once).  Stays 0 in unattacked runs. *)
val quarantine_events : t -> int

(** [is_quarantined t ~accuser ~offender] — has [accuser] recorded proof
    of misbehaviour by [offender]?  Always false with quarantine
    disabled.  Vote handlers use this to drop quarantined senders'
    ballots too. *)
val is_quarantined : t -> accuser:int -> offender:int -> bool

val tree : t -> Ks_topology.Tree.t
val structure : t -> Structure.t
val params : t -> Params.t

(** [exchange t msgs] — one synchronous round: good processors' [msgs]
    plus whatever the behavior policy queued for corrupted processors. *)
val exchange :
  t -> payload Ks_sim.Types.envelope list -> payload Ks_sim.Types.envelope list array

(** [queue_adversarial t msgs] — stage messages to be sent by corrupted
    processors at the next [exchange] (used by the behavior policy and by
    bespoke attacks). *)
val queue_adversarial : t -> payload Ks_sim.Types.envelope list -> unit

(** [deal_all t ~arrays] — every processor [i] secret-shares [arrays.(i)]
    with its level-1 node (step 1a of Algorithm 2).  One round.  After
    this, candidate [i]'s 1-shares are live at level 1. *)
val deal_all : t -> arrays:word array array -> unit

(** [reshare_up t ~cands] — [sendSecretUp] for each candidate: every
    holder splits its share among its uplink neighbours and erases it
    (step 1b / 2c).  One round.  Candidates must all be live at the same
    level; shares end up one level higher.  [drop] lists candidates whose
    shares are erased without being passed up (election losers). *)
val reshare_up : t -> cands:int list -> drop:int list -> unit

(** Current share level of a candidate ([None] once dropped). *)
val level_of : t -> cand:int -> int option

(** [open_ranges_view t ~level ~ranges] — [sendDown] + level-1
    reconstruction + [sendOpen] for the listed [(cand, off, len)] word
    ranges, all in parallel.  Takes [level + 1] rounds ([level] of them
    when [level] is 1... level must be >= 2).  Returns a view function:
    [view ~cand ~member] is what member position [member] of the
    candidate's level-[level] election node learned of the range
    (re-indexed from 0), [None] when too few honest pieces survived.
    Opened words are {e not} erased from the live shares (the protocol
    never reopens them). *)
val open_ranges_view :
  t ->
  level:int ->
  ranges:(int * int * int) list ->
  (cand:int -> member:int -> word array option)

(** True share value of an instance as currently held (test/diagnostic
    access — the adversary's oracle in hiding tests). *)
val held_value : t -> cand:int -> inst:int -> word array option
