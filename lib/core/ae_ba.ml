module Prng = Ks_stdx.Prng
module Intmath = Ks_stdx.Intmath

let log_src = Logs.Src.create "ks.ae_ba" ~doc:"Algorithm 2 tournament"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Tree = Ks_topology.Tree
module Graph = Ks_topology.Graph
module Zp = Ks_field.Zp
open Ks_sim.Types

module Layout = struct
  type t = {
    levels : int;
    block_off : int array;
    r_max : int array;
    root_coin_off : int;
    a2e_coin_off : int;
    total : int;
  }

  let make (params : Params.t) tree =
    let levels = Tree.levels tree in
    if levels < 3 then invalid_arg "Ae_ba.Layout.make: tree needs at least 3 levels";
    let r_max =
      Array.init (levels + 1) (fun l ->
          if l < 2 || l >= levels then 0
          else if l = 2 then params.Params.q
          else params.Params.winners * params.Params.q)
    in
    let block_off = Array.make (levels + 1) 0 in
    let off = ref 0 in
    for l = 2 to levels - 1 do
      block_off.(l) <- !off;
      off := !off + 1 + r_max.(l)
    done;
    let root_coin_off = !off in
    let a2e_coin_off = !off + 1 in
    { levels; block_off; r_max; root_coin_off; a2e_coin_off; total = !off + 2 }
end

type election_stats = {
  level : int;
  node : int;
  candidates : int array;
  winners : int array;
  good_winner_fraction : float;
  member_agreement : float;
}

type result = {
  votes : bool array;
  agreement : float;
  majority : bool;
  valid : bool;
  elections : election_stats list;
  root_candidates : int array;
  quorum_shortfalls : int;
  comm : Comm.t;
  layout : Layout.t;
  coin_view : iteration:int -> int -> int option;
}

(* Bit-packing of a member's election votes (one bit per agreement
   instance). *)
let pack_votes bits =
  let n = Array.length bits in
  let packed = Bytes.make (Intmath.cdiv (Stdlib.max 1 n) 8) '\000' in
  Array.iteri
    (fun i b ->
      if b then begin
        let byte = Bytes.get_uint8 packed (i / 8) in
        Bytes.set_uint8 packed (i / 8) (byte lor (1 lsl (i mod 8)))
      end)
    bits;
  packed

let unpack_vote packed i =
  let byte_idx = i / 8 in
  if byte_idx >= Bytes.length packed then None
  else Some (Bytes.get_uint8 packed byte_idx land (1 lsl (i mod 8)) <> 0)

(* What a corrupted member puts on the wire in place of its packed votes
   (mirrors Comm's word-level behavior policy).  [Equivocate] is
   destination-dependent and handled per-recipient at the call sites via
   [equivocate_packed]; here it degrades to [Follow] so the helper stays
   total.  The other behaviors are destination-independent and evaluated
   once per member, so [Garbage]'s RNG draw count is unchanged. *)
let corrupt_packed behavior rng packed =
  match behavior with
  | Comm.Follow | Comm.Equivocate -> Some packed
  | Comm.Silent -> None
  | Comm.Garbage ->
    Some (Bytes.init (Bytes.length packed) (fun _ -> Char.chr (Prng.int rng 256)))
  | Comm.Flip ->
    Some (Bytes.init (Bytes.length packed) (fun i ->
        Char.chr (lnot (Char.code (Bytes.get packed i)) land 0xFF)))

(* Rushing equivocation on a ballot: even-numbered recipients get the
   honest ballot, odd-numbered ones get it with every vote inverted —
   conflicting ballots inside one round, no randomness consumed. *)
let equivocate_packed ~dst packed =
  if dst land 1 = 0 then packed
  else
    Bytes.init (Bytes.length packed) (fun i ->
        Char.chr (lnot (Char.code (Bytes.get packed i)) land 0xFF))

(* One round of batched vote exchange for a set of per-node ballots.
   [ballots level node] returns (members, graph, votes-matrix) — votes are
   per (member position, instance).  Returns the per-(node, member,
   instance) tallies (ones, total). *)
let vote_round comm ~behavior ~adv_rng ~level ~nodes ~members_of ~graph_of
    ~votes_of ~instances_of =
  let msgs = ref [] in
  List.iter
    (fun node ->
      let members = members_of node in
      let graph = graph_of node in
      let votes = votes_of node in
      Array.iteri
        (fun mp p ->
          let packed = pack_votes votes.(mp) in
          let payload pk = Comm.Votes { level; node; packed = pk } in
          let send pk =
            Array.iter
              (fun np ->
                let e = { src = p; dst = members.(np); payload = payload pk } in
                if Ks_sim.Net.is_corrupt (Comm.net comm) p then
                  Comm.queue_adversarial comm [ e ]
                else msgs := e :: !msgs)
              (Graph.neighbours graph mp)
          in
          if Ks_sim.Net.is_corrupt (Comm.net comm) p then begin
            match behavior with
            | Comm.Equivocate ->
              Array.iter
                (fun np ->
                  let dst = members.(np) in
                  Comm.queue_adversarial comm
                    [ { src = p; dst; payload = payload (equivocate_packed ~dst packed) } ])
                (Graph.neighbours graph mp)
            | _ -> (
              match corrupt_packed behavior adv_rng packed with
              | Some pk -> send pk
              | None -> ())
          end
          else send packed)
        members)
    nodes;
  let inboxes = Comm.exchange comm !msgs in
  (* tallies.(node).(member).(instance) = (ones, total) *)
  let tallies = Hashtbl.create 64 in
  List.iter
    (fun node ->
      let members = members_of node in
      let ni = instances_of node in
      Hashtbl.replace tallies node
        (Array.init (Array.length members) (fun _ -> Array.make ni (0, 0))))
    nodes;
  List.iter
    (fun node ->
      let members = members_of node in
      let graph = graph_of node in
      let ni = instances_of node in
      let tally = Hashtbl.find tallies node in
      Array.iteri
        (fun mp p ->
          let seen = Hashtbl.create 16 in
          List.iter
            (fun e ->
              match e.payload with
              | Comm.Votes { level = ml; node = mn; packed }
                when ml = level && mn = node && not (Hashtbl.mem seen e.src)
                     && not (Comm.is_quarantined comm ~accuser:p ~offender:e.src)
                -> begin
                  (* Count only graph neighbours, once each. *)
                  match Tree.position_of (Comm.tree comm) ~level ~node e.src with
                  | Some sp when Graph.adjacent graph mp sp ->
                    Hashtbl.add seen e.src ();
                    for i = 0 to ni - 1 do
                      match unpack_vote packed i with
                      | Some v ->
                        let ones, total = tally.(mp).(i) in
                        tally.(mp).(i) <- ((ones + if v then 1 else 0), total + 1)
                      | None -> ()
                    done
                  | Some _ | None -> ()
                end
              | _ -> ())
            inboxes.(p))
        members)
    nodes;
  tallies

let run ?(retries = 0) ?quarantine ~params ~seed ~inputs ~behavior ~strategy ?budget
    () =
  let (_ : Params.t) = Params.validate params in
  let n = params.Params.n in
  if Array.length inputs <> n then invalid_arg "Ae_ba.run: inputs length";
  let root = Prng.create seed in
  let tree_rng = Prng.split root in
  let tree = Tree.build tree_rng (Params.tree_config params) in
  let comm =
    Comm.create ~retries ?quarantine ~params ~tree ~seed:(Prng.bits64 root) ~behavior
      ~strategy ?budget ()
  in
  (* Detected quorum shortfalls: (good member, vote round) pairs in which
     the member heard no votes at all — its tally carries no information
     and [update_vote] falls back to its current value.  Purely a
     detection counter; the vote loop is its own retry mechanism. *)
  let quorum_shortfalls = ref 0 in
  let net = Comm.net comm in
  let layout = Layout.make params tree in
  let levels = layout.Layout.levels in
  let adv_rng = Prng.split root in
  let graph_rng = Prng.split root in
  (* Step 1: deal the arrays and push the 1-shares up to level 2. *)
  let arrays =
    Array.init n (fun p ->
        let rng = Ks_sim.Net.proc_rng net p in
        Array.init layout.Layout.total (fun _ -> Zp.random rng))
  in
  let dealer_corrupt_at_deal = Array.init n (fun p -> Ks_sim.Net.is_corrupt net p) in
  Log.debug (fun m ->
      m "dealt %d arrays of %d words; shares at level 2" n layout.Layout.total);
  Comm.deal_all comm ~arrays;
  Comm.reshare_up comm ~cands:(List.init n (fun i -> i)) ~drop:[];
  (* Step 2: elections level by level. *)
  let elections = ref [] in
  let winners_by_node = ref [||] in
  (* winners_by_node.(node at current level) = winner cand ids *)
  for level = 2 to levels - 1 do
    let node_count = Tree.node_count tree ~level in
    let nodes = List.init node_count (fun j -> j) in
    let cands_at =
      Array.init node_count (fun j ->
          if level = 2 then Array.of_list (Tree.children tree ~level ~node:j)
          else
            Array.concat
              (List.map
                 (fun ch -> !winners_by_node.(ch))
                 (Tree.children tree ~level ~node:j)))
    in
    let members_of j = Tree.members tree ~level ~node:j in
    let size = Tree.node_size tree ~level in
    let graphs =
      Array.init node_count (fun _ ->
          Graph.random_regular graph_rng ~n:size
            ~degree:(Stdlib.min params.Params.aeba_degree (size - 1)))
    in
    let num_bins_of =
      Array.map
        (fun cands ->
          Election.num_bins ~candidates:(Stdlib.max 1 (Array.length cands))
            ~winners:params.Params.winners)
        cands_at
    in
    let bin_bits_of = Array.map Intmath.bits_needed num_bins_of in
    let instances_of j = Array.length cands_at.(j) * bin_bits_of.(j) in
    (* (a) expose bin choices. *)
    let bin_ranges =
      List.concat_map
        (fun j ->
          Array.to_list
            (Array.map (fun c -> (c, layout.Layout.block_off.(level), 1)) cands_at.(j)))
        nodes
    in
    let bin_view = Comm.open_ranges_view comm ~level ~ranges:bin_ranges in
    (* Ballot state: votes.(node).(member).(instance). *)
    let ballots =
      Array.init node_count (fun j ->
          Array.init size (fun mp ->
              Array.init (instances_of j) (fun i ->
                  let ci = i / bin_bits_of.(j) in
                  let b = i mod bin_bits_of.(j) in
                  match bin_view ~cand:cands_at.(j).(ci) ~member:mp with
                  | Some words ->
                    let bin = Election.bin_of_word ~num_bins:num_bins_of.(j) words.(0) in
                    bin land (1 lsl b) <> 0
                  | None -> false)))
    in
    (* (b) agree on bin choices: round i's coins come from candidate i's
       block. *)
    let max_r = Array.fold_left (fun acc c -> Stdlib.max acc (Array.length c)) 0 cands_at in
    let rounds = Stdlib.min max_r params.Params.max_election_rounds in
    for i = 0 to rounds - 1 do
      let coin_ranges =
        List.filter_map
          (fun j ->
            if i < Array.length cands_at.(j) then
              Some
                ( cands_at.(j).(i),
                  layout.Layout.block_off.(level) + 1,
                  layout.Layout.r_max.(level) )
            else None)
          nodes
      in
      let coin_view =
        if coin_ranges = [] then fun ~cand:_ ~member:_ -> None
        else Comm.open_ranges_view comm ~level ~ranges:coin_ranges
      in
      let tallies =
        vote_round comm ~behavior ~adv_rng ~level ~nodes ~members_of
          ~graph_of:(fun j -> graphs.(j))
          ~votes_of:(fun j -> ballots.(j))
          ~instances_of
      in
      List.iter
        (fun j ->
          let members = members_of j in
          let tally = Hashtbl.find tallies j in
          let coin_words mp =
            if i < Array.length cands_at.(j) then
              coin_view ~cand:cands_at.(j).(i) ~member:mp
            else None
          in
          Array.iteri
            (fun mp p ->
              if not (Ks_sim.Net.is_corrupt net p) then begin
                if
                  instances_of j > 0
                  && Array.for_all (fun (_, total) -> total = 0) tally.(mp)
                then incr quorum_shortfalls;
                let words = coin_words mp in
                for inst = 0 to instances_of j - 1 do
                  let ci = inst / bin_bits_of.(j) in
                  let b = inst mod bin_bits_of.(j) in
                  let coin =
                    match words with
                    | Some w when ci < Array.length w ->
                      Some ((w.(ci) lsr b) land 1 = 1)
                    | Some _ | None -> None
                  in
                  let ones, total = tally.(mp).(inst) in
                  ballots.(j).(mp).(inst) <-
                    Aeba_coin.update_vote ~epsilon:params.Params.epsilon ~eps0:0.05
                      ~ones ~total ~coin ~current:ballots.(j).(mp).(inst)
                done
              end)
            members)
        nodes
    done;
    (* (c) winners per member view, canonical by plurality of good views. *)
    let new_winners = Array.make node_count [||] in
    List.iter
      (fun j ->
        let members = members_of j in
        let r = Array.length cands_at.(j) in
        let views =
          Array.init size (fun mp ->
              let bins =
                Array.init r (fun ci ->
                    let bin = ref 0 in
                    for b = 0 to bin_bits_of.(j) - 1 do
                      if ballots.(j).(mp).((ci * bin_bits_of.(j)) + b) then
                        bin := !bin lor (1 lsl b)
                    done;
                    !bin)
              in
              Election.winner_indices ~num_bins:num_bins_of.(j)
                ~target:params.Params.winners bins)
        in
        let counts = Hashtbl.create 16 in
        Array.iteri
          (fun mp p ->
            if not (Ks_sim.Net.is_corrupt net p) then begin
              let key = Array.to_list views.(mp) in
              Hashtbl.replace counts key
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
            end)
          members;
        let canonical = ref [] and best = ref 0 and good_total = ref 0 in
        Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_list_cmp
          (fun key c ->
            good_total := !good_total + c;
            if c > !best then begin
              best := c;
              canonical := key
            end)
          counts;
        let winner_ids = Array.of_list (List.map (fun i -> cands_at.(j).(i)) !canonical) in
        new_winners.(j) <- winner_ids;
        let good_w =
          Array.fold_left
            (fun acc c -> if dealer_corrupt_at_deal.(c) then acc else acc + 1)
            0 winner_ids
        in
        elections :=
          {
            level;
            node = j;
            candidates = cands_at.(j);
            winners = winner_ids;
            good_winner_fraction =
              (if Array.length winner_ids = 0 then 0.0
               else float_of_int good_w /. float_of_int (Array.length winner_ids));
            member_agreement =
              (if !good_total = 0 then 1.0
               else float_of_int !best /. float_of_int !good_total);
          }
          :: !elections)
      nodes;
    (* (d) winners climb, losers are erased. *)
    let winner_list =
      List.concat_map (fun j -> Array.to_list new_winners.(j)) nodes
    in
    let winner_set = Hashtbl.create 64 in
    List.iter (fun c -> Hashtbl.replace winner_set c ()) winner_list;
    let losers =
      List.concat_map
        (fun j ->
          List.filter
            (fun c -> not (Hashtbl.mem winner_set c))
            (Array.to_list cands_at.(j)))
        nodes
    in
    Log.debug (fun m ->
        m "level %d elections done: %d winners climb, %d losers erased" level
          (List.length winner_list) (List.length losers));
    Comm.reshare_up comm ~cands:winner_list ~drop:losers;
    winners_by_node := new_winners
  done;
  (* Step 3: the root instance on the protocol inputs. *)
  let root_cands = Array.concat (Array.to_list !winners_by_node) in
  Log.debug (fun m ->
      m "root instance: %d surviving arrays feed the coins" (Array.length root_cands));
  let votes = Array.copy inputs in
  let root_graph =
    Graph.random_regular graph_rng ~n
      ~degree:(Stdlib.min params.Params.aeba_degree (n - 1))
  in
  let root_rounds =
    Stdlib.min (Stdlib.max 1 (Array.length root_cands)) params.Params.aeba_rounds
  in
  for i = 0 to root_rounds - 1 do
    let coin_view =
      if Array.length root_cands = 0 then fun ~cand:_ ~member:_ -> None
      else
        Comm.open_ranges_view comm ~level:levels
          ~ranges:
            [ (root_cands.(i mod Array.length root_cands), layout.Layout.root_coin_off, 1) ]
    in
    let msgs = ref [] in
    for p = 0 to n - 1 do
      let send v =
        Array.iter
          (fun np ->
            let e =
              { src = p; dst = np; payload = Comm.Vote { level = levels; node = 0; ba = 0; vote = v } }
            in
            if Ks_sim.Net.is_corrupt net p then Comm.queue_adversarial comm [ e ]
            else msgs := e :: !msgs)
          (Graph.neighbours root_graph p)
      in
      if Ks_sim.Net.is_corrupt net p then begin
        match behavior with
        | Comm.Follow -> send votes.(p)
        | Comm.Silent -> ()
        | Comm.Garbage -> send (Prng.bool adv_rng)
        | Comm.Flip -> send (not votes.(p))
        | Comm.Equivocate ->
          (* Conflicting root votes: the honest vote to even neighbours,
             its negation to odd ones. *)
          Array.iter
            (fun np ->
              Comm.queue_adversarial comm
                [ { src = p; dst = np;
                    payload =
                      Comm.Vote
                        { level = levels; node = 0; ba = 0;
                          vote = (if np land 1 = 0 then votes.(p) else not votes.(p)) } } ])
            (Graph.neighbours root_graph p)
      end
      else send votes.(p)
    done;
    let inboxes = Comm.exchange comm !msgs in
    let next = Array.copy votes in
    for p = 0 to n - 1 do
      if not (Ks_sim.Net.is_corrupt net p) then begin
        let seen = Hashtbl.create 64 in
        let ones = ref 0 and total = ref 0 in
        List.iter
          (fun e ->
            match e.payload with
            | Comm.Vote { level = ml; vote; _ }
              when ml = levels && not (Hashtbl.mem seen e.src)
                   && Graph.adjacent root_graph p e.src
                   && not (Comm.is_quarantined comm ~accuser:p ~offender:e.src) ->
              Hashtbl.add seen e.src ();
              incr total;
              if vote then incr ones
            | _ -> ())
          inboxes.(p);
        if !total = 0 then incr quorum_shortfalls;
        let coin =
          if Array.length root_cands = 0 then None
          else
            match
              coin_view ~cand:root_cands.(i mod Array.length root_cands) ~member:p
            with
            | Some w -> Some (w.(0) land 1 = 1)
            | None -> None
        in
        next.(p) <-
          Aeba_coin.update_vote ~epsilon:params.Params.epsilon ~eps0:0.05 ~ones:!ones
            ~total:!total ~coin ~current:votes.(p)
      end
    done;
    Array.blit next 0 votes 0 n
  done;
  (* Outcome metrics over the good processors. *)
  let good p = not (Ks_sim.Net.is_corrupt net p) in
  let ones = ref 0 and total = ref 0 in
  for p = 0 to n - 1 do
    if good p then begin
      incr total;
      if votes.(p) then incr ones
    end
  done;
  let majority = 2 * !ones >= !total in
  let agreement =
    if !total = 0 then 1.0
    else
      float_of_int (Stdlib.max !ones (!total - !ones)) /. float_of_int !total
  in
  let valid =
    let found = ref false in
    for p = 0 to n - 1 do
      if good p && inputs.(p) = majority then found := true
    done;
    !found
  in
  (* §3.5: the lazily opened coin subsequence for the everywhere phase. *)
  let coin_cache : (int, int option array) Hashtbl.t = Hashtbl.create 16 in
  let coin_view ~iteration p =
    if Array.length root_cands = 0 then None
    else begin
      let per_proc =
        match Hashtbl.find_opt coin_cache iteration with
        | Some a -> a
        | None ->
          let cand = root_cands.(iteration mod Array.length root_cands) in
          let view =
            Comm.open_ranges_view comm ~level:levels
              ~ranges:[ (cand, layout.Layout.a2e_coin_off, 1) ]
          in
          let a =
            Array.init n (fun q ->
                match view ~cand ~member:q with
                | Some w -> Some (w.(0) mod params.Params.a2e_labels)
                | None -> None)
          in
          Hashtbl.replace coin_cache iteration a;
          a
      in
      per_proc.(p)
    end
  in
  {
    votes;
    agreement;
    majority;
    valid;
    elections = List.rev !elections;
    root_candidates = root_cands;
    quorum_shortfalls = !quorum_shortfalls;
    comm;
    layout;
    coin_view;
  }
