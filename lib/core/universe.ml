module Prng = Ks_stdx.Prng

type result = {
  committee : int array;
  good_at_election : float;
  good_after_hunt : float;
  coin_commonality : float;
  coin_distinct_rate : float;
  ae : Ae_ba.result;
}

let good_fraction net committee =
  if Array.length committee = 0 then 0.0
  else begin
    let good =
      Array.fold_left
        (fun acc p -> if Ks_sim.Net.is_corrupt net p then acc else acc + 1)
        0 committee
    in
    float_of_int good /. float_of_int (Array.length committee)
  end

let reduce ~params ~seed ~behavior ~strategy ?budget () =
  let n = params.Params.n in
  let rng = Prng.create seed in
  let inputs = Array.init n (fun _ -> Prng.bool rng) in
  let ae = Ae_ba.run ~params ~seed ~inputs ~behavior ~strategy ?budget () in
  let net = Comm.net ae.Ae_ba.comm in
  let committee = ae.Ae_ba.root_candidates in
  let good_at_election = good_fraction net committee in
  (* The hunt: the committee is public once elected, so the adaptive
     adversary spends whatever corruption budget remains on exactly its
     members.  This is the attack that kills processor-committee designs
     — and that electing arrays was invented to survive. *)
  Ks_sim.Net.corrupt_now net (Array.to_list committee);
  let good_after_hunt = good_fraction net committee in
  (* The coin subsequence is opened only now, after the hunt: the shares
     were re-split across the whole tree and erased below, so the fallen
     dealers take no secrets down with them. *)
  let iterations = params.Params.a2e_iterations in
  let commonality = ref [] in
  let distinct = ref 0 in
  let previous = ref None in
  for iteration = 0 to iterations - 1 do
    let counts = Hashtbl.create 16 in
    let good_total = ref 0 in
    for p = 0 to n - 1 do
      if not (Ks_sim.Net.is_corrupt net p) then begin
        incr good_total;
        match ae.Ae_ba.coin_view ~iteration p with
        | Some k ->
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
        | None -> ()
      end
    done;
    let plurality = ref None in
    Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp
      (fun k c ->
        match !plurality with
        | Some (_, bc) when bc >= c -> ()
        | _ -> plurality := Some (k, c))
      counts;
    (match !plurality with
     | Some (k, c) when !good_total > 0 ->
       commonality := (float_of_int c /. float_of_int !good_total) :: !commonality;
       (match !previous with
        | Some k' when k' <> k -> incr distinct
        | Some _ -> ()
        | None -> ());
       previous := Some k
     | Some _ | None -> commonality := 0.0 :: !commonality)
  done;
  {
    committee;
    good_at_election;
    good_after_hunt;
    coin_commonality =
      (match !commonality with
       | [] -> 0.0
       | l -> Ks_stdx.Stats.mean (Array.of_list l));
    coin_distinct_rate =
      (if iterations <= 1 then 0.0
       else float_of_int !distinct /. float_of_int (iterations - 1));
    ae;
  }
