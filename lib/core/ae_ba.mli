(** Almost-everywhere Byzantine agreement — Algorithm 2 (§3.4), plus the
    coin-sequence extension of §3.5.

    The tournament: every processor deals an array of random words to its
    level-1 node; shares climb the tree level by level; at every internal
    level each node runs a Feige election among the arrays arriving from
    its children — bin choices are exposed by [sendDown]/[sendOpen],
    agreed bit-by-bit with {!Aeba_coin}-style voting whose coins are
    revealed one candidate block per round, and the lightest-bin winners'
    remaining blocks are reshared upward ([sendSecretUp]) while losers
    are erased.  At the root (all [n] processors), one final
    agreement-with-coins instance runs on the {e protocol inputs}, its
    coins opened from the surviving arrays.  Theorem 2: a 1 − 1/log n
    fraction of the good processors end up agreeing on a good input bit.

    The surviving arrays also carry one extra word each: opened on
    demand, they form the almost-everywhere global coin subsequence that
    the everywhere-amplification phase consumes (§3.5 / §5). *)

(** Word layout of every candidate array, derived from tree shape and
    parameters. *)
module Layout : sig
  type t = {
    levels : int;
    block_off : int array;  (** per level 2..levels-1: election block offset *)
    r_max : int array;  (** per level: maximum candidates in one election *)
    root_coin_off : int;  (** the word funding one root-agreement round *)
    a2e_coin_off : int;  (** the word contributed to the coin subsequence *)
    total : int;  (** array length in words *)
  }

  val make : Params.t -> Ks_topology.Tree.t -> t
end

type election_stats = {
  level : int;
  node : int;
  candidates : int array;  (** competing array ids, child order *)
  winners : int array;  (** canonical winner ids *)
  good_winner_fraction : float;  (** winners dealt by good processors *)
  member_agreement : float;
      (** fraction of the node's good members whose locally computed
          winner set matches the canonical one *)
}

type result = {
  votes : bool array;  (** every processor's final vote *)
  agreement : float;  (** fraction of good processors on the majority *)
  majority : bool;  (** the majority good vote — the a.e. value *)
  valid : bool;  (** majority equals some good processor's input *)
  elections : election_stats list;
  root_candidates : int array;
  quorum_shortfalls : int;
      (** detected (good member, vote round) pairs whose tally was empty
          — the member heard no votes at all that round (e.g. every
          graph neighbour silent or their messages lost to benign
          faults); the vote loop itself is the retry, so this is a pure
          degradation signal *)
  comm : Comm.t;  (** for meters and further opens *)
  layout : Layout.t;
  coin_view : iteration:int -> int -> int option;
      (** the §3.5 coin subsequence: [coin_view ~iteration p] lazily opens
          contestant [iteration]'s extra word (one more tree open on the
          same network — so the value stays hidden until first demanded)
          and returns [p]'s view of it reduced modulo the label space *)
}

(** [run ~params ~seed ~inputs ~behavior ~strategy] — the full tournament.
    [strategy] decides who gets corrupted and when; [behavior] what
    corrupted processors do inside the tree protocol.  [?retries]
    (default 0) is the per-decode re-request budget passed to
    {!Comm.create} for graceful degradation under benign faults;
    [?quarantine] (default true) arms {!Comm}'s provable-misbehaviour
    quarantine list. *)
val run :
  ?retries:int ->
  ?quarantine:bool ->
  params:Params.t ->
  seed:int64 ->
  inputs:bool array ->
  behavior:Comm.behavior ->
  strategy:Comm.payload Ks_sim.Types.strategy ->
  ?budget:int ->
  unit ->
  result
