let num_bins ~candidates ~winners =
  if candidates < 1 then invalid_arg "Election.num_bins: no candidates";
  if winners < 1 then invalid_arg "Election.num_bins: no winners";
  Ks_stdx.Intmath.clamp ~lo:2 ~hi:(Stdlib.max 2 candidates) (candidates / winners)

let bin_of_word ~num_bins word =
  if num_bins < 1 then invalid_arg "Election.bin_of_word: num_bins < 1";
  ((word mod num_bins) + num_bins) mod num_bins

let counts ~num_bins bins =
  let c = Array.make num_bins 0 in
  Array.iter (fun b -> let b = bin_of_word ~num_bins b in c.(b) <- c.(b) + 1) bins;
  c

let lightest_bin ~num_bins bins =
  let c = counts ~num_bins bins in
  let best = ref 0 in
  for b = 1 to num_bins - 1 do
    if c.(b) < c.(!best) then best := b
  done;
  !best

let winner_indices ~num_bins ~target bins =
  let r = Array.length bins in
  if r = 0 then [||]
  else begin
    let target = Stdlib.min target r in
    let light = lightest_bin ~num_bins bins in
    let w = ref [] in
    for j = r - 1 downto 0 do
      if bin_of_word ~num_bins bins.(j) = light then w := j :: !w
    done;
    let w = !w in
    let missing = target - List.length w in
    if missing <= 0 then Array.of_list w
    else begin
      (* Pad with the first indices that would otherwise be omitted. *)
      let chosen = Array.make r false in
      List.iter (fun j -> chosen.(j) <- true) w;
      let pad = ref [] in
      let still = ref missing in
      let j = ref 0 in
      while !still > 0 && !j < r do
        if not chosen.(!j) then begin
          pad := !j :: !pad;
          decr still
        end;
        incr j
      done;
      Array.of_list (List.sort Int.compare (w @ !pad))
    end
  end
