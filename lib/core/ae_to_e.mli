(** Almost-everywhere → everywhere agreement — Algorithm 3 (§4).

    After the tree protocol, a (1/2 + ε)-majority of good processors is
    {e knowledgeable}: they agree on a message [M] and share a source of
    common random numbers.  The remaining good processors are
    {e confused}.  Each iteration (one "loop" of the paper, two
    synchronous rounds here):

    + every processor sends, for each request label [i] of the √n-sized
      label space, [a·log n] requests labelled [i] to uniformly random
      processors (the paper's step 1, iterated per Lemma 8's counting);
    + the knowledgeable processors agree on a fresh random label [k];
    + a knowledgeable processor answers exactly the requests labelled
      [k] with [M] — unless more than the overload cap of such requests
      arrived (the adversary cannot target responders: private channels
      hide everyone else's labels, and [k] is drawn after the requests
      are committed);
    + a requester looks at the label [i_max] that gathered the most
      replies, and decides [m] if at least [(1/2 + 3ε/8)·a·log n] of the
      processors it had queried with [i_max] returned the same [m].

    Lemma 7: one iteration makes everyone agree on [M] with probability
    ≥ 1 − 4/(ε·log n) − 1/n^c, and never makes a good processor decide
    anything other than [M] (w.h.p.); iterations repeat independently
    (Lemma 10) until every good processor has decided. *)

type msg = Request of int | Reply of { label : int; value : int }

(** Exact binary codec (tag byte + varints); [msg_bits] is the encoded
    size in bits. *)

val encode_msg : msg -> Bytes.t
val decode_msg : Bytes.t -> (msg, Ks_stdx.Wire.invalid) result
val msg_bits : msg -> int

type config = {
  labels : int;  (** size of the request-label space (√n in the paper) *)
  requests_per_label : int;  (** a·log n *)
  iterations : int;  (** independent repetitions of the loop *)
  overload_cap : int;  (** √n·log n in the paper *)
  decision_threshold : int;  (** (1/2 + 3ε/8)·a·log n, rounded up *)
}

val config_of_params : Params.t -> config

(** [rounds_needed config] — synchronous rounds one [run] consumes. *)
val rounds_needed : config -> int

type result = {
  decided : int option array;
      (** per processor: the value it committed to, [None] if undecided;
          entries of corrupted processors are meaningless *)
  iterations_run : int;
  rounds : int;
  max_sent_bits : int;  (** over good processors *)
  overloaded_events : int;
      (** count of (processor, iteration) pairs where the overload rule
          suppressed replies — Lemma 9's quantity *)
}

(** [run ~net ~config ~knows ~coin] — [knows p] is [Some m] when good
    processor [p] {e believes} message [m] (knowledgeable processors hold
    the almost-everywhere value, confused ones may hold something else —
    their minority lies below the decision threshold); [coin ~iteration p]
    is [p]'s view of the iteration's agreed random label (in [0, labels)),
    [None] for processors the coin never reached.  Every processor decides
    through the reply-counting rule; decided processors stop re-deciding
    but keep serving requests. *)
val run :
  net:msg Ks_sim.Net.t ->
  config:config ->
  knows:(int -> int option) ->
  coin:(iteration:int -> int -> int option) ->
  result
