module Graph = Ks_topology.Graph
module Prng = Ks_stdx.Prng

type t = {
  members : int array;
  pos_of : (int, int) Hashtbl.t;
  graph : Graph.t;
  epsilon : float;
  eps0 : float;
  votes : bool array;
}

let create ~members ~graph ~inputs ~epsilon ?(eps0 = 0.05) () =
  let m = Array.length members in
  if Graph.n graph <> m then invalid_arg "Aeba_coin.create: graph size mismatch";
  if Array.length inputs <> m then invalid_arg "Aeba_coin.create: inputs size mismatch";
  let pos_of = Hashtbl.create (2 * m) in
  Array.iteri (fun pos p -> Hashtbl.replace pos_of p pos) members;
  { members; pos_of; graph; epsilon; eps0; votes = Array.copy inputs }

let member_count t = Array.length t.members
let member t ~pos = t.members.(pos)
let position_of t p = Hashtbl.find_opt t.pos_of p
let vote t ~pos = t.votes.(pos)
let votes t = Array.copy t.votes

let outgoing t =
  let out = ref [] in
  for pos = Array.length t.members - 1 downto 0 do
    let src = t.members.(pos) in
    let v = t.votes.(pos) in
    Array.iter
      (fun npos -> out := (src, t.members.(npos), v) :: !out)
      (Graph.neighbours t.graph pos)
  done;
  !out

(* The vote-update rule of Algorithm 5: adopt the majority when its
   fraction clears the informed threshold, otherwise follow the coin. *)
let update_vote ~epsilon ~eps0 ~ones ~total ~coin ~current =
  if total = 0 then current
  else begin
    let maj = 2 * ones >= total in
    let maj_count = if maj then ones else total - ones in
    let fraction = float_of_int maj_count /. float_of_int total in
    let threshold = (1.0 -. eps0) *. ((2.0 /. 3.0) +. (epsilon /. 2.0)) in
    if fraction >= threshold then maj
    else match coin with Some c -> c | None -> maj
  end

let step t ~received ~coin ~good =
  let m = Array.length t.members in
  let next = Array.copy t.votes in
  for pos = 0 to m - 1 do
    if good t.members.(pos) then begin
      (* Count at most one vote per graph neighbour (flooding defence:
         later duplicates and non-neighbours are discarded). *)
      let seen = Hashtbl.create 16 in
      let ones = ref 0 and total = ref 0 in
      List.iter
        (fun (src, v) ->
          match Hashtbl.find_opt t.pos_of src with
          | Some spos
            when Graph.adjacent t.graph pos spos && not (Hashtbl.mem seen src) ->
            Hashtbl.add seen src ();
            incr total;
            if v then incr ones
          | Some _ | None -> ())
        (received pos);
      next.(pos) <-
        update_vote ~epsilon:t.epsilon ~eps0:t.eps0 ~ones:!ones ~total:!total
          ~coin:(coin pos) ~current:t.votes.(pos)
    end
  done;
  Array.blit next 0 t.votes 0 m

let agreement_fraction t ~good =
  let ones = ref 0 and total = ref 0 in
  Array.iteri
    (fun pos p ->
      if good p then begin
        incr total;
        if t.votes.(pos) then incr ones
      end)
    t.members;
  if !total = 0 then 1.0
  else
    float_of_int (Stdlib.max !ones (!total - !ones)) /. float_of_int !total

type coin_source = Ideal | Unreliable of float | Adversarial_known

type outcome = {
  final_votes : bool array;
  agreement : float;
  decided : bool option;
  valid : bool;
  rounds_run : int;
  max_sent_bits : int;
}

let run_standalone ~seed ~n ~degree ~rounds ~epsilon ~budget ~inputs ~strategy
    ~coin ?(leak = fun ~round:_ _ -> ()) () =
  if Array.length inputs <> n then invalid_arg "Aeba_coin.run_standalone: inputs";
  let net =
    Ks_sim.Net.create ~label:"aeba" ~seed ~n ~budget ~msg_bits:(fun _vote -> 1)
      ~strategy ()
  in
  let rng = Ks_sim.Net.rng net in
  let graph = Graph.random_regular rng ~n ~degree:(Stdlib.min degree (n - 1)) in
  let members = Array.init n (fun i -> i) in
  let inst = create ~members ~graph ~inputs ~epsilon () in
  let coin_rng = Prng.split rng in
  let miss_rng = Prng.split rng in
  for round = 0 to rounds - 1 do
    let msgs =
      List.map
        (fun (src, dst, v) -> { Ks_sim.Types.src; dst; payload = v })
        (outgoing inst)
    in
    let inboxes = Ks_sim.Net.exchange net msgs in
    let common = Prng.bool coin_rng in
    (match coin with
     | Adversarial_known -> leak ~round common
     | Ideal | Unreliable _ -> ());
    let coin_view =
      match coin with
      | Ideal | Adversarial_known -> fun _pos -> Some common
      | Unreliable miss ->
        (* Draw per-position misses deterministically for the round. *)
        let missed = Array.init n (fun _ -> Prng.bernoulli miss_rng miss) in
        fun pos -> if missed.(pos) then None else Some common
    in
    let received pos =
      List.map
        (fun e -> (e.Ks_sim.Types.src, e.Ks_sim.Types.payload))
        inboxes.(members.(pos))
    in
    step inst ~received ~coin:coin_view ~good:(fun p -> not (Ks_sim.Net.is_corrupt net p))
  done;
  let good p = not (Ks_sim.Net.is_corrupt net p) in
  let agreement = agreement_fraction inst ~good in
  let good_votes =
    List.filter_map
      (fun p -> if good p then Some inst.votes.(p) else None)
      (List.init n (fun i -> i))
  in
  let ones = List.length (List.filter (fun v -> v) good_votes) in
  let total = List.length good_votes in
  let majority = 2 * ones >= total in
  let decided = Some majority in
  let valid =
    (* The committed bit must be some good processor's input. *)
    Array.exists2
      (fun input p -> good p && input = majority)
      inputs (Array.init n (fun i -> i))
  in
  Ks_sim.Net.emit_meter net;
  {
    final_votes = votes inst;
    agreement;
    decided;
    valid;
    rounds_run = rounds;
    max_sent_bits =
      Ks_sim.Meter.max_sent_bits (Ks_sim.Net.meter net) ~over:(Ks_sim.Net.good_procs net);
  }
