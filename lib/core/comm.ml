module Prng = Ks_stdx.Prng
module Tree = Ks_topology.Tree
module Zp = Ks_field.Zp
module Sh = Ks_shamir.Shamir.Make (Ks_field.Zp)
open Ks_sim.Types

type word = int

type behavior = Follow | Silent | Garbage | Flip | Equivocate

type payload =
  | Deal of { cand : int; inst : int; words : word array }
  | Share_up of { cand : int; inst : int; words : word array }
  | Share_down of {
      cand : int;
      level : int;
      node : int;
      inst : int;
      off : int;
      words : word array;
    }
  | Leaf_val of { cand : int; leaf : int; inst : int; off : int; words : word array }
  | Open_val of { cand : int; leaf : int; off : int; words : word array }
  | Vote of { level : int; node : int; ba : int; vote : bool }
  | Votes of { level : int; node : int; packed : Bytes.t }

(* Binary codec: tag byte, varint identifiers, fixed 32-bit words.  The
   meter charges the exact encoded size, computed arithmetically so that
   metering allocates nothing; test_comm pins encoded_length to the real
   encoder output. *)

let varint_len v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go v 1

let words_len words = varint_len (Array.length words) + (4 * Array.length words)

let encoded_length = function
  | Deal { cand; inst; words } | Share_up { cand; inst; words } ->
    1 + varint_len cand + varint_len inst + words_len words
  | Share_down { cand; level; node; inst; off; words } ->
    1 + varint_len cand + varint_len level + varint_len node + varint_len inst
    + varint_len off + words_len words
  | Leaf_val { cand; leaf; inst; off; words } ->
    1 + varint_len cand + varint_len leaf + varint_len inst + varint_len off
    + words_len words
  | Open_val { cand; leaf; off; words } ->
    1 + varint_len cand + varint_len leaf + varint_len off + words_len words
  | Vote { level; node; ba; vote = _ } ->
    1 + varint_len level + varint_len node + varint_len ba + 1
  | Votes { level; node; packed } ->
    1 + varint_len level + varint_len node + varint_len (Bytes.length packed)
    + Bytes.length packed

module W = Ks_stdx.Wire.Writer
module R = Ks_stdx.Wire.Reader

let write_words w words =
  W.varint w (Array.length words);
  Array.iter (W.u32 w) words

let read_words r =
  let len = R.varint r in
  (* Each word is a fixed u32: a length claiming more words than the
     remaining bytes could hold is malformed.  Checking before the
     allocation keeps a forged length prefix from forcing a huge
     [Array.init] (found by the decoder fuzzer). *)
  if len < 0 || len > R.remaining r / 4 then raise R.Truncated;
  Array.init len (fun _ -> R.u32 r)

let encode_payload payload =
  let w = W.create () in
  (match payload with
   | Deal { cand; inst; words } ->
     W.byte w 0; W.varint w cand; W.varint w inst; write_words w words
   | Share_up { cand; inst; words } ->
     W.byte w 1; W.varint w cand; W.varint w inst; write_words w words
   | Share_down { cand; level; node; inst; off; words } ->
     W.byte w 2; W.varint w cand; W.varint w level; W.varint w node;
     W.varint w inst; W.varint w off; write_words w words
   | Leaf_val { cand; leaf; inst; off; words } ->
     W.byte w 3; W.varint w cand; W.varint w leaf; W.varint w inst;
     W.varint w off; write_words w words
   | Open_val { cand; leaf; off; words } ->
     W.byte w 4; W.varint w cand; W.varint w leaf; W.varint w off;
     write_words w words
   | Vote { level; node; ba; vote } ->
     W.byte w 5; W.varint w level; W.varint w node; W.varint w ba; W.bool w vote
   | Votes { level; node; packed } ->
     W.byte w 6; W.varint w level; W.varint w node; W.bytes w packed);
  W.contents w

let decode_payload data =
  Ks_stdx.Wire.decode data (fun r ->
      match R.byte r with
      | 0 ->
        let cand = R.varint r in
        let inst = R.varint r in
        Deal { cand; inst; words = read_words r }
      | 1 ->
        let cand = R.varint r in
        let inst = R.varint r in
        Share_up { cand; inst; words = read_words r }
      | 2 ->
        let cand = R.varint r in
        let level = R.varint r in
        let node = R.varint r in
        let inst = R.varint r in
        let off = R.varint r in
        Share_down { cand; level; node; inst; off; words = read_words r }
      | 3 ->
        let cand = R.varint r in
        let leaf = R.varint r in
        let inst = R.varint r in
        let off = R.varint r in
        Leaf_val { cand; leaf; inst; off; words = read_words r }
      | 4 ->
        let cand = R.varint r in
        let leaf = R.varint r in
        let off = R.varint r in
        Open_val { cand; leaf; off; words = read_words r }
      | 5 ->
        let level = R.varint r in
        let node = R.varint r in
        let ba = R.varint r in
        Vote { level; node; ba; vote = R.bool r }
      | 6 ->
        let level = R.varint r in
        let node = R.varint r in
        Votes { level; node; packed = R.bytes r }
      | tag -> R.fail (Ks_stdx.Wire.Bad_tag tag))

let payload_bits (p : Params.t) payload =
  p.Params.header_bits + (8 * encoded_length payload)

module Structure = struct
  type t = {
    counts : int array;
    pos : int array array; (* .(l-1).(inst) = holding position *)
    par : int array array; (* .(l-1).(inst) = parent instance, -1 at level 1 *)
    kids : int array array array; (* .(l-1).(inst) = child ids at l+1 *)
    at_pos : int array array array; (* .(l-1).(position) = instance ids *)
  }

  let build tree =
    let levels = Tree.levels tree in
    let counts = Array.make levels 0 in
    let pos = Array.make levels [||] in
    let par = Array.make levels [||] in
    let kids = Array.make levels [||] in
    let k1 = Tree.node_size tree ~level:1 in
    counts.(0) <- k1;
    pos.(0) <- Array.init k1 (fun i -> i);
    par.(0) <- Array.make k1 (-1);
    for l = 1 to levels - 1 do
      (* Instances at level l+1: one per (instance at l, uplink slot). *)
      let c = counts.(l - 1) in
      let next_pos = ref [] and next_par = ref [] in
      let next_count = ref 0 in
      let kid_arrays =
        Array.init c (fun i ->
            let ups = Tree.uplinks tree ~level:l ~member:pos.(l - 1).(i) in
            let ids =
              Array.map
                (fun pp ->
                  let id = !next_count in
                  incr next_count;
                  next_pos := pp :: !next_pos;
                  next_par := i :: !next_par;
                  id)
                ups
            in
            ids)
      in
      kids.(l - 1) <- kid_arrays;
      counts.(l) <- !next_count;
      pos.(l) <- Array.of_list (List.rev !next_pos);
      par.(l) <- Array.of_list (List.rev !next_par)
    done;
    kids.(levels - 1) <- Array.make counts.(levels - 1) [||];
    let at_pos =
      Array.init levels (fun li ->
          let size = Tree.node_size tree ~level:(li + 1) in
          let buckets = Array.make size [] in
          Array.iteri (fun i p -> buckets.(p) <- i :: buckets.(p)) pos.(li);
          Array.map (fun l -> Array.of_list (List.rev l)) buckets)
    in
    { counts; pos; par; kids; at_pos }

  let count t ~level = t.counts.(level - 1)
  let pos t ~level ~inst = t.pos.(level - 1).(inst)
  let parent t ~level ~inst = t.par.(level - 1).(inst)
  let children t ~level ~inst = t.kids.(level - 1).(inst)
  let at_position t ~level ~pos = t.at_pos.(level - 1).(pos)
end

type cand_state = {
  mutable live_level : int; (* 0 = not dealt, -1 = dropped *)
  mutable held : word array option array;
}

type t = {
  params : Params.t;
  tree : Tree.t;
  net : payload Ks_sim.Net.t;
  structure : Structure.t;
  behavior : behavior;
  pending : payload envelope list ref;
  cands : cand_state array;
  vec_len : int array;
  garbage_rng : Prng.t;
  (* Graceful degradation: robust-decode failures are detected (counted)
     rather than silently dropped, and may trigger up to [max_retries]
     re-request rounds each (see [settle]). *)
  max_retries : int;
  mutable decode_failures : int;
  mutable retries_used : int;
  (* Quarantine: per-accuser set of senders caught provably misbehaving
     (share word outside Z_p, wrong public length, equivocation witnessed
     on a private channel).  A quarantined sender's messages are ignored
     by that accuser from the moment of the accusation.  Honest and
     behavior-policy traffic never produces evidence (Garbage and Flip
     stay in-field and length-preserving), so enabling quarantine leaves
     unattacked runs byte-identical. *)
  quarantine_on : bool;
  quarantined : (int, unit) Hashtbl.t array;
  mutable quarantine_events : int;
}

let create ?(retries = 0) ?(quarantine = true) ~params ~tree ~seed ~behavior
    ~strategy ?budget () =
  let pending = ref [] in
  let wrapped =
    {
      strategy with
      act =
        (fun view ->
          let staged = !pending in
          pending := [];
          strategy.act view @ staged);
    }
  in
  let net =
    Ks_sim.Net.create ~label:"tree" ~seed ~n:params.Params.n
      ~budget:(Option.value ~default:(Params.corruption_budget params) budget)
      ~msg_bits:(payload_bits params) ~strategy:wrapped ()
  in
  {
    params;
    tree;
    net;
    structure = Structure.build tree;
    behavior;
    pending;
    cands =
      Array.init params.Params.n (fun _ -> { live_level = 0; held = [||] });
    vec_len = Array.make params.Params.n 0;
    garbage_rng = Prng.split (Ks_sim.Net.rng net);
    max_retries = retries;
    decode_failures = 0;
    retries_used = 0;
    quarantine_on = quarantine;
    quarantined = Array.init params.Params.n (fun _ -> Hashtbl.create 4);
    quarantine_events = 0;
  }

let net t = t.net
let decode_failures t = t.decode_failures
let retries_used t = t.retries_used
let quarantine_events t = t.quarantine_events

let is_quarantined t ~accuser ~offender =
  t.quarantine_on && Hashtbl.mem t.quarantined.(accuser) offender
let tree t = t.tree
let structure t = t.structure
let params t = t.params

let queue_adversarial t msgs = t.pending := msgs @ !(t.pending)

let exchange t msgs = Ks_sim.Net.exchange t.net msgs

let level_of t ~cand =
  let l = t.cands.(cand).live_level in
  if l <= 0 then None else Some l

let held_value t ~cand ~inst =
  let st = t.cands.(cand) in
  if inst < Array.length st.held then st.held.(inst) else None

let node_of t ~cand ~level = Tree.leaf_ancestor t.tree ~leaf:cand ~level

let is_corrupt t p = Ks_sim.Net.is_corrupt t.net p

(* What a corrupted holder puts on the wire in place of [words].  Only
   [Equivocate] looks at the destination: it tells a different (but
   internally consistent and in-field) lie to each parity class, the
   rushing-equivocation primitive.  The other behaviors ignore [dst] and
   in particular [Garbage] draws exactly once per routed message, so
   adding [Equivocate] changed no existing RNG stream. *)
let corrupt_words t ~dst words =
  match t.behavior with
  | Follow -> Some (Array.copy words)
  | Silent -> None
  | Garbage -> Some (Array.map (fun _ -> Zp.random t.garbage_rng) words)
  | Flip -> Some (Array.map (fun w -> Zp.add w Zp.one) words)
  | Equivocate ->
    let delta = if dst land 1 = 0 then Zp.one else Zp.add Zp.one Zp.one in
    Some (Array.map (fun w -> Zp.add w delta) words)

(* Route a message: direct for good senders, via the adversary queue for
   corrupted ones (with the behavior policy applied to the payload). *)
let route t ~src ~dst ~(payload_of : word array -> payload) words good_acc =
  if is_corrupt t src then begin
    match corrupt_words t ~dst words with
    | None -> good_acc
    | Some w ->
      queue_adversarial t [ { src; dst; payload = payload_of w } ];
      good_acc
  end
  else { src; dst; payload = payload_of (Array.copy words) } :: good_acc

(* --- Hardened acceptance ------------------------------------------------

   [admit] is the single gate every share-carrying payload passes before
   a handler may use it, called only after the handler's route-legitimacy
   checks (right identifier ranges, right sender for the slot, right
   recipient) have succeeded — so a failure here is *provable*
   misbehaviour by the sender, not a routing accident, and earns it a
   place on the accuser's quarantine list:

   - ["wrong_length"]: the word count differs from the publicly known
     vector length for the slot;
   - ["out_of_field"]: a word is not a canonical Z_p representative;
   - ["equivocation"]: a second, conflicting value for the same slot from
     the same sender on the accuser's private channel ([witness] holds
     the first value per (accuser, sender, slot); duplicated deliveries
     of the identical value — benign [dup] faults, retry resends — do
     not conflict).

   With quarantine off the gate degrades to exactly the pre-hardening
   length check: no evidence, no events, no rejections beyond length. *)

let words_equal a b =
  Array.length a = Array.length b
  &&
  (let ok = ref true in
   Array.iteri (fun i w -> if b.(i) <> w then ok := false) a;
   !ok)

let accuse t ~accuser ~offender ~evidence ~info =
  (* A processor never quarantines itself: a corrupt sender that is also
     the collector would otherwise record a meaningless self-conviction
     (the malformed message is still rejected by [admit]). *)
  if accuser <> offender && not (Hashtbl.mem t.quarantined.(accuser) offender)
  then begin
    Hashtbl.replace t.quarantined.(accuser) offender ();
    t.quarantine_events <- t.quarantine_events + 1;
    Ks_sim.Net.quarantine t.net ~accuser ~offender ~evidence ~info
  end

let admit t ~witness ~accuser ~src ~key ~slot ~expected_len words =
  if not t.quarantine_on then Array.length words = expected_len
  else if Hashtbl.mem t.quarantined.(accuser) src then false
  else if Array.length words <> expected_len then begin
    accuse t ~accuser ~offender:src ~evidence:"wrong_length"
      ~info:(Array.length words);
    false
  end
  else
    match Array.find_opt (fun w -> w < 0 || w >= Zp.p) words with
    | Some w ->
      accuse t ~accuser ~offender:src ~evidence:"out_of_field" ~info:w;
      false
    | None -> (
      let wkey = (accuser, src, key) in
      match Hashtbl.find_opt witness wkey with
      | Some prev when not (words_equal prev words) ->
        accuse t ~accuser ~offender:src ~evidence:"equivocation" ~info:slot;
        false
      | Some _ -> true
      | None ->
        Hashtbl.add witness wkey (Array.copy words);
        true)

let word_majority vectors =
  match vectors with
  | [] -> None
  | first :: _ ->
    let len = Array.length first in
    let vectors = List.filter (fun v -> Array.length v = len) vectors in
    let out = Array.make len 0 in
    for w = 0 to len - 1 do
      let counts = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts v.(w)) in
          Hashtbl.replace counts v.(w) (c + 1))
        vectors;
      let best = ref None in
      Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp
        (fun value c ->
          match !best with
          | None -> best := Some (value, c)
          | Some (bv, bc) ->
            if c > bc || (c = bc && value < bv) then best := Some (value, c))
        counts;
      match !best with Some (v, _) -> out.(w) <- v | None -> ()
    done;
    Some out

let deal_all t ~arrays =
  let n = t.params.Params.n in
  if Array.length arrays <> n then invalid_arg "Comm.deal_all: need one array per processor";
  let k1 = Tree.node_size t.tree ~level:1 in
  let t1 = Params.share_threshold t.params ~holders:k1 in
  let msgs = ref [] in
  for c = 0 to n - 1 do
    t.vec_len.(c) <- Array.length arrays.(c);
    let leaf_members = Tree.members t.tree ~level:1 ~node:c in
    let per_holder =
      Sh.deal_vector (Ks_sim.Net.proc_rng t.net c) ~threshold:t1 ~holders:k1
        arrays.(c)
    in
    for h = 0 to k1 - 1 do
      let words = Array.map (fun s -> s.Sh.value) per_holder.(h) in
      msgs :=
        route t ~src:c ~dst:leaf_members.(h)
          ~payload_of:(fun words -> Deal { cand = c; inst = h; words })
          words !msgs
    done
  done;
  let inboxes = exchange t !msgs in
  Array.iter
    (fun st ->
      st.live_level <- 1;
      st.held <- Array.make k1 None)
    t.cands;
  let witness = Hashtbl.create 64 in
  Array.iteri
    (fun p inbox ->
      List.iter
        (fun e ->
          match e.payload with
          | Deal { cand; inst; words }
            when cand >= 0 && cand < n && inst >= 0 && inst < k1
                 && e.src = cand
                 && (Tree.members t.tree ~level:1 ~node:cand).(inst) = p ->
            if
              admit t ~witness ~accuser:p ~src:e.src ~key:(cand, inst) ~slot:inst
                ~expected_len:t.vec_len.(cand) words
              && t.cands.(cand).held.(inst) = None
            then t.cands.(cand).held.(inst) <- Some words
          | _ -> ())
        inbox)
    inboxes

let reshare_up t ~cands ~drop =
  match cands with
  | [] -> List.iter (fun c -> t.cands.(c).live_level <- -1; t.cands.(c).held <- [||]) drop
  | first :: _ ->
    let lvl = t.cands.(first).live_level in
    List.iter
      (fun c ->
        if t.cands.(c).live_level <> lvl then
          invalid_arg "Comm.reshare_up: candidates at different levels")
      cands;
    if lvl < 1 then invalid_arg "Comm.reshare_up: candidate not live";
    let next = lvl + 1 in
    if next > Tree.levels t.tree then invalid_arg "Comm.reshare_up: already at root";
    let cand_set = Hashtbl.create 64 in
    List.iter (fun c -> Hashtbl.replace cand_set c ()) cands;
    let count_cur = Structure.count t.structure ~level:lvl in
    let count_next = Structure.count t.structure ~level:next in
    let msgs = ref [] in
    List.iter
      (fun c ->
        let st = t.cands.(c) in
        let cur_members = Tree.members t.tree ~level:lvl ~node:(node_of t ~cand:c ~level:lvl) in
        let parent_members =
          Tree.members t.tree ~level:next ~node:(node_of t ~cand:c ~level:next)
        in
        for inst = 0 to count_cur - 1 do
          match st.held.(inst) with
          | None -> ()
          | Some v ->
            let p = Structure.pos t.structure ~level:lvl ~inst in
            let holder = cur_members.(p) in
            let xs = Tree.uplinks t.tree ~level:lvl ~member:p in
            let children = Structure.children t.structure ~level:lvl ~inst in
            let th = Params.share_threshold t.params ~holders:(Array.length xs) in
            let per_holder =
              Sh.deal_vector_at (Ks_sim.Net.proc_rng t.net holder) ~threshold:th ~xs v
            in
            Array.iteri
              (fun j words ->
                let inst' = children.(j) in
                msgs :=
                  route t ~src:holder ~dst:parent_members.(xs.(j))
                    ~payload_of:(fun words -> Share_up { cand = c; inst = inst'; words })
                    words !msgs)
              per_holder
        done)
      cands;
    let inboxes = exchange t !msgs in
    let fresh = Hashtbl.create 64 in
    List.iter (fun c -> Hashtbl.replace fresh c (Array.make count_next None)) cands;
    let witness = Hashtbl.create 64 in
    Array.iteri
      (fun p inbox ->
        List.iter
          (fun e ->
            match e.payload with
            | Share_up { cand; inst; words }
              when Hashtbl.mem cand_set cand && inst >= 0 && inst < count_next ->
              let held = Hashtbl.find fresh cand in
              let ppos = Structure.pos t.structure ~level:next ~inst in
              let parent_inst = Structure.parent t.structure ~level:next ~inst in
              let cur_node = node_of t ~cand ~level:lvl in
              let parent_node = node_of t ~cand ~level:next in
              let expected_dst =
                (Tree.members t.tree ~level:next ~node:parent_node).(ppos)
              in
              let expected_src =
                (Tree.members t.tree ~level:lvl ~node:cur_node).(Structure.pos
                                                                   t.structure
                                                                   ~level:lvl
                                                                   ~inst:parent_inst)
              in
              if
                expected_dst = p && expected_src = e.src
                && admit t ~witness ~accuser:p ~src:e.src ~key:(cand, inst)
                     ~slot:inst ~expected_len:t.vec_len.(cand) words
                && held.(inst) = None
              then held.(inst) <- Some words
            | _ -> ())
          inbox)
      inboxes;
    List.iter
      (fun c ->
        let st = t.cands.(c) in
        st.live_level <- next;
        st.held <- Hashtbl.find fresh c)
      cands;
    List.iter
      (fun c ->
        t.cands.(c).live_level <- -1;
        t.cands.(c).held <- [||])
      drop

(* Bounded re-request: when robust decoding failed for some keys, re-run
   the same exchange — the good senders resend their shares, which under
   a benign-fault plan gives fresh delivery draws, so shares lost to
   omission can get through — merge the newly arrived pieces, and decode
   again.  [decode ()] re-decodes the accumulated pieces and returns the
   result table with the number of keys still failing; [collect] folds
   one more round of inboxes into those pieces.  Failures left once the
   retry budget is spent are counted as detected degradation, exactly
   where the old code silently dropped them.  With [max_retries = 0]
   (the default) behaviour is bit-identical to no fault handling at all:
   one decode, no extra rounds, no extra randomness. *)
let rec settle t ~msgs ~collect ~decode ~attempt =
  let next, failed = decode () in
  if failed = 0 || attempt >= t.max_retries then begin
    t.decode_failures <- t.decode_failures + failed;
    next
  end
  else begin
    t.retries_used <- t.retries_used + 1;
    collect (exchange t msgs);
    settle t ~msgs ~collect ~decode ~attempt:(attempt + 1)
  end

let open_ranges_view t ~level ~ranges =
  if level < 2 then invalid_arg "Comm.open_ranges_view: level must be >= 2";
  let range_tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, off, len) ->
      if t.cands.(c).live_level <> level then
        invalid_arg "Comm.open_ranges_view: candidate not live at this level";
      if off < 0 || len < 1 || off + len > t.vec_len.(c) then
        invalid_arg "Comm.open_ranges_view: bad range";
      Hashtbl.replace range_tbl c (off, len))
    ranges;
  (* Live values at the election level, restricted to the ranges. *)
  let cur = Hashtbl.create 1024 in
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp
    (fun c (off, len) ->
      let st = t.cands.(c) in
      let node = node_of t ~cand:c ~level in
      Array.iteri
        (fun inst v ->
          match v with
          | Some v -> Hashtbl.replace cur (c, node, inst) (Array.sub v off len)
          | None -> ())
        st.held)
    range_tbl;
  (* sendDown: walk the shares to the leaves, reconstructing one depth per
     round. *)
  let cur = ref cur in
  for l = level downto 2 do
    let msgs = ref [] in
    Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
      (fun (c, node, inst) words ->
        let spos = Structure.pos t.structure ~level:l ~inst in
        let sender = (Tree.members t.tree ~level:l ~node).(spos) in
        let pinst = Structure.parent t.structure ~level:l ~inst in
        let dpos = Structure.pos t.structure ~level:(l - 1) ~inst:pinst in
        let off, _ = Hashtbl.find range_tbl c in
        List.iter
          (fun ch ->
            let dst = (Tree.members t.tree ~level:(l - 1) ~node:ch).(dpos) in
            msgs :=
              route t ~src:sender ~dst
                ~payload_of:(fun words ->
                  Share_down { cand = c; level = l; node = ch; inst; off; words })
                words !msgs)
          (Tree.children t.tree ~level:l ~node))
      !cur;
    (* Collect pieces per (cand, child node, parent instance). *)
    let pieces = Hashtbl.create 1024 in
    let witness = Hashtbl.create 1024 in
    let collect inboxes =
      Array.iteri
        (fun p inbox ->
          List.iter
            (fun e ->
              match e.payload with
              | Share_down { cand; level = ml; node = ch; inst; off; words }
                when ml = l && Hashtbl.mem range_tbl cand ->
              let eoff, elen = Hashtbl.find range_tbl cand in
              if
                off = eoff
                && inst >= 0
                && inst < Structure.count t.structure ~level:l
                && ch >= 0
                && ch < Tree.node_count t.tree ~level:(l - 1)
              then begin
                let pinst = Structure.parent t.structure ~level:l ~inst in
                let dpos = Structure.pos t.structure ~level:(l - 1) ~inst:pinst in
                let dst_ok =
                  (Tree.members t.tree ~level:(l - 1) ~node:ch).(dpos) = p
                in
                let pnode = Tree.parent t.tree ~level:(l - 1) ~node:ch in
                let src_ok =
                  (Tree.members t.tree ~level:l ~node:pnode).(Structure.pos
                                                                t.structure ~level:l
                                                                ~inst) = e.src
                in
                if
                  dst_ok && src_ok
                  && admit t ~witness ~accuser:p ~src:e.src ~key:(cand, ch, inst)
                       ~slot:inst ~expected_len:elen words
                then begin
                  let key = (cand, ch, pinst) in
                  let x = Structure.pos t.structure ~level:l ~inst in
                  let existing =
                    Option.value ~default:[] (Hashtbl.find_opt pieces key)
                  in
                  if not (List.mem_assoc x existing) then
                    Hashtbl.replace pieces key ((x, words) :: existing)
                end
              end
              | _ -> ())
            inbox)
        inboxes
    in
    collect (exchange t !msgs);
    let decode () =
      let next = Hashtbl.create 1024 in
      let failed = ref 0 in
      Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
        (fun (c, ch, pinst) holder_pieces ->
          let dpos = Structure.pos t.structure ~level:(l - 1) ~inst:pinst in
          let holders = Tree.uplinks t.tree ~level:(l - 1) ~member:dpos in
          let th = Params.share_threshold t.params ~holders:(Array.length holders) in
          match Sh.reconstruct_vectors ~failures:failed ~threshold:th holder_pieces with
          | Some v -> Hashtbl.replace next (c, ch, pinst) v
          | None -> ())
        pieces;
      (next, !failed)
    in
    cur := settle t ~msgs:!msgs ~collect ~decode ~attempt:0
  done;
  (* Leaf exchange: members of every level-1 node swap their reconstructed
     1-shares and recover the secrets. *)
  let k1 = Tree.node_size t.tree ~level:1 in
  let t1 = Params.share_threshold t.params ~holders:k1 in
  let msgs = ref [] in
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
    (fun (c, leaf, inst) words ->
      let members = Tree.members t.tree ~level:1 ~node:leaf in
      let sender = members.(inst) in
      let off, _ = Hashtbl.find range_tbl c in
      for mp = 0 to k1 - 1 do
        if mp <> inst then
          msgs :=
            route t ~src:sender ~dst:members.(mp)
              ~payload_of:(fun words -> Leaf_val { cand = c; leaf; inst; off; words })
              words !msgs
      done)
    !cur;
  let pieces = Hashtbl.create 1024 in
  (* Own shares count without a message. *)
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
    (fun (c, leaf, inst) words ->
      Hashtbl.replace pieces (c, leaf, inst) [ (inst, words) ])
    !cur;
  let witness = Hashtbl.create 1024 in
  let collect inboxes =
    Array.iteri
      (fun p inbox ->
        List.iter
          (fun e ->
            match e.payload with
            | Leaf_val { cand; leaf; inst; off; words }
            when Hashtbl.mem range_tbl cand && inst >= 0 && inst < k1
                 && leaf >= 0 && leaf < Tree.node_count t.tree ~level:1 ->
            let eoff, elen = Hashtbl.find range_tbl cand in
            if off = eoff then begin
              let members = Tree.members t.tree ~level:1 ~node:leaf in
              if members.(inst) = e.src then begin
                match Tree.position_of t.tree ~level:1 ~node:leaf p with
                | Some mp ->
                  if
                    admit t ~witness ~accuser:p ~src:e.src ~key:(cand, leaf, inst)
                      ~slot:inst ~expected_len:elen words
                  then begin
                    let key = (cand, leaf, mp) in
                    let existing =
                      Option.value ~default:[] (Hashtbl.find_opt pieces key)
                    in
                    if not (List.mem_assoc inst existing) then
                      Hashtbl.replace pieces key ((inst, words) :: existing)
                  end
                | None -> ()
              end
            end
            | _ -> ())
          inbox)
      inboxes
  in
  collect (exchange t !msgs);
  let decode () =
    let secrets = Hashtbl.create 1024 in
    let failed = ref 0 in
    Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
      (fun key holder_pieces ->
        match Sh.reconstruct_vectors ~failures:failed ~threshold:t1 holder_pieces with
        | Some v -> Hashtbl.replace secrets key v
        | None -> ())
      pieces;
    (secrets, !failed)
  in
  let secrets = settle t ~msgs:!msgs ~collect ~decode ~attempt:0 in
  (* sendOpen: leaf members report straight up the ℓ-links; election-node
     members take a majority inside each leaf's reports, then across
     leaves. *)
  let msgs = ref [] in
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
    (fun (c, leaf, mp) words ->
      let enode = node_of t ~cand:c ~level in
      let sender = (Tree.members t.tree ~level:1 ~node:leaf).(mp) in
      let targets = Tree.ell_sources t.tree ~level ~node:enode ~leaf in
      let emembers = Tree.members t.tree ~level ~node:enode in
      let off, _ = Hashtbl.find range_tbl c in
      Array.iter
        (fun em ->
          msgs :=
            route t ~src:sender ~dst:emembers.(em)
              ~payload_of:(fun words -> Open_val { cand = c; leaf; off; words })
              words !msgs)
        targets)
    secrets;
  let inboxes = exchange t !msgs in
  (* reports : (cand, election member position, leaf) -> word vectors *)
  let reports = Hashtbl.create 4096 in
  let witness = Hashtbl.create 4096 in
  Array.iteri
    (fun p inbox ->
      List.iter
        (fun e ->
          match e.payload with
          | Open_val { cand; leaf; off; words }
            when Hashtbl.mem range_tbl cand && leaf >= 0
                 && leaf < Tree.node_count t.tree ~level:1 ->
            let eoff, elen = Hashtbl.find range_tbl cand in
            if off = eoff then begin
              let enode = node_of t ~cand ~level in
              match Tree.position_of t.tree ~level ~node:enode p with
              | Some em
                when Array.exists (fun l -> l = leaf)
                       (Tree.ell_links t.tree ~level ~node:enode ~member:em)
                     && Tree.position_of t.tree ~level:1 ~node:leaf e.src <> None ->
                if
                  admit t ~witness ~accuser:p ~src:e.src ~key:(cand, leaf)
                    ~slot:leaf ~expected_len:elen words
                then begin
                  let key = (cand, em, leaf) in
                  let existing =
                    Option.value ~default:[] (Hashtbl.find_opt reports key)
                  in
                  Hashtbl.replace reports key (words :: existing)
                end
              | Some _ | None -> ()
            end
          | _ -> ())
        inbox)
    inboxes;
  (* Per-leaf majority, then per-member majority across leaves. *)
  let leaf_values = Hashtbl.create 4096 in
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.triple_cmp
    (fun (cand, em, _leaf) vectors ->
      match word_majority vectors with
      | Some v ->
        let key = (cand, em) in
        let existing = Option.value ~default:[] (Hashtbl.find_opt leaf_values key) in
        Hashtbl.replace leaf_values key (v :: existing)
      | None -> ())
    reports;
  let views = Hashtbl.create 4096 in
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.pair_cmp
    (fun key vectors ->
      match word_majority vectors with
      | Some v -> Hashtbl.replace views key v
      | None -> ())
    leaf_values;
  fun ~cand ~member -> Hashtbl.find_opt views (cand, member)
