module Prng = Ks_stdx.Prng
module Intmath = Ks_stdx.Intmath
open Ks_sim.Types

type msg = Request of int | Reply of { label : int; value : int }

module W = Ks_stdx.Wire.Writer
module R = Ks_stdx.Wire.Reader

let encode_msg m =
  let w = W.create () in
  (match m with
   | Request label ->
     W.byte w 0;
     W.varint w label
   | Reply { label; value } ->
     W.byte w 1;
     W.varint w label;
     W.u32 w value);
  W.contents w

let decode_msg data =
  Ks_stdx.Wire.decode data (fun r ->
      match R.byte r with
      | 0 -> Request (R.varint r)
      | 1 ->
        let label = R.varint r in
        Reply { label; value = R.u32 r }
      | tag -> R.fail (Ks_stdx.Wire.Bad_tag tag))

let varint_len v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go v 1

let msg_bits m =
  8
  *
  match m with
  | Request label -> 1 + varint_len label
  | Reply { label; value = _ } -> 1 + varint_len label + 4

type config = {
  labels : int;
  requests_per_label : int;
  iterations : int;
  overload_cap : int;
  decision_threshold : int;
}

let config_of_params (p : Params.t) =
  let a_log_n = p.Params.a2e_requests_per_label in
  {
    labels = p.Params.a2e_labels;
    requests_per_label = a_log_n;
    iterations = p.Params.a2e_iterations;
    overload_cap =
      Stdlib.max (4 * a_log_n)
        (Intmath.isqrt p.Params.n * Intmath.ceil_log2 p.Params.n);
    decision_threshold =
      int_of_float
        (Float.ceil ((0.5 +. (3.0 *. p.Params.epsilon /. 8.0)) *. float_of_int a_log_n));
  }

let rounds_needed config = (2 * config.iterations) + 1

type state = {
  mutable committed : int option;
  mutable sent : (int * int) list;  (* (destination, label) this iteration *)
  rng : Prng.t;
}

type result = {
  decided : int option array;
  iterations_run : int;
  rounds : int;
  max_sent_bits : int;
  overloaded_events : int;
}

let run ~net ~config ~knows ~coin =
  let n = Ks_sim.Net.n net in
  let overloaded = ref 0 in
  (* Tally this iteration's replies and decide (step 4 of Algorithm 3). *)
  let process_replies st ~me:_ inbox =
    if st.committed = None then begin
      (* Valid replies: one per (responder, label) pair we actually
         queried; everything else is noise the adversary fabricated. *)
      let queried = Hashtbl.create 64 in
      List.iter (fun (dst, label) -> Hashtbl.replace queried (dst, label) ()) st.sent;
      let counted = Hashtbl.create 64 in
      let per_label_count = Hashtbl.create 16 in
      let per_label_value = Hashtbl.create 64 in
      List.iter
        (fun e ->
          match e.payload with
          | Reply { label; value } ->
            let key = (e.src, label) in
            if Hashtbl.mem queried key && not (Hashtbl.mem counted key) then begin
              Hashtbl.add counted key ();
              let c = Option.value ~default:0 (Hashtbl.find_opt per_label_count label) in
              Hashtbl.replace per_label_count label (c + 1);
              let vkey = (label, value) in
              let cv = Option.value ~default:0 (Hashtbl.find_opt per_label_value vkey) in
              Hashtbl.replace per_label_value vkey (cv + 1)
            end
          | Request _ -> ())
        inbox;
      (* i_max: the label with the most replies (ties to lowest label). *)
      let imax = ref None in
      Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp
        (fun label count ->
          match !imax with
          | None -> imax := Some (label, count)
          | Some (l, c) ->
            if count > c || (count = c && label < l) then imax := Some (label, count))
        per_label_count;
      match !imax with
      | None -> ()
      | Some (label, _) ->
        (* Sorted traversal: if several values of [i_max] pass the
           threshold, every replica commits to the smallest, not to
           whichever bucket order served first. *)
        Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.pair_cmp
          (fun (l, value) cv ->
            if l = label && cv >= config.decision_threshold && st.committed = None
            then st.committed <- Some value)
          per_label_value
    end
  in
  let protocol =
    {
      Ks_sim.Engine.init =
        (fun p ->
          (* Everyone — knowledgeable or confused — decides through the
             reply-counting rule; beliefs are only used to serve replies.
             This keeps Lemma 7(2): a good processor either converges on
             the majority message or stays undecided. *)
          { committed = None; sent = []; rng = Ks_sim.Net.proc_rng net p });
      step =
        (fun ~round ~me st ~inbox ->
          let iteration = round / 2 in
          if round mod 2 = 0 then begin
            (* Request phase: first bank the previous iteration's replies,
               then fan out fresh requests for every label. *)
            if round > 0 then process_replies st ~me inbox;
            if iteration >= config.iterations then (st, [])
            else begin
              let sent = ref [] in
              let msgs = ref [] in
              for label = 0 to config.labels - 1 do
                (* Distinct responders per label: replies are counted once
                   per (responder, label), so duplicates would only waste
                   requests. *)
                let dsts =
                  if config.requests_per_label <= n then
                    Prng.sample_without_replacement st.rng ~n
                      ~k:config.requests_per_label
                  else Array.init config.requests_per_label (fun _ -> Prng.int st.rng n)
                in
                Array.iter
                  (fun dst ->
                    sent := (dst, label) :: !sent;
                    msgs := { src = me; dst; payload = Request label } :: !msgs)
                  dsts
              done;
              st.sent <- !sent;
              (st, !msgs)
            end
          end
          else begin
            (* Respond phase: knowledgeable processors answer the agreed
               label, unless overloaded.  A sender claiming more than n-1
               requests is evidently corrupt and is ignored wholesale. *)
            match knows me with
            | None -> (st, [])
            | Some m ->
              (match coin ~iteration me with
               | None -> (st, [])
               | Some k ->
                 let per_sender = Hashtbl.create 64 in
                 List.iter
                   (fun e ->
                     match e.payload with
                     | Request _ ->
                       let c =
                         Option.value ~default:0 (Hashtbl.find_opt per_sender e.src)
                       in
                       Hashtbl.replace per_sender e.src (c + 1)
                     | Reply _ -> ())
                   inbox;
                 (* Lemma 9's guards, scaled to the per-label fan-out: a
                    sender claiming more than n-1 requests is evidently
                    corrupt, and total reads per iteration are capped at a
                    constant multiple of the legitimate expected volume
                    (labels × requests-per-label), so flooding buys the
                    adversary overloads, not unbounded work. *)
                 let read_cap =
                   Stdlib.max (n - 1)
                     (8 * config.labels * config.requests_per_label)
                 in
                 let read = ref 0 in
                 let requests_k =
                   List.filter
                     (fun e ->
                       match e.payload with
                       | Request label when Hashtbl.find per_sender e.src <= n - 1 ->
                         incr read;
                         !read <= read_cap && label = k
                       | Request _ | Reply _ -> false)
                     inbox
                 in
                 if List.length requests_k > config.overload_cap then begin
                   incr overloaded;
                   (st, [])
                 end
                 else
                   ( st,
                     List.map
                       (fun e ->
                         { src = me; dst = e.src; payload = Reply { label = k; value = m } })
                       requests_k ))
          end);
    }
  in
  let rounds = rounds_needed config in
  let states = Ks_sim.Engine.run net protocol ~rounds in
  List.iter
    (fun p ->
      match states.(p).committed with
      | Some v -> Ks_sim.Net.decide net p v
      | None -> ())
    (Ks_sim.Net.good_procs net);
  Ks_sim.Net.emit_meter net;
  {
    decided = Array.map (fun st -> st.committed) states;
    iterations_run = config.iterations;
    rounds;
    max_sent_bits =
      Ks_sim.Meter.max_sent_bits (Ks_sim.Net.meter net)
        ~over:(Ks_sim.Net.good_procs net);
    overloaded_events = !overloaded;
  }
