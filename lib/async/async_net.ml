module Prng = Ks_stdx.Prng
open Ks_sim.Types

type 'msg scheduler = Fair | Delay_targets of int list

(* A growable pool with O(1) random removal (swap with last). *)
module Pool = struct
  type 'msg t = {
    mutable slots : 'msg envelope option array;
    mutable count : int;
  }

  let create () = { slots = Array.make 64 None; count = 0 }

  let push t e =
    if t.count = Array.length t.slots then begin
      let bigger = Array.make (2 * t.count) None in
      Array.blit t.slots 0 bigger 0 t.count;
      t.slots <- bigger
    end;
    t.slots.(t.count) <- Some e;
    t.count <- t.count + 1

  let take t i =
    match t.slots.(i) with
    | None -> assert false
    | Some e ->
      t.count <- t.count - 1;
      t.slots.(i) <- t.slots.(t.count);
      t.slots.(t.count) <- None;
      e

  let take_random t rng = take t (Prng.int rng t.count)
end

type 'msg t = {
  size : int;
  corrupt : bool array;
  starved : bool array;
  meter : Ks_sim.Meter.t;
  msg_bits : 'msg -> int;
  rng : Prng.t;
  (* Two pools keep scheduling O(1): [free] holds traffic the scheduler
     is happy to deliver, [held] the traffic to starved destinations
     (delivered only when nothing else is pending — eventual delivery). *)
  free : 'msg Pool.t;
  held : 'msg Pool.t;
  (* No rounds in the async model: events carry the delivery-event count
     instead, so a trace still orders the run. *)
  mutable delivered : int;
  faults : Ks_faults.Injector.t option;
  hub : Ks_monitor.Hub.t option;
  mutable net_id : int;
}

let emit t ev = match t.hub with None -> () | Some h -> Ks_monitor.Hub.emit h ev

let create ?hub ?faults ?(label = "async") ~seed ~n ~corrupt ~msg_bits ~scheduler () =
  if n <= 0 then invalid_arg "Async_net.create: n must be positive";
  (* Benign faults, as in [Ks_sim.Net]: explicit plan, else ambient.  The
     round-free async model has no churn pass, so only the in-flight
     omission/duplication rates of the plan apply here. *)
  let faults =
    match faults with Some _ as f -> f | None -> Ks_faults.Plan.ambient ()
  in
  let faults =
    Option.bind faults (fun plan -> Ks_faults.Injector.create plan ~label ~n)
  in
  let corrupt_arr = Array.make n false in
  List.iter (fun p -> if p >= 0 && p < n then corrupt_arr.(p) <- true) corrupt;
  let starved = Array.make n false in
  (match scheduler with
   | Fair -> ()
   | Delay_targets targets ->
     List.iter (fun p -> if p >= 0 && p < n then starved.(p) <- true) targets);
  let hub = match hub with Some _ as h -> h | None -> Ks_monitor.Hub.ambient () in
  let t =
    {
      size = n;
      corrupt = corrupt_arr;
      starved;
      meter = Ks_sim.Meter.create ~n;
      msg_bits;
      rng = Prng.create seed;
      free = Pool.create ();
      held = Pool.create ();
      delivered = 0;
      faults;
      hub;
      net_id = 0;
    }
  in
  (match hub with
   | Some h ->
     let budget = Array.fold_left (fun a c -> if c then a + 1 else a) 0 corrupt_arr in
     t.net_id <- Ks_monitor.Hub.register_net h ~label ~n ~budget;
     let total = ref 0 in
     Array.iteri
       (fun p c ->
         if c then begin
           incr total;
           emit t
             (Ks_monitor.Event.Corrupt
                { net = t.net_id; round = 0; proc = p; total = !total; budget })
         end)
       corrupt_arr
   | None -> ());
  t

let n t = t.size
let is_corrupt t p = t.corrupt.(p)
let meter t = t.meter
let pending t = t.free.Pool.count + t.held.Pool.count

let send t msgs =
  List.iter
    (fun e ->
      if e.dst >= 0 && e.dst < t.size then begin
        let bits = t.msg_bits e.payload in
        if not t.corrupt.(e.src) then
          Ks_sim.Meter.charge_send t.meter e.src ~bits;
        emit t
          (Ks_monitor.Event.Send
             { net = t.net_id; round = t.delivered; src = e.src; dst = e.dst;
               bits; adv = t.corrupt.(e.src) });
        (* In-flight benign faults apply at enqueue time: the sender has
           paid either way; omission loses the message, duplication
           schedules (and later charges the receiver for) a second copy. *)
        let enqueue () =
          if t.starved.(e.dst) then Pool.push t.held e else Pool.push t.free e
        in
        match t.faults with
        | None -> enqueue ()
        | Some inj -> (
          match Ks_faults.Injector.transit inj with
          | `Deliver -> enqueue ()
          | `Drop ->
            emit t
              (Ks_monitor.Event.Fault
                 { net = t.net_id; round = t.delivered; kind = "drop";
                   proc = e.src; dst = e.dst; info = bits })
          | `Duplicate ->
            enqueue ();
            enqueue ();
            emit t
              (Ks_monitor.Event.Fault
                 { net = t.net_id; round = t.delivered; kind = "dup";
                   proc = e.src; dst = e.dst; info = bits }))
      end)
    msgs

let decide t p value = emit t (Ks_monitor.Event.Decide { net = t.net_id; proc = p; value })

let emit_meter t =
  match t.hub with
  | None -> ()
  | Some _ ->
    for p = 0 to t.size - 1 do
      emit t
        (Ks_monitor.Event.Meter_proc
           { net = t.net_id; proc = p; sent_bits = Ks_sim.Meter.sent_bits t.meter p;
             recv_bits = Ks_sim.Meter.recv_bits t.meter p;
             sent_msgs = Ks_sim.Meter.sent_msgs t.meter p })
    done;
    emit t
      (Ks_monitor.Event.Run_end
         { net = t.net_id; rounds = t.delivered;
           total_bits = Ks_sim.Meter.total_sent_bits t.meter })

let step t ~handler =
  if pending t = 0 then false
  else begin
    (* Starved destinations get a trickle — one delivery in 32 — rather
       than nothing: deferring held traffic only while other traffic
       exists would let a busy network starve them forever, which the
       asynchronous model's eventual-delivery guarantee forbids. *)
    let from_held =
      t.held.Pool.count > 0
      && (t.free.Pool.count = 0 || Prng.int t.rng 32 = 0)
    in
    let e =
      if from_held then Pool.take_random t.held t.rng
      else Pool.take_random t.free t.rng
    in
    if not t.corrupt.(e.dst) then
      Ks_sim.Meter.charge_recv t.meter e.dst ~bits:(t.msg_bits e.payload);
    t.delivered <- t.delivered + 1;
    send t (handler ~me:e.dst e);
    true
  end

let run t ~handler ~max_events =
  let events = ref 0 in
  while !events < max_events && step t ~handler do
    incr events
  done;
  !events
