(** Asynchronous message-passing network — the substrate for the paper's
    §6 open problem ("Can we adapt our results to the asynchronous
    communication model?").

    No rounds: the adversary controls {e scheduling}.  Messages sit in a
    pending pool; one delivery event at a time, the scheduler picks which
    pending message arrives next.  Delivery is guaranteed {e eventually}
    (the classical async assumption): even a hostile scheduler can only
    reorder and delay, not drop.  Corruption is static here — the
    adaptive-async combination is open territory beyond even the paper's
    question.

    As in the synchronous simulator, good processors' sends are charged
    to a per-processor bit meter, and corrupted processors' behaviour is
    the caller's handler acting for them (the scheduler is the async
    adversary's distinctive power). *)

type 'msg scheduler =
  | Fair  (** uniformly random among pending messages *)
  | Delay_targets of int list
      (** starve the listed destinations: their messages are delivered
          only as a 1-in-32 trickle (or when nothing else is pending) —
          the strongest "unlucky network" compatible with the model's
          eventual-delivery guarantee *)

type 'msg t

(** [create ~seed ~n ~corrupt ~msg_bits ~scheduler ()] — like
    [Ks_sim.Net.create], reports to [?hub] (default: the ambient hub,
    see [Ks_monitor.Hub.with_ambient]).  Events carry the delivery-event
    count in place of a round number — the async model has no rounds.

    [?faults] (default: the ambient [Ks_faults.Plan]) weakens the
    eventual-delivery guarantee with benign in-flight faults: each
    enqueued message may be dropped or duplicated per the plan's [drop]
    and [dup] rates.  The plan's churn and silence rates need a round
    structure and do not apply here. *)
val create :
  ?hub:Ks_monitor.Hub.t ->
  ?faults:Ks_faults.Plan.t ->
  ?label:string ->
  seed:int64 ->
  n:int ->
  corrupt:int list ->
  msg_bits:('msg -> int) ->
  scheduler:'msg scheduler ->
  unit ->
  'msg t

val n : 'msg t -> int
val is_corrupt : 'msg t -> int -> bool
val meter : 'msg t -> Ks_sim.Meter.t

(** [send t msgs] — enqueue messages (charging good senders). *)
val send : 'msg t -> 'msg Ks_sim.Types.envelope list -> unit

val pending : 'msg t -> int

(** [step t ~handler] — deliver one message per the scheduler; the
    recipient's [handler] runs (for corrupted recipients too — the
    caller's handler decides their behaviour) and its outgoing messages
    are enqueued.  Returns [false] when nothing was pending. *)
val step : 'msg t -> handler:(me:int -> 'msg Ks_sim.Types.envelope -> 'msg Ks_sim.Types.envelope list) -> bool

(** [run t ~handler ~max_events] — step until quiescent or the event
    budget is exhausted; returns events processed. *)
val run :
  'msg t ->
  handler:(me:int -> 'msg Ks_sim.Types.envelope -> 'msg Ks_sim.Types.envelope list) ->
  max_events:int ->
  int

(** [decide t p v] — record good processor [p]'s final decision in the
    monitor event stream. *)
val decide : 'msg t -> int -> int -> unit

(** [emit_meter t] — emit per-processor meter snapshots plus a run-end
    event; call when the protocol finishes. *)
val emit_meter : 'msg t -> unit
