module Prng = Ks_stdx.Prng
open Ks_sim.Types

type msg = Bval of { r : int; v : bool } | Aux of { r : int; v : bool }

(* Tag byte + varint round + value bit, as in the synchronous codecs. *)
let msg_bits m =
  let r = match m with Bval { r; _ } | Aux { r; _ } -> r in
  let varint_len v =
    let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
    go v 1
  in
  8 * (1 + varint_len r + 1)

type outcome = {
  decided : bool option array;
  agreement : bool;
  validity : bool;
  events : int;
  max_rounds : int;
  max_sent_bits : int;
}

type byz = Silent | Equivocate

(* Per-round bookkeeping of one good processor. *)
type round_state = {
  bval_senders : (bool, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable bval_sent0 : bool;
  mutable bval_sent1 : bool;
  mutable admitted0 : bool;
  mutable admitted1 : bool;
  mutable first_admitted : bool option;
  mutable aux_sent : bool;
  aux_recv : (int, bool) Hashtbl.t; (* sender -> value (first wins) *)
}

type pstate = {
  mutable est : bool;
  mutable round : int;
  mutable committed : bool option;
  rounds : (int, round_state) Hashtbl.t;
}

let round_state st r =
  match Hashtbl.find_opt st.rounds r with
  | Some rs -> rs
  | None ->
    let rs =
      {
        bval_senders = Hashtbl.create 4;
        bval_sent0 = false;
        bval_sent1 = false;
        admitted0 = false;
        admitted1 = false;
        first_admitted = None;
        aux_sent = false;
        aux_recv = Hashtbl.create 16;
      }
    in
    Hashtbl.replace st.rounds r rs;
    rs

let run ~seed ~n ~f ~inputs ~byz ~scheduler ~max_events () =
  if Array.length inputs <> n then invalid_arg "Async_ba.run: inputs length";
  let root = Prng.create seed in
  let coin_rng = Prng.split root in
  let coin r = Int64.logand (Prng.bits64 (Prng.split_at coin_rng r)) 1L = 1L in
  let corrupt =
    Array.to_list (Prng.sample_without_replacement (Prng.split root) ~n ~k:f)
  in
  let net =
    Async_net.create ~seed:(Prng.bits64 root) ~n ~corrupt ~msg_bits ~scheduler ()
  in
  let states =
    Array.init n (fun p ->
        { est = inputs.(p); round = 0; committed = None; rounds = Hashtbl.create 8 })
  in
  let byz_rounds_seen = Array.init n (fun _ -> Hashtbl.create 8) in
  let byz_rng = Prng.split root in
  let broadcast me payload = List.init n (fun dst -> { src = me; dst; payload }) in
  let quorum_relay = f + 1 in
  let quorum_admit = (2 * f) + 1 in
  let quorum_aux = n - f in
  (* Apply the round-advance rule as far as the current round's evidence
     allows; returns the messages to send. *)
  let rec progress me st =
    let r = st.round in
    let rs = round_state st r in
    let out = ref [] in
    let admitted v = if v then rs.admitted1 else rs.admitted0 in
    if (not rs.admitted0) && not rs.admitted1 then []
    else begin
      if not rs.aux_sent then begin
        rs.aux_sent <- true;
        let v = Option.value ~default:st.est rs.first_admitted in
        out := broadcast me (Aux { r; v })
      end;
      (* AUX messages whose value is admitted, from distinct senders. *)
      let senders = Hashtbl.create 16 in
      let saw0 = ref false and saw1 = ref false in
      Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp
        (fun s v ->
          if admitted v then begin
            Hashtbl.replace senders s ();
            if v then saw1 := true else saw0 := true
          end)
        rs.aux_recv;
      if Hashtbl.length senders >= quorum_aux then begin
        let c = coin r in
        (match (!saw0, !saw1) with
         | true, false ->
           st.est <- false;
           if (not c) && st.committed = None then st.committed <- Some false
         | false, true ->
           st.est <- true;
           if c && st.committed = None then st.committed <- Some true
         | _ -> st.est <- c);
        st.round <- r + 1;
        let r' = st.round in
        let rs' = round_state st r' in
        if st.est then rs'.bval_sent1 <- true else rs'.bval_sent0 <- true;
        out := !out @ broadcast me (Bval { r = r'; v = st.est });
        (* Later rounds may already have enough evidence buffered. *)
        out := !out @ progress me st
      end;
      !out
    end
  in
  let handle_good me e =
    let st = states.(me) in
    match e.payload with
    | Bval { r; v } ->
      let rs = round_state st r in
      let senders =
        match Hashtbl.find_opt rs.bval_senders v with
        | Some tbl -> tbl
        | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace rs.bval_senders v tbl;
          tbl
      in
      if Hashtbl.mem senders e.src then []
      else begin
        Hashtbl.replace senders e.src ();
        let count = Hashtbl.length senders in
        let out = ref [] in
        let sent = if v then rs.bval_sent1 else rs.bval_sent0 in
        if count >= quorum_relay && not sent then begin
          if v then rs.bval_sent1 <- true else rs.bval_sent0 <- true;
          out := broadcast me (Bval { r; v })
        end;
        if count >= quorum_admit && not (if v then rs.admitted1 else rs.admitted0)
        then begin
          if v then rs.admitted1 <- true else rs.admitted0 <- true;
          if rs.first_admitted = None then rs.first_admitted <- Some v;
          out := !out @ progress me st
        end;
        !out
      end
    | Aux { r; v } ->
      let rs = round_state st r in
      if Hashtbl.mem rs.aux_recv e.src then []
      else begin
        Hashtbl.replace rs.aux_recv e.src v;
        progress me st
      end
  in
  let handle_byz me e =
    match byz with
    | Silent -> []
    | Equivocate ->
      let r = match e.payload with Bval { r; _ } | Aux { r; _ } -> r in
      if Hashtbl.mem byz_rounds_seen.(me) r then []
      else begin
        Hashtbl.replace byz_rounds_seen.(me) r ();
        broadcast me (Bval { r; v = true })
        @ broadcast me (Bval { r; v = false })
        @ broadcast me (Aux { r; v = Prng.bool byz_rng })
      end
  in
  let handler ~me e =
    if Async_net.is_corrupt net me then handle_byz me e else handle_good me e
  in
  (* Kick off round 0. *)
  for p = 0 to n - 1 do
    if not (Async_net.is_corrupt net p) then begin
      let st = states.(p) in
      let rs = round_state st 0 in
      if st.est then rs.bval_sent1 <- true else rs.bval_sent0 <- true;
      Async_net.send net (broadcast p (Bval { r = 0; v = st.est }))
    end
  done;
  let good p = not (Async_net.is_corrupt net p) in
  let all_decided () =
    let ok = ref true in
    for p = 0 to n - 1 do
      if good p && states.(p).committed = None then ok := false
    done;
    !ok
  in
  let events = ref 0 in
  let chunk = Stdlib.max 64 (n * 4) in
  while (not (all_decided ())) && !events < max_events && Async_net.pending net > 0 do
    events := !events + Async_net.run net ~handler ~max_events:chunk
  done;
  let decided = Array.map (fun st -> st.committed) states in
  for p = 0 to n - 1 do
    if good p then
      match decided.(p) with
      | Some v -> Async_net.decide net p (Bool.to_int v)
      | None -> ()
  done;
  Async_net.emit_meter net;
  let good_values =
    List.filter_map
      (fun p -> if good p then decided.(p) else None)
      (List.init n (fun i -> i))
  in
  let agreement =
    List.length good_values = List.length (List.filter good (List.init n (fun i -> i)))
    && (match good_values with
        | [] -> true
        | first :: rest -> List.for_all (fun v -> v = first) rest)
  in
  let validity =
    match good_values with
    | v :: _ ->
      let ok = ref false in
      for p = 0 to n - 1 do
        if good p && inputs.(p) = v then ok := true
      done;
      !ok
    | [] -> false
  in
  let max_rounds =
    Array.fold_left
      (fun acc (st : pstate) -> Stdlib.max acc st.round)
      0
      (Array.of_list
         (List.filter_map
            (fun p -> if good p then Some states.(p) else None)
            (List.init n (fun i -> i))))
  in
  {
    decided;
    agreement;
    validity;
    events = !events;
    max_rounds;
    max_sent_bits =
      Ks_sim.Meter.max_sent_bits (Async_net.meter net)
        ~over:(List.filter good (List.init n (fun i -> i)));
  }
