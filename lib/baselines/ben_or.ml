open Ks_sim.Types

type msg = Report of bool | Propose of bool option

type state = {
  mutable value : bool;
  mutable decided : bool option;
  rng : Ks_stdx.Prng.t;
}

let run ~seed ~n ~budget ~max_phases ~inputs ~strategy =
  if Array.length inputs <> n then invalid_arg "Ben_or.run: inputs length";
  let faults = budget in
  let net =
    Ks_sim.Net.create ~label:"ben_or" ~seed ~n ~budget
      ~msg_bits:(fun m -> match m with Report _ -> 1 | Propose _ -> 2)
      ~strategy ()
  in
  let broadcast me payload = List.init n (fun dst -> { src = me; dst; payload }) in
  let protocol =
    {
      Ks_sim.Engine.init =
        (fun p ->
          { value = inputs.(p); decided = None; rng = Ks_sim.Net.proc_rng net p });
      step =
        (fun ~round ~me st ~inbox ->
          if round mod 2 = 0 then begin
            (* Close the previous phase from the proposals, then report. *)
            if round > 0 then begin
              let seen = Hashtbl.create 64 in
              let count_some = Hashtbl.create 4 in
              List.iter
                (fun e ->
                  match e.payload with
                  | Propose p when not (Hashtbl.mem seen e.src) ->
                    Hashtbl.add seen e.src ();
                    (match p with
                     | Some v ->
                       Hashtbl.replace count_some v
                         (1 + Option.value ~default:0 (Hashtbl.find_opt count_some v))
                     | None -> ())
                  | Propose _ | Report _ -> ())
                inbox;
              let count v = Option.value ~default:0 (Hashtbl.find_opt count_some v) in
              let majority_threshold = (n / 2) + faults + 1 in
              let pick =
                if count true >= count false then Some (true, count true)
                else Some (false, count false)
              in
              (match pick with
               | Some (v, c) when c >= majority_threshold ->
                 st.value <- v;
                 if st.decided = None then st.decided <- Some v
               | Some (v, c) when c >= faults + 1 -> st.value <- v
               | Some _ | None -> st.value <- Ks_stdx.Prng.bool st.rng)
            end;
            (st, broadcast me (Report st.value))
          end
          else begin
            (* Propose a supermajority value, or ⊥. *)
            let seen = Hashtbl.create 64 in
            let ones = ref 0 and total = ref 0 in
            List.iter
              (fun e ->
                match e.payload with
                | Report v when not (Hashtbl.mem seen e.src) ->
                  Hashtbl.add seen e.src ();
                  incr total;
                  if v then incr ones
                | Report _ | Propose _ -> ())
              inbox;
            let threshold = ((n + faults) / 2) + 1 in
            let proposal =
              if !ones >= threshold then Some true
              else if !total - !ones >= threshold then Some false
              else None
            in
            (st, broadcast me (Propose proposal))
          end);
    }
  in
  let states = Ks_sim.Engine.run net protocol ~rounds:((2 * max_phases) + 1) in
  Outcome.of_decisions ~net ~inputs
    (Array.map
       (fun st -> match st.decided with Some v -> Some v | None -> Some st.value)
       states)
