open Ks_sim.Types

type msg = Value of bool | King_value of bool

type state = { mutable value : bool; mutable mult : int; mutable plurality : bool }

let run ~seed ~n ~budget ~faults ~inputs ~strategy =
  if Array.length inputs <> n then invalid_arg "Phase_king.run: inputs length";
  let net =
    Ks_sim.Net.create ~label:"phase_king" ~seed ~n ~budget ~msg_bits:(fun _ -> 1)
      ~strategy ()
  in
  let phases = faults + 1 in
  let protocol =
    {
      Ks_sim.Engine.init =
        (fun p -> { value = inputs.(p); mult = 0; plurality = false });
      step =
        (fun ~round ~me st ~inbox ->
          let phase_round = round mod 2 in
          let phase = round / 2 in
          let king = phase mod n in
          if phase_round = 0 then begin
            (* Finish the previous phase: adopt the king's value when our
               own plurality was weak. *)
            if round > 0 then begin
              let king_value =
                List.find_map
                  (fun e ->
                    match e.payload with
                    | King_value v when e.src = (((round / 2) - 1) mod n) -> Some v
                    | King_value _ | Value _ -> None)
                  inbox
              in
              if st.mult <= (n / 2) + faults then
                st.value <- Option.value ~default:st.value king_value
              else st.value <- st.plurality
            end;
            ( st,
              if phase >= phases then []
              else List.init n (fun dst -> { src = me; dst; payload = Value st.value }) )
          end
          else begin
            (* Tally the value broadcasts; the king announces its
               plurality. *)
            let seen = Hashtbl.create 64 in
            let ones = ref 0 and total = ref 0 in
            List.iter
              (fun e ->
                match e.payload with
                | Value v when not (Hashtbl.mem seen e.src) ->
                  Hashtbl.add seen e.src ();
                  incr total;
                  if v then incr ones
                | Value _ | King_value _ -> ())
              inbox;
            let plurality = 2 * !ones >= !total in
            let mult = if plurality then !ones else !total - !ones in
            st.plurality <- plurality;
            st.mult <- mult;
            ( st,
              if me = king then
                List.init n (fun dst -> { src = me; dst; payload = King_value plurality })
              else [] )
          end);
    }
  in
  (* One extra half-phase so the last king round is absorbed. *)
  let states = Ks_sim.Engine.run net protocol ~rounds:((2 * phases) + 1) in
  Outcome.of_decisions ~net ~inputs (Array.map (fun st -> Some st.value) states)
