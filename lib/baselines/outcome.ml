(** Common result shape for the baseline agreement protocols, so the
    benchmark tables can compare them uniformly with the paper's
    protocol. *)

type t = {
  decided : bool option array;  (** per-processor decision *)
  agreement : bool;  (** all good processors decided, on one value *)
  validity : bool;  (** the common value was some good input *)
  rounds : int;
  max_sent_bits : int;  (** max bits sent by a good processor *)
  total_sent_bits : int;  (** bits sent by all good processors *)
}

let of_decisions ~net ~inputs decided =
  let n = Ks_sim.Net.n net in
  let good p = not (Ks_sim.Net.is_corrupt net p) in
  let values =
    List.filter_map
      (fun p -> if good p then Some decided.(p) else None)
      (List.init n (fun i -> i))
  in
  let agreement =
    match values with
    | [] -> true
    | first :: rest -> first <> None && List.for_all (fun v -> v = first) rest
  in
  let validity =
    agreement
    && (match values with
        | Some v :: _ ->
          let ok = ref false in
          for p = 0 to n - 1 do
            if good p && inputs.(p) = v then ok := true
          done;
          !ok
        | _ -> false)
  in
  let meter = Ks_sim.Net.meter net in
  let goods = Ks_sim.Net.good_procs net in
  List.iter
    (fun p ->
      match decided.(p) with
      | Some v -> Ks_sim.Net.decide net p (if v then 1 else 0)
      | None -> ())
    goods;
  Ks_sim.Net.emit_meter net;
  {
    decided;
    agreement;
    validity;
    rounds = Ks_sim.Meter.rounds meter;
    max_sent_bits = Ks_sim.Meter.max_sent_bits meter ~over:goods;
    total_sent_bits =
      List.fold_left (fun acc p -> acc + Ks_sim.Meter.sent_bits meter p) 0 goods;
  }
