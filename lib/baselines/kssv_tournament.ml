module Prng = Ks_stdx.Prng
module Tree = Ks_topology.Tree
module Params = Ks_core.Params
module Election = Ks_core.Election
open Ks_sim.Types

type result = {
  committee : int array;
  good_fraction : float;
  corrupted_total : int;
  max_sent_bits : int;
  rounds : int;
}

(* Announcement message: the candidate's public bin choice. *)
type msg = Announce of { node : int; level : int; bin : int }

let msg_bits (_ : msg) = 16

(* The strongest rushing strategy for corrupt candidates: pile into the
   currently lightest bin without overtaking the runner-up (cf. T5). *)
let stuff_bins rng ~num_bins good_bins corrupt_count =
  let counts = Array.make num_bins 0 in
  List.iter (fun b -> counts.(b) <- counts.(b) + 1) good_bins;
  let order = Array.init num_bins (fun b -> b) in
  Array.sort (fun a b -> compare counts.(a) counts.(b)) order;
  let lightest = order.(0) in
  let second = if num_bins > 1 then counts.(order.(1)) else max_int in
  let room = Stdlib.max 0 (second - counts.(lightest) - 1) in
  List.init corrupt_count (fun i ->
      if i < room then lightest else Prng.int rng num_bins)

let run ~seed ~params ~adaptive ~budget =
  let n = params.Params.n in
  let root = Prng.create seed in
  let tree = Tree.build (Prng.split root) (Params.tree_config params) in
  let adv_rng = Prng.split root in
  let strategy =
    if adaptive then Ks_sim.Adversary.none
    else
      Ks_sim.Adversary.make ~name:"static"
        ~initial_corruptions:(fun rng ~n ~budget:b ->
          Ks_sim.Adversary.uniform_random_set rng ~n ~budget:(Stdlib.min budget b))
        ()
  in
  let net =
    Ks_sim.Net.create ~label:"kssv" ~seed:(Prng.bits64 root) ~n ~budget ~msg_bits
      ~strategy ()
  in
  let levels = Tree.levels tree in
  (* Level-2 candidates: the processor owning each leaf. *)
  let winners_by_node = ref (Array.init n (fun leaf -> [| leaf |])) in
  for level = 2 to levels do
    let node_count = Tree.node_count tree ~level in
    let cands_at =
      Array.init node_count (fun j ->
          Array.concat
            (List.map (fun ch -> !winners_by_node.(ch)) (Tree.children tree ~level ~node:j)))
    in
    (* One announcement round: every good candidate broadcasts a fresh
       random bin to its election node; corrupt candidates rush. *)
    let num_bins_of =
      Array.map
        (fun cands ->
          Election.num_bins ~candidates:(Stdlib.max 1 (Array.length cands))
            ~winners:params.Params.winners)
        cands_at
    in
    let good_bins =
      Array.mapi
        (fun j cands ->
          Array.map
            (fun c ->
              if Ks_sim.Net.is_corrupt net c then None
              else Some (Prng.int (Ks_sim.Net.proc_rng net c) num_bins_of.(j)))
            cands)
        cands_at
    in
    let msgs = ref [] in
    Array.iteri
      (fun j cands ->
        let members = Tree.members tree ~level ~node:j in
        Array.iteri
          (fun ci c ->
            match good_bins.(j).(ci) with
            | Some bin ->
              Array.iter
                (fun dst ->
                  msgs := { src = c; dst; payload = Announce { node = j; level; bin } } :: !msgs)
                members
            | None -> ())
          cands)
      cands_at;
    ignore (Ks_sim.Net.exchange net !msgs);
    (* Resolve each node's election; corrupt candidates' bins are chosen
       after seeing every good bin (rushing). *)
    let new_winners = Array.make node_count [||] in
    Array.iteri
      (fun j cands ->
        let goods = List.filter_map Fun.id (Array.to_list good_bins.(j)) in
        let corrupt_count =
          Array.length cands - List.length goods
        in
        let stuffed = stuff_bins adv_rng ~num_bins:num_bins_of.(j) goods corrupt_count in
        let bins = Array.make (Array.length cands) 0 in
        let next_stuffed = ref stuffed in
        Array.iteri
          (fun ci _ ->
            match good_bins.(j).(ci) with
            | Some b -> bins.(ci) <- b
            | None ->
              (match !next_stuffed with
               | b :: rest ->
                 bins.(ci) <- b;
                 next_stuffed := rest
               | [] -> bins.(ci) <- 0))
          cands;
        let idx =
          Election.winner_indices ~num_bins:num_bins_of.(j)
            ~target:params.Params.winners bins
        in
        new_winners.(j) <- Array.map (fun i -> cands.(i)) idx)
      cands_at;
    (* The adaptive adversary corrupts the freshly announced winners. *)
    if adaptive then
      Array.iter
        (fun ws -> Ks_sim.Net.corrupt_now net (Array.to_list ws))
        new_winners;
    winners_by_node := new_winners
  done;
  let committee = Array.concat (Array.to_list !winners_by_node) in
  let good =
    Array.fold_left
      (fun acc p -> if Ks_sim.Net.is_corrupt net p then acc else acc + 1)
      0 committee
  in
  let meter = Ks_sim.Net.meter net in
  {
    committee;
    good_fraction =
      (if Array.length committee = 0 then 0.0
       else float_of_int good /. float_of_int (Array.length committee));
    corrupted_total = Ks_sim.Net.corrupt_count net;
    max_sent_bits =
      Ks_sim.Meter.max_sent_bits meter ~over:(Ks_sim.Net.good_procs net);
    rounds = Ks_sim.Meter.rounds meter;
  }
