let run ~seed ~n ~budget ~rounds ~epsilon ~inputs ~strategy =
  (* Rabin all-to-all is the unreliable-coin voting protocol on the
     complete graph with an ideal common coin; the round loop drives the
     same audited Aeba_coin instance the core uses. *)
  let net =
    Ks_sim.Net.create ~label:"rabin" ~seed ~n ~budget ~msg_bits:(fun _ -> 1)
      ~strategy ()
  in
  let graph = Ks_topology.Graph.complete n in
  let members = Array.init n (fun i -> i) in
  let inst =
    Ks_core.Aeba_coin.create ~members ~graph ~inputs ~epsilon ()
  in
  let coin_rng = Ks_stdx.Prng.split (Ks_sim.Net.rng net) in
  for _ = 1 to rounds do
    let msgs =
      List.map
        (fun (src, dst, v) -> { Ks_sim.Types.src; dst; payload = v })
        (Ks_core.Aeba_coin.outgoing inst)
    in
    let inboxes = Ks_sim.Net.exchange net msgs in
    let common = Ks_stdx.Prng.bool coin_rng in
    Ks_core.Aeba_coin.step inst
      ~received:(fun pos ->
        List.map
          (fun e -> (e.Ks_sim.Types.src, e.Ks_sim.Types.payload))
          inboxes.(pos))
      ~coin:(fun _ -> Some common)
      ~good:(fun p -> not (Ks_sim.Net.is_corrupt net p))
  done;
  let votes = Ks_core.Aeba_coin.votes inst in
  Outcome.of_decisions ~net ~inputs (Array.map (fun v -> Some v) votes)
