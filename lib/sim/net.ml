module Prng = Ks_stdx.Prng
open Types

type 'msg t = {
  size : int;
  budget : int;
  label : string;
  corrupt : bool array;
  mutable corrupt_order : proc list; (* newest first *)
  mutable corrupt_count : int;
  meter : Meter.t;
  strategy : 'msg strategy;
  engine_rng : Prng.t;
  adversary_rng : Prng.t;
  proc_seed : Prng.t;
  proc_rngs : Prng.t option array;
  msg_bits : 'msg -> int;
  faults : Ks_faults.Injector.t option;
  mutable round : int;
  mutable hub : Ks_monitor.Hub.t option;
  mutable net_id : int;
}

let emit t ev = match t.hub with None -> () | Some h -> Ks_monitor.Hub.emit h ev

let apply_corruptions t procs =
  List.iter
    (fun p ->
      if p >= 0 && p < t.size && (not t.corrupt.(p)) && t.corrupt_count < t.budget
      then begin
        t.corrupt.(p) <- true;
        t.corrupt_order <- p :: t.corrupt_order;
        t.corrupt_count <- t.corrupt_count + 1;
        emit t
          (Ks_monitor.Event.Corrupt
             { net = t.net_id; round = t.round; proc = p; total = t.corrupt_count;
               budget = t.budget });
        t.strategy.on_corrupt p
      end)
    procs

let create ?hub ?faults ?(label = "net") ~seed ~n ~budget ~msg_bits ~strategy () =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  if budget < 0 || budget >= n then invalid_arg "Net.create: budget out of range";
  let hub = match hub with Some _ as h -> h | None -> Ks_monitor.Hub.ambient () in
  (* Benign-fault layer: an explicit plan wins, otherwise pick up the
     ambient one.  Trivial/absent plans build no injector, so unfaulted
     runs draw no extra randomness and emit no extra events. *)
  let faults =
    match faults with Some _ as f -> f | None -> Ks_faults.Plan.ambient ()
  in
  let faults =
    Option.bind faults (fun plan -> Ks_faults.Injector.create plan ~label ~n)
  in
  let root = Prng.create seed in
  let t =
    {
      size = n;
      budget;
      label;
      corrupt = Array.make n false;
      corrupt_order = [];
      corrupt_count = 0;
      meter = Meter.create ~n;
      strategy;
      engine_rng = Prng.split root;
      adversary_rng = Prng.split root;
      proc_seed = Prng.split root;
      proc_rngs = Array.make n None;
      msg_bits;
      faults;
      round = 0;
      hub;
      net_id = 0;
    }
  in
  (match hub with
   | Some h -> t.net_id <- Ks_monitor.Hub.register_net h ~label ~n ~budget
   | None -> ());
  apply_corruptions t (strategy.initial_corruptions t.adversary_rng ~n ~budget);
  t

let n t = t.size
let round t = t.round
let meter t = t.meter
let is_corrupt t p = t.corrupt.(p)
let corrupt_count t = t.corrupt_count
let budget t = t.budget
let hub t = t.hub

let attach_hub t h =
  t.hub <- Some h;
  t.net_id <- Ks_monitor.Hub.register_net h ~label:t.label ~n:t.size ~budget:t.budget;
  (* The hub arrived after creation: replay the corruptions it missed so
     budget accounting starts from the truth (oldest first). *)
  List.iteri
    (fun i p ->
      Ks_monitor.Hub.emit h
        (Ks_monitor.Event.Corrupt
           { net = t.net_id; round = t.round; proc = p; total = i + 1; budget = t.budget }))
    (List.rev t.corrupt_order)

let good_procs t =
  let rec go p acc = if p < 0 then acc else go (p - 1) (if t.corrupt.(p) then acc else p :: acc) in
  go (t.size - 1) []

let rng t = t.engine_rng

(* Memoized so repeated calls return the same advancing stream — a fresh
   stream per call would replay the same randomness across independent
   secret-sharing polynomials. *)
let proc_rng t p =
  match t.proc_rngs.(p) with
  | Some rng -> rng
  | None ->
    let rng = Prng.split_at t.proc_seed p in
    t.proc_rngs.(p) <- Some rng;
    rng

let corrupt_now t procs = apply_corruptions t procs

let decide t p value = emit t (Ks_monitor.Event.Decide { net = t.net_id; proc = p; value })

let quarantine t ~accuser ~offender ~evidence ~info =
  emit t
    (Ks_monitor.Event.Quarantine
       { net = t.net_id; round = t.round; accuser; offender; evidence; info })

let emit_meter t =
  match t.hub with
  | None -> ()
  | Some _ ->
    for p = 0 to t.size - 1 do
      emit t
        (Ks_monitor.Event.Meter_proc
           { net = t.net_id; proc = p; sent_bits = Meter.sent_bits t.meter p;
             recv_bits = Meter.recv_bits t.meter p; sent_msgs = Meter.sent_msgs t.meter p })
    done;
    emit t
      (Ks_monitor.Event.Run_end
         { net = t.net_id; rounds = Meter.rounds t.meter;
           total_bits = Meter.total_sent_bits t.meter })

let make_view t good_outgoing =
  {
    view_round = t.round;
    view_n = t.size;
    view_is_corrupt = (fun p -> t.corrupt.(p));
    view_corrupt = List.rev t.corrupt_order;
    view_budget_left = t.budget - t.corrupt_count;
    view_visible = List.filter (fun e -> t.corrupt.(e.dst)) good_outgoing;
    view_rng = t.adversary_rng;
  }

let fault_event t kind ~proc ~dst ~info =
  Ks_monitor.Event.Fault
    { net = t.net_id; round = t.round;
      kind = Ks_faults.Injector.kind_to_string kind; proc; dst; info }

let exchange t outgoing =
  emit t (Ks_monitor.Event.Round_start { net = t.net_id; round = t.round });
  (* Benign churn first: crash/recover/silence state advances before any
     traffic moves, and below the adversary — a crashed or silenced
     processor's messages never even enter the network for the adversary
     to rush against. *)
  (match t.faults with
   | None -> ()
   | Some inj ->
     Ks_faults.Injector.begin_round inj ~round:t.round
       ~on_fault:(fun kind ~proc ~info ->
         emit t (fault_event t kind ~proc ~dst:(-1) ~info)));
  (* Only good processors' messages enter the network from the protocol. *)
  let good_outgoing = List.filter (fun e -> not t.corrupt.(e.src)) outgoing in
  let good_outgoing =
    match t.faults with
    | None -> good_outgoing
    | Some inj ->
      List.filter
        (fun e -> not (Ks_faults.Injector.send_suppressed inj e.src))
        good_outgoing
  in
  (* Adaptive corruption: the adversary inspects what it may see, then
     takes over more processors before delivery. *)
  let requested = t.strategy.adapt (make_view t good_outgoing) in
  apply_corruptions t requested;
  (* Messages from freshly corrupted processors are reclaimed. *)
  let good_outgoing = List.filter (fun e -> not t.corrupt.(e.src)) good_outgoing in
  (* Rushing: the adversary reads traffic addressed to its processors and
     only now decides what the corrupted processors send.  The model is
     enforced here: only corrupted, in-range senders may inject, and the
     src bound is checked before the corruption lookup so a strategy
     returning a wild src is dropped rather than crashing the engine. *)
  let adversarial =
    List.filter
      (fun e ->
        e.src >= 0 && e.src < t.size && t.corrupt.(e.src) && e.dst >= 0
        && e.dst < t.size)
      (t.strategy.act (make_view t good_outgoing))
  in
  (* A crashed machine cannot transmit even under adversarial control
     (silence windows are a protocol-layer omission and bind good
     processors only). *)
  let adversarial =
    match t.faults with
    | None -> adversarial
    | Some inj ->
      List.filter (fun e -> not (Ks_faults.Injector.down inj e.src)) adversarial
  in
  (* Accounting and delivery in one pass: each payload is measured once,
     the sender pays, the (good) receiver is charged, and the per-round
     totals for Round_end accumulate alongside instead of being re-folded
     over the payloads afterwards. *)
  let inboxes = Array.make t.size [] in
  let deliver e ~bits =
    inboxes.(e.dst) <- e :: inboxes.(e.dst);
    if not t.corrupt.(e.dst) then Meter.charge_recv t.meter e.dst ~bits
  in
  (* In-flight faults: the sender has already paid for the message (and
     its Send event is already in the trace); omission loses it before
     the receiver is charged, duplication charges the receiver twice.  A
     crashed destination receives nothing, deterministically. *)
  let deliver =
    match t.faults with
    | None -> deliver
    | Some inj ->
      fun e ~bits ->
        if Ks_faults.Injector.down inj e.dst then ()
        else (
          match Ks_faults.Injector.transit inj with
          | `Deliver -> deliver e ~bits
          | `Drop ->
            emit t (fault_event t Ks_faults.Injector.Drop ~proc:e.src ~dst:e.dst ~info:bits)
          | `Duplicate ->
            deliver e ~bits;
            deliver e ~bits;
            emit t (fault_event t Ks_faults.Injector.Dup ~proc:e.src ~dst:e.dst ~info:bits))
  in
  let good_count = ref 0 and good_bits = ref 0 in
  List.iter
    (fun e ->
      let bits = t.msg_bits e.payload in
      incr good_count;
      good_bits := !good_bits + bits;
      Meter.charge_send t.meter e.src ~bits;
      emit t
        (Ks_monitor.Event.Send
           { net = t.net_id; round = t.round; src = e.src; dst = e.dst; bits; adv = false });
      deliver e ~bits)
    good_outgoing;
  let adv_count = ref 0 and adv_bits = ref 0 in
  List.iter
    (fun e ->
      let bits = t.msg_bits e.payload in
      incr adv_count;
      adv_bits := !adv_bits + bits;
      (* Corrupted senders pay for their traffic like everyone else —
         leaving adversarial sends unmetered undercounts total bits. *)
      Meter.charge_send t.meter e.src ~bits;
      emit t
        (Ks_monitor.Event.Send
           { net = t.net_id; round = t.round; src = e.src; dst = e.dst; bits; adv = true });
      deliver e ~bits)
    adversarial;
  (* Reverse so good messages appear first, in send order. *)
  let inboxes = Array.map List.rev inboxes in
  (match t.hub with
   | None -> ()
   | Some _ ->
     emit t
       (Ks_monitor.Event.Round_end
          { net = t.net_id; round = t.round; msgs = !good_count; bits = !good_bits;
            adv_msgs = !adv_count; adv_bits = !adv_bits }));
  Meter.tick_round t.meter;
  t.round <- t.round + 1;
  inboxes
