(** The synchronous network with an adaptive rushing adversary.

    One [exchange] call is one communication round of the model:

    + the protocol hands over the messages its {e good} processors wish to
      send (anything claiming a corrupted source is discarded — the
      adversary speaks for those through its strategy);
    + the adversary, seeing only traffic addressed to processors it
      already controls, may adaptively corrupt more processors (budget
      permitting) — messages just produced by a freshly corrupted
      processor are reclaimed by the adversary (it got there before
      delivery);
    + the adversary then ("rushing") composes the corrupted processors'
      outgoing messages, with no bound on their number (flooding);
    + everything is delivered simultaneously; good processors' sends are
      charged to the meter.

    The network never reorders good processors' messages and never
    forges a good source address.  It {e can} drop or duplicate messages
    — but only under an explicit benign-fault plan ([?faults], or the
    ambient [Ks_faults.Plan]); with no plan the channels are perfectly
    reliable.  Benign faults sit {e below} the adversary: crash/recover
    churn and silence windows suppress sends before the adversary sees
    the round's traffic, in-flight omission/duplication applies to
    adversarial messages too, and none of it consumes the corruption
    budget.  See docs/FAULTS.md. *)

type 'msg t

(** [create ~seed ~n ~budget ~msg_bits ~strategy] — a fresh network of
    [n] processors; the adversary may corrupt at most [budget] of them in
    total, and [msg_bits] prices each payload for the meter.

    Monitoring: the network reports every round, send, corruption and
    decision to [?hub] — defaulting to the {e ambient} hub
    ([Ks_monitor.Hub.ambient ()]), so wrapping a run in
    [Ks_monitor.Hub.with_ambient] monitors every network it creates.
    [?label] names the protocol phase in the event stream ("tree",
    "a2e", "rabin", ...).  With no hub in scope the instrumentation is
    inert; it never touches the PRNG streams either way, so monitored
    and unmonitored runs are bit-identical.

    Faults: [?faults] installs a benign-fault plan for this net,
    defaulting to the ambient plan ([Ks_faults.Plan.ambient ()]).  A
    trivial or absent plan builds no injector — no extra RNG draws, no
    extra events — so unfaulted runs are bit-identical to the
    pre-fault-layer behaviour.  The injector draws from its own stream
    seeded by [plan.seed] and the net label, never from the engine,
    adversary or processor streams. *)
val create :
  ?hub:Ks_monitor.Hub.t ->
  ?faults:Ks_faults.Plan.t ->
  ?label:string ->
  seed:int64 ->
  n:int ->
  budget:int ->
  msg_bits:('msg -> int) ->
  strategy:'msg Types.strategy ->
  unit ->
  'msg t

val n : 'msg t -> int
val round : 'msg t -> int
val meter : 'msg t -> Meter.t
val is_corrupt : 'msg t -> Types.proc -> bool
val corrupt_count : 'msg t -> int
val budget : 'msg t -> int

(** Good (never corrupted) processors, ascending. *)
val good_procs : 'msg t -> Types.proc list

(** The engine RNG — protocols draw their private coins from per-processor
    streams split off this one, see [proc_rng]. *)
val rng : 'msg t -> Ks_stdx.Prng.t

(** [proc_rng t p] — processor [p]'s private coin stream (deterministic in
    the seed, independent across processors). *)
val proc_rng : 'msg t -> Types.proc -> Ks_stdx.Prng.t

(** [exchange t outgoing] executes one round and returns the inbox of
    every processor (index = destination).  Within an inbox, messages
    from good senders come first in sender order, then the adversary's,
    reflecting its control over intra-round ordering being irrelevant to
    our aggregate-style protocols. *)
val exchange : 'msg t -> 'msg Types.envelope list -> 'msg Types.envelope list array

(** [corrupt_now t procs] lets a harness force corruptions outside the
    strategy (used by failure-injection tests); still bounded by the
    budget and reported through [on_corrupt]. *)
val corrupt_now : 'msg t -> Types.proc list -> unit

(** {1 Monitoring} *)

(** The hub this network reports to, if any. *)
val hub : 'msg t -> Ks_monitor.Hub.t option

(** [attach_hub t hub] — attach after creation (how
    [Engine.run ?monitors] installs monitors).  Registers the net with
    [hub] and replays the corruptions the hub missed. *)
val attach_hub : 'msg t -> Ks_monitor.Hub.t -> unit

(** [decide t p v] — record good processor [p]'s final decision in the
    event stream (protocols with an everywhere-agreement contract call
    this once per good processor). *)
val decide : 'msg t -> Types.proc -> int -> unit

(** [quarantine t ~accuser ~offender ~evidence ~info] — record that
    [accuser] holds proof of misbehaviour by [offender] and will ignore
    it from now on.  [evidence] is one of ["out_of_field"],
    ["wrong_length"], ["equivocation"]; [info] carries the offending
    word, length or instance (see docs/ATTACKS.md). *)
val quarantine :
  'msg t -> accuser:Types.proc -> offender:Types.proc -> evidence:string -> info:int -> unit

(** [emit_meter t] — emit a [Meter_proc] snapshot for every processor
    plus a [Run_end]; call at the end of a protocol run.  Re-emission is
    fine: replay readers take the last snapshot per processor. *)
val emit_meter : 'msg t -> unit
