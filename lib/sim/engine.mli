(** Round-driven runner for protocols written as per-processor state
    machines (Algorithm 5, Algorithm 3 and the baselines all fit this
    mould; the tree protocol of Algorithm 2 instead orchestrates
    [Net.exchange] directly through [Ks_core.Comm]). *)

type ('state, 'msg) protocol = {
  init : Types.proc -> 'state;
      (** initial state; called for every processor *)
  step :
    round:int ->
    me:Types.proc ->
    'state ->
    inbox:'msg Types.envelope list ->
    'state * 'msg Types.envelope list;
      (** one round of a {e good} processor: consume the previous round's
          inbox, emit this round's messages.  Corrupted processors are
          never stepped — the adversary speaks for them. *)
}

(** [run net protocol ~rounds] plays [rounds] rounds and returns the final
    state array.  States of processors corrupted at round [r] are frozen
    as of round [r] (exactly what the adversary captured).  The [states]
    array is also exposed {e during} the run via [running_states] so that
    adversary closures can inspect what they seize.

    [?monitors]/[?trace] install an invariant-monitor hub on [net] for
    the duration of the run (see [Ks_monitor]): every round, send and
    corruption is reported, [trace] receives the JSONL event stream.
    When both are omitted the net keeps whatever hub it already has
    (explicit or ambient). *)
val run :
  ?monitors:Ks_monitor.Monitor.t list ->
  ?trace:Ks_monitor.Trace.sink ->
  'msg Net.t -> ('state, 'msg) protocol -> rounds:int -> 'state array

(** [run_mutable net protocol ~rounds ~states] — like [run] but operates
    on a caller-supplied state array (so attack strategies built before
    the run can capture it). *)
val run_mutable :
  ?monitors:Ks_monitor.Monitor.t list ->
  ?trace:Ks_monitor.Trace.sink ->
  'msg Net.t -> ('state, 'msg) protocol -> rounds:int -> states:'state array -> unit
