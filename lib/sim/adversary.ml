open Types

let uniform_random_set rng ~n ~budget =
  Array.to_list (Ks_stdx.Prng.sample_without_replacement rng ~n ~k:budget)

let make ?(name = "custom") ?initial_corruptions ?adapt ?act ?on_corrupt () =
  {
    name;
    initial_corruptions =
      (match initial_corruptions with
       | Some f -> f
       | None -> fun _rng ~n:_ ~budget:_ -> []);
    adapt = (match adapt with Some f -> f | None -> fun _view -> []);
    act = (match act with Some f -> f | None -> fun _view -> []);
    on_corrupt = (match on_corrupt with Some f -> f | None -> fun _p -> ());
  }

(* [none] and [crash_random] are written as literal records rather than
   via [make] so they generalise (the value restriction would otherwise
   pin their message type). *)
let none =
  {
    name = "none";
    initial_corruptions = (fun _rng ~n:_ ~budget:_ -> []);
    adapt = (fun _view -> []);
    act = (fun _view -> []);
    on_corrupt = (fun _p -> ());
  }

let crash_random =
  {
    none with
    name = "crash-random";
    initial_corruptions = (fun rng ~n ~budget -> uniform_random_set rng ~n ~budget);
  }

let creeping_crash ~per_round =
  make ~name:"creeping-crash"
    ~adapt:(fun view ->
      let want = Stdlib.min per_round view.view_budget_left in
      (* Bounded rejection sampling (16 tries per slot, as the workload
         schedules do): with fewer honest processors left than [want] —
         reachable when a harness hands the adversary a view with
         [view_budget_left] at or above the honest count — unbounded
         retries would never terminate.  Picking fewer than [want] is
         fine; [Net.apply_corruptions] caps against the budget anyway. *)
      let rec pick acc k tries =
        if k = 0 || tries = 0 then acc
        else begin
          let p = Ks_stdx.Prng.int view.view_rng view.view_n in
          if view.view_is_corrupt p || List.mem p acc then pick acc k (tries - 1)
          else pick (p :: acc) (k - 1) (tries - 1)
        end
      in
      if want <= 0 then [] else pick [] want (16 * want))
    ()

let with_name name strategy = { strategy with name }
