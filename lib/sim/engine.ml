open Types

type ('state, 'msg) protocol = {
  init : proc -> 'state;
  step :
    round:int -> me:proc -> 'state -> inbox:'msg envelope list ->
    'state * 'msg envelope list;
}

let install net monitors trace =
  match (monitors, trace) with
  | None, None -> ()
  | monitors, trace ->
    let hub =
      Ks_monitor.Hub.create ?trace (Option.value monitors ~default:[])
    in
    Net.attach_hub net hub

let run_mutable ?monitors ?trace net protocol ~rounds ~states =
  install net monitors trace;
  let n = Net.n net in
  let inboxes = ref (Array.make n []) in
  for r = 0 to rounds - 1 do
    let outgoing = ref [] in
    for p = n - 1 downto 0 do
      if not (Net.is_corrupt net p) then begin
        let state', msgs =
          protocol.step ~round:r ~me:p states.(p) ~inbox:!inboxes.(p)
        in
        states.(p) <- state';
        outgoing := msgs @ !outgoing
      end
    done;
    inboxes := Net.exchange net !outgoing
  done

let run ?monitors ?trace net protocol ~rounds =
  let states = Array.init (Net.n net) protocol.init in
  run_mutable ?monitors ?trace net protocol ~rounds ~states;
  states
