type t = int

let p = 2147483647
let order = p

let zero = 0
let one = 1

let of_int k =
  if k < 0 then invalid_arg "Zp.of_int: negative";
  if k >= p then invalid_arg "Zp.of_int: out of range";
  k

let to_int x = x
let equal = Int.equal

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b =
  let d = a - b in
  if d < 0 then d + p else d

let neg a = if a = 0 then 0 else p - a

(* Mersenne reduction: since 2^31 = 1 (mod p), fold the high bits onto
   the low ones instead of dividing.  For canonical inputs the product is
   < 2^62, so two folds bring it under 2p and one conditional subtract
   canonicalises — no hardware [mod] on the hot path. *)
let mul a b =
  let x = a * b in
  let x = (x land p) + (x lsr 31) in
  let x = (x land p) + (x lsr 31) in
  if x >= p then x - p else x

let pow x e =
  if e < 0 then invalid_arg "Zp.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc base) (mul base base) (e asr 1)
    else go acc (mul base base) (e asr 1)
  in
  go one x e

let inv x =
  if x = 0 then raise Division_by_zero;
  pow x (p - 2)

let div a b = mul a (inv b)

let random rng = Ks_stdx.Prng.int rng p

let random_nonzero rng = 1 + Ks_stdx.Prng.int rng (p - 1)

let pp fmt x = Format.fprintf fmt "%d" x
