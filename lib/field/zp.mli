(** The prime field Z_p with p = 2^31 - 1 (a Mersenne prime).

    This is the field used for all secret sharing in the protocol stack:
    its order comfortably exceeds any number of share holders we simulate,
    and products of two canonical representatives fit in OCaml's native
    63-bit integers, so arithmetic needs no boxing.  Because p is a
    Mersenne prime, multiplication reduces with shifts and adds (2^31 = 1
    mod p) rather than a hardware division. *)

include Field_intf.S with type t = int
(** The representation is exposed as the canonical representative in
    [0, p): protocol code stores wire words as plain ints. *)

(** The modulus, 2147483647. *)
val p : int
