type t = int

let order = 256

let zero = 0
let one = 1

(* Multiplication by the generator 3 in GF(2^8)/0x11B, used to build the
   exp/log tables: exp.(i) = 3^i, log.(exp.(i)) = i. *)
let exp_table, log_table =
  let exp_table = Array.make 512 0 in
  let log_table = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    (* multiply !x by 3 = x * 2 xor x, with reduction *)
    let doubled = !x lsl 1 in
    let doubled = if doubled land 0x100 <> 0 then doubled lxor 0x11B else doubled in
    x := doubled lxor !x
  done;
  (* Duplicate so products of logs index without a modulo. *)
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done;
  (exp_table, log_table)

let of_int k =
  if k < 0 then invalid_arg "Gf256.of_int: negative";
  if k >= 256 then invalid_arg "Gf256.of_int: out of range";
  k

let to_int x = x
let equal = Int.equal

let add a b = a lxor b
let sub = add
let neg a = a

let mul a b = if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv x =
  if x = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(x))

let div a b = mul a (inv b)

let pow x e =
  if e < 0 then invalid_arg "Gf256.pow: negative exponent";
  if x = 0 then (if e = 0 then 1 else 0)
  else exp_table.(log_table.(x) * e mod 255)

let random rng = Ks_stdx.Prng.int rng 256

let random_nonzero rng = 1 + Ks_stdx.Prng.int rng 255

let of_char c = Char.code c
let to_char x = Char.chr x

let pp fmt x = Format.fprintf fmt "0x%02x" x
