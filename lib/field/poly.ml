module Make (F : Field_intf.S) = struct
  type t = F.t array
  (* Invariant: either empty, or the last coefficient is non-zero. *)

  let normalise a =
    let n = ref (Array.length a) in
    while !n > 0 && F.equal a.(!n - 1) F.zero do
      decr n
    done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let zero = [||]
  let of_coeffs a = normalise (Array.copy a)
  let coeffs t = Array.copy t
  let degree t = Array.length t - 1

  let equal a b =
    Array.length a = Array.length b
    && begin
         let rec go i = i >= Array.length a || (F.equal a.(i) b.(i) && go (i + 1)) in
         go 0
       end

  let eval t x =
    let acc = ref F.zero in
    for i = Array.length t - 1 downto 0 do
      acc := F.add (F.mul !acc x) t.(i)
    done;
    !acc

  let add a b =
    let n = Stdlib.max (Array.length a) (Array.length b) in
    let get c i = if i < Array.length c then c.(i) else F.zero in
    normalise (Array.init n (fun i -> F.add (get a i) (get b i)))

  let sub a b =
    let n = Stdlib.max (Array.length a) (Array.length b) in
    let get c i = if i < Array.length c then c.(i) else F.zero in
    normalise (Array.init n (fun i -> F.sub (get a i) (get b i)))

  let scale k t =
    if F.equal k F.zero then zero else Array.map (F.mul k) t

  let mul a b =
    if Array.length a = 0 || Array.length b = 0 then zero
    else begin
      let out = Array.make (Array.length a + Array.length b - 1) F.zero in
      Array.iteri
        (fun i ai ->
          Array.iteri (fun j bj -> out.(i + j) <- F.add out.(i + j) (F.mul ai bj)) b)
        a;
      normalise out
    end

  let divmod a b =
    if Array.length b = 0 then raise Division_by_zero;
    let db = degree b in
    let lead_inv = F.inv b.(db) in
    let rem = Array.copy a in
    let dq = degree a - db in
    if dq < 0 then (zero, normalise rem)
    else begin
      let q = Array.make (dq + 1) F.zero in
      for i = dq downto 0 do
        let coeff = F.mul rem.(i + db) lead_inv in
        q.(i) <- coeff;
        if not (F.equal coeff F.zero) then
          for j = 0 to db do
            rem.(i + j) <- F.sub rem.(i + j) (F.mul coeff b.(j))
          done
      done;
      (normalise q, normalise rem)
    end

  let random rng ~degree ~const =
    if degree < 0 then invalid_arg "Poly.random: negative degree";
    let a = Array.init (degree + 1) (fun _ -> F.random rng) in
    a.(0) <- const;
    normalise a

  let check_distinct pts =
    let rec go = function
      | [] -> ()
      | (x, _) :: rest ->
        if List.exists (fun (x', _) -> F.equal x x') rest then
          invalid_arg "Poly.interpolate: duplicate abscissa";
        go rest
    in
    if pts = [] then invalid_arg "Poly.interpolate: no points";
    go pts

  let interpolate pts =
    check_distinct pts;
    (* Sum of y_i * prod_{j<>i} (X - x_j) / (x_i - x_j). *)
    let basis (xi, yi) =
      let num, denom =
        List.fold_left
          (fun (num, denom) (xj, _) ->
            if F.equal xi xj then (num, denom)
            else (mul num (of_coeffs [| F.neg xj; F.one |]), F.mul denom (F.sub xi xj)))
          (of_coeffs [| F.one |], F.one)
          pts
      in
      scale (F.mul yi (F.inv denom)) num
    in
    List.fold_left (fun acc pt -> add acc (basis pt)) zero pts

  (* Montgomery batch inversion: invert k nonzero elements with a single
     field inversion and 3(k-1) multiplications. *)
  let batch_inv a =
    let k = Array.length a in
    if k = 0 then [||]
    else begin
      let prefix = Array.make k F.one in
      prefix.(0) <- a.(0);
      for i = 1 to k - 1 do
        prefix.(i) <- F.mul prefix.(i - 1) a.(i)
      done;
      let out = Array.make k F.zero in
      let inv_tail = ref (F.inv prefix.(k - 1)) in
      for i = k - 1 downto 1 do
        out.(i) <- F.mul !inv_tail prefix.(i - 1);
        inv_tail := F.mul !inv_tail a.(i)
      done;
      out.(0) <- !inv_tail;
      out
    end

  let evaluator pts =
    check_distinct pts;
    let pts = Array.of_list pts in
    let k = Array.length pts in
    let xs = Array.map fst pts in
    (* Barycentric-style precomputation: c_i = y_i / prod_{j<>i} (x_i -
       x_j), one batch inversion for the whole point set. *)
    let denoms =
      Array.mapi
        (fun i xi ->
          let d = ref F.one in
          Array.iteri (fun j xj -> if j <> i then d := F.mul !d (F.sub xi xj)) xs;
          !d)
        xs
    in
    let inv_denoms = batch_inv denoms in
    let cs = Array.mapi (fun i (_, yi) -> F.mul yi inv_denoms.(i)) pts in
    fun x ->
      (* p(x) = sum_i c_i * prod_{j<>i} (x - x_j), with the hole products
         from prefix/suffix arrays: O(k) multiplications, no division.
         At x = x_i every other term vanishes and the sum is y_i. *)
      let prefix = Array.make (k + 1) F.one in
      for i = 0 to k - 1 do
        prefix.(i + 1) <- F.mul prefix.(i) (F.sub x xs.(i))
      done;
      let acc = ref F.zero in
      let suffix = ref F.one in
      for i = k - 1 downto 0 do
        acc := F.add !acc (F.mul cs.(i) (F.mul prefix.(i) !suffix));
        suffix := F.mul !suffix (F.sub x xs.(i))
      done;
      !acc

  let lagrange_eval pts x = evaluator pts x

  let pp fmt t =
    if Array.length t = 0 then Format.fprintf fmt "0"
    else
      Array.iteri
        (fun i c ->
          if i > 0 then Format.fprintf fmt " + ";
          Format.fprintf fmt "%a·X^%d" F.pp c i)
        t
end
