(** Univariate polynomials over an arbitrary finite field.

    Coefficients are stored lowest-degree first.  Values are normalised
    (no trailing zero coefficients) by every operation, so [degree] is
    meaningful; the zero polynomial has degree [-1]. *)

module Make (F : Field_intf.S) : sig
  type t

  val zero : t
  val of_coeffs : F.t array -> t
  val coeffs : t -> F.t array

  (** [degree p] — [-1] for the zero polynomial. *)
  val degree : t -> int

  val equal : t -> t -> bool
  val eval : t -> F.t -> F.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val scale : F.t -> t -> t

  (** [divmod a b] returns [(q, r)] with [a = q·b + r] and
      [degree r < degree b].  Raises [Division_by_zero] if [b] is zero. *)
  val divmod : t -> t -> t * t

  (** [random rng ~degree ~const] draws coefficients uniformly for degrees
      1..[degree] and fixes the constant term to [const] — exactly the
      dealer polynomial of Shamir sharing. *)
  val random : Ks_stdx.Prng.t -> degree:int -> const:F.t -> t

  (** [interpolate pts] — the unique polynomial of degree < |pts| through
      the given points.  Raises [Invalid_argument] on duplicate abscissae
      or an empty list. *)
  val interpolate : (F.t * F.t) list -> t

  (** [batch_inv a] — pointwise inverses of an array of nonzero elements
      using Montgomery's trick: one field inversion plus [3(k-1)]
      multiplications.  Raises [Division_by_zero] if any entry is zero. *)
  val batch_inv : F.t array -> F.t array

  (** [evaluator pts] precomputes barycentric weights for the point set
      (one batch inversion, O(k²) multiplications) and returns a closure
      evaluating the interpolating polynomial at any [x] in O(k)
      multiplications with no division — the right shape when one support
      set is evaluated at many points (robust decoding, share
      verification).  Raises like {!interpolate} on bad point sets. *)
  val evaluator : (F.t * F.t) list -> F.t -> F.t

  (** [lagrange_eval pts x] evaluates the interpolating polynomial at [x]
      directly, without building the intermediate polynomial (a one-shot
      {!evaluator}). *)
  val lagrange_eval : (F.t * F.t) list -> F.t -> F.t

  val pp : Format.formatter -> t -> unit
end
