(** Signature of a finite field, as required by secret sharing and
    Reed–Solomon decoding.

    Elements are represented by a canonical [t]; [of_int] injects an
    integer in [0, order) into the field, and [to_int] returns the
    canonical representative in [0, order). *)

module type S = sig
  type t

  (** Number of field elements.  Shamir sharing to [n] holders requires
      [order > n]. *)
  val order : int

  val zero : t
  val one : t

  (** [of_int k] for [0 <= k < order] is the corresponding field element.
      Raises [Invalid_argument] outside that range — silent truncation or
      reduction would let distinct protocol words alias the same share. *)
  val of_int : int -> t

  val to_int : t -> int
  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  (** [inv x] — multiplicative inverse; raises [Division_by_zero] on
      [zero]. *)
  val inv : t -> t

  (** [div a b] = [mul a (inv b)]. *)
  val div : t -> t -> t

  (** [pow x e] for [e >= 0]. *)
  val pow : t -> int -> t

  (** [random rng] — uniform field element. *)
  val random : Ks_stdx.Prng.t -> t

  (** [random_nonzero rng] — uniform over the multiplicative group. *)
  val random_nonzero : Ks_stdx.Prng.t -> t

  val pp : Format.formatter -> t -> unit
end
