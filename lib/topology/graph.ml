type t = { size : int; adj : int array array }

let of_edge_sets size sets =
  let adj =
    Array.init size (fun v ->
        (* [sets.(v)] is replace-populated, so the sorted keys are already
           distinct; [adjacent]'s binary search needs them ascending. *)
        Array.of_list (Ks_stdx.Dtbl.sorted_keys ~cmp:Ks_stdx.Dtbl.int_cmp sets.(v)))
  in
  { size; adj }

let random_regular rng ~n ~degree =
  if n < 3 then invalid_arg "Graph.random_regular: need at least 3 vertices";
  if degree < 2 then invalid_arg "Graph.random_regular: degree < 2";
  let cycles = (degree + 1) / 2 in
  let sets = Array.init n (fun _ -> Hashtbl.create 8) in
  let add u v =
    if u <> v then begin
      Hashtbl.replace sets.(u) v ();
      Hashtbl.replace sets.(v) u ()
    end
  in
  for _ = 1 to cycles do
    let perm = Ks_stdx.Prng.permutation rng n in
    for i = 0 to n - 1 do
      add perm.(i) perm.((i + 1) mod n)
    done
  done;
  of_edge_sets n sets

let complete n =
  if n < 1 then invalid_arg "Graph.complete: empty";
  let adj =
    Array.init n (fun v ->
        Array.init (n - 1) (fun i -> if i < v then i else i + 1))
  in
  { size = n; adj }

let n t = t.size

let neighbours t v = t.adj.(v)

let adjacent t u v =
  let a = t.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 (Array.length a)

let degree t v = Array.length t.adj.(v)

let max_degree t = Array.fold_left (fun acc a -> Stdlib.max acc (Array.length a)) 0 t.adj

let min_degree t =
  Array.fold_left (fun acc a -> Stdlib.min acc (Array.length a)) t.size t.adj

let is_connected t =
  let seen = Array.make t.size false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          incr count;
          Queue.add u queue
        end)
      t.adj.(v)
  done;
  !count = t.size
