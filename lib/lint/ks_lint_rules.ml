(* The determinism & bit-accounting linter (see docs/LINT.md).

   A syntactic AST pass over the repository's .ml files.  Every rule is an
   approximation of a semantic invariant the paper's guarantees rest on:
   the traversal flags identifier *occurrences*, so it has no false
   negatives on the constructs it names, and suppressions exist for the
   (justified) false positives. *)

open Ppxlib

type rule = R1 | R2 | R3 | R4 | R5

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"

let rule_of_name = function
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | _ -> None

type diagnostic = { file : string; line : int; rule : rule; message : string }

let render_diagnostic d =
  Printf.sprintf "%s:%d: [%s] %s" d.file d.line (rule_name d.rule) d.message

(* --- Path scoping ----------------------------------------------------- *)

let normalize path =
  String.concat "/" (String.split_on_char '\\' path)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* [in_dirs path ["lib/core"]] — does [path] live under one of the
   directories?  Substring matching keeps the check working whether the
   linter is invoked from the repository root or from dune's sandbox. *)
let in_dirs path dirs =
  let path = "/" ^ normalize path in
  List.exists (fun d -> contains path ("/" ^ d ^ "/")) dirs

let protocol_dirs =
  [ "lib/core"; "lib/sim"; "lib/topology"; "lib/async"; "lib/attacks" ]

(* async_net.ml and net.ml ARE the channel-and-metering layer R4 protects;
   everything else in the protocol tree must go through them. *)
let r4_exempt_files = [ "lib/sim/net.ml"; "lib/sim/meter.ml"; "lib/async/async_net.ml" ]

let scope_of_rule rule path =
  let p = normalize path in
  match rule with
  | R1 -> not (in_dirs p [ "lib/stdx"; "lib/lint" ])
  | R2 | R3 -> in_dirs p protocol_dirs
  | R4 ->
    in_dirs p [ "lib/core"; "lib/baselines"; "lib/async"; "lib/sim" ]
    && not (List.exists (fun f -> contains ("/" ^ p) ("/" ^ f)) r4_exempt_files)
  | R5 -> in_dirs p [ "lib" ]

(* --- Identifier classification ---------------------------------------- *)

let flatten lid = try Longident.flatten_exn lid with Invalid_argument _ -> []

(* Strip a leading [Stdlib] so [Stdlib.Random.int] and [Random.int] are
   the same offence. *)
let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts

let hashtbl_ordered_ops =
  [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let banned_print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes"; "output_string";
    "output_char"; "output_bytes"; "output_byte"; "output_value";
  ]

(* [check_ident parts] — which rule does this identifier occurrence break,
   independent of file scope?  [as_value] is true when the identifier is
   not the function position of an application (first-class use). *)
let check_ident ~as_value parts =
  match strip_stdlib parts with
  | "Random" :: _ ->
    Some
      ( R1,
        "Random.* bypasses the seeded PRNG; draw from Ks_stdx.Prng streams \
         (Net.proc_rng / Net.rng) instead" )
  | [ "Hashtbl"; op ] when List.mem op hashtbl_ordered_ops ->
    Some
      ( R2,
        Printf.sprintf
          "Hashtbl.%s visits bindings in nondeterministic bucket order; use \
           Ks_stdx.Dtbl.iter_sorted/fold_sorted with a monomorphic comparator"
          op )
  | [ "MoreLabels"; "Hashtbl"; op ] when List.mem op hashtbl_ordered_ops ->
    Some (R2, "MoreLabels.Hashtbl iteration order is nondeterministic; use Ks_stdx.Dtbl")
  | [ "compare" ] ->
    Some
      ( R3,
        "polymorphic compare walks the runtime representation; use a monomorphic \
         comparator (Int.compare, Ks_stdx.Dtbl.*_cmp, or a hand-written one)" )
  | [ ("=" | "<>") as op ] when as_value ->
    Some
      ( R3,
        Printf.sprintf
          "polymorphic (%s) passed as a function; use a monomorphic equality for \
           message/event types" op )
  | [ "Meter"; ("charge_send" | "charge_recv" | "tick_round" as fn) ]
  | [ _; "Meter"; ("charge_send" | "charge_recv" | "tick_round" as fn) ] ->
    Some
      ( R4,
        Printf.sprintf
          "Meter.%s outside the network layer double-counts or hides bits; all \
           sends must be priced by Net.exchange / Async_net.send" fn )
  | [ fn ] when List.mem fn banned_print_fns ->
    Some
      ( R4,
        Printf.sprintf
          "%s writes to a raw channel from protocol code; report through the \
           monitor hub (Ks_monitor) or return data to the harness" fn )
  (* Format.fprintf to a caller-supplied formatter (the [pp] idiom) is
     fine; Printf.fprintf's first argument is an out_channel, so it is not. *)
  | [ "Printf"; ("printf" | "eprintf" | "fprintf" as fn) ]
  | [ "Format"; ("printf" | "eprintf" as fn) ] ->
    Some
      ( R4,
        Printf.sprintf
          "Printf/Format.%s writes to a raw channel from protocol code; report \
           through the monitor hub (Ks_monitor) instead" fn )
  | "Unix" :: fn :: _ ->
    Some
      ( R5,
        Printf.sprintf
          "Unix.%s reaches outside the simulation (wall clock / OS state) and \
           breaks seeded replay" fn )
  | [ "Sys"; "time" ] ->
    Some (R5, "Sys.time is wall-clock-dependent and breaks seeded replay")
  | _ -> None

(* --- AST traversal ----------------------------------------------------- *)

let collect_structure ~path structure =
  let diags = ref [] in
  let flag loc (rule, message) =
    if scope_of_rule rule path then
      diags :=
        { file = path; line = loc.Location.loc_start.Lexing.pos_lnum; rule; message }
        :: !diags
  in
  let visit_ident ~as_value loc lid =
    match check_ident ~as_value (flatten lid) with
    | Some hit -> flag loc hit
    | None -> ()
  in
  let iter =
    object (self)
      inherit Ast_traverse.iter as super

      method! expression e =
        match e.pexp_desc with
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as _op); _ }; _ }, args)
          when List.length args >= 2 ->
          (* Infix equality applied to two operands: allowed (its operands
             are usually scalars; messages compared this way are caught by
             review, not by syntax).  Only first-class uses are flagged. *)
          List.iter (fun (_, a) -> self#expression a) args
        | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc }; _ } as fn), args) ->
          visit_ident ~as_value:false loc txt;
          (* Recurse into arguments and any attributes, but not into the
             function ident we just classified. *)
          List.iter (fun (_, a) -> self#expression a) args;
          self#attributes fn.pexp_attributes;
          self#attributes e.pexp_attributes
        | Pexp_ident { txt; loc } ->
          visit_ident ~as_value:true loc txt;
          super#expression e
        | _ -> super#expression e
    end
  in
  iter#structure structure;
  List.rev !diags

(* --- Suppression comments ---------------------------------------------- *)

(* [(* ks_lint: allow R2 — justification *)] on the diagnostic's line or
   the line directly above it.  The justification (any text after the rule
   id, at least [min_justification] characters of it) is mandatory:
   an unexplained suppression is itself a diagnostic. *)

let min_justification = 8

let allow_re = Str.regexp "ks_lint:[ \t]*allow[ \t]+\\(R[1-5]\\)\\([^*]*\\)"

type suppression = { rules : rule list; justified : bool }

let suppressions_by_line source =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let rec scan start acc =
        match Str.search_forward allow_re line start with
        | exception Not_found -> acc
        | pos ->
          let rule = rule_of_name (Str.matched_group 1 line) in
          let rest = Str.matched_group 2 line in
          let justification =
            String.trim
              (String.concat ""
                 (String.split_on_char '-' (String.concat "" (String.split_on_char ':' rest))))
          in
          let entry =
            Option.map
              (fun r ->
                { rules = [ r ]; justified = String.length justification >= min_justification })
              rule
          in
          scan (pos + 1) (match entry with Some e -> e :: acc | None -> acc)
      in
      match scan 0 [] with
      | [] -> ()
      | entries ->
        let rules = List.concat_map (fun e -> e.rules) entries in
        let justified = List.for_all (fun e -> e.justified) entries in
        Hashtbl.replace tbl lineno { rules; justified })
    (String.split_on_char '\n' source);
  tbl

let apply_suppressions source diags =
  let sup = suppressions_by_line source in
  let lookup line rule =
    let at l =
      match Hashtbl.find_opt sup l with
      | Some s when List.mem rule s.rules -> Some s
      | _ -> None
    in
    match at line with Some s -> Some s | None -> at (line - 1)
  in
  List.filter_map
    (fun d ->
      match lookup d.line d.rule with
      | None -> Some d
      | Some { justified = true; _ } -> None
      | Some { justified = false; _ } ->
        Some
          { d with
            message =
              Printf.sprintf
                "suppression of %s lacks a justification — write (* ks_lint: allow %s \
                 — why this use is sound *)"
                (rule_name d.rule) (rule_name d.rule) })
    diags

(* --- Entry points ------------------------------------------------------ *)

type file_result = Clean | Diagnostics of diagnostic list | Parse_error of string

let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception exn ->
    Parse_error (Printf.sprintf "%s: cannot parse: %s" path (Printexc.to_string exn))
  | structure ->
    (match apply_suppressions source (collect_structure ~path structure) with
     | [] -> Clean
     | diags -> Diagnostics diags)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path = lint_source ~path (read_file path)

(* Recursively collect the .ml files under [path] (a file or directory),
   skipping build artefacts and hidden directories. *)
let rec ml_files path =
  if Sys.is_directory path then begin
    let base = Filename.basename path in
    if base = "_build" || base = "_opam" || (String.length base > 0 && base.[0] = '.')
    then []
    else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun entry -> ml_files (Filename.concat path entry))
  end
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

type summary = { files : int; diagnostics : diagnostic list; errors : string list }

let lint_paths paths =
  let files = List.concat_map ml_files paths in
  let diagnostics = ref [] and errors = ref [] in
  List.iter
    (fun f ->
      match lint_file f with
      | Clean -> ()
      | Diagnostics ds -> diagnostics := ds :: !diagnostics
      | Parse_error e -> errors := e :: !errors
      | exception Sys_error e -> errors := e :: !errors)
    files;
  {
    files = List.length files;
    diagnostics = List.concat (List.rev !diagnostics);
    errors = List.rev !errors;
  }
