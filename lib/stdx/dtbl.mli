(** Deterministic traversal of hash tables.

    [Hashtbl]'s own [iter]/[fold] visit bindings in bucket order, which
    depends on the table's growth history and on the hash of every key
    ever inserted — replaying a run with one extra insertion can reorder
    tallies, message emission and therefore whole traces.  Protocol code
    (see the [R2] lint rule in docs/LINT.md) must traverse tables through
    this module instead: keys are collected, sorted with an explicit
    monomorphic comparator, and visited in that order, so a traversal is a
    pure function of the table's {e contents}.

    All helpers assume replace-semantics — at most one binding per key
    (i.e. the table is populated with [Hashtbl.replace], never shadowed
    with [Hashtbl.add]).  Under duplicate bindings only the most recent
    one is visited, and it is visited once per copy of the key. *)

(** [keys tbl] is the key list of [tbl], in unspecified order.  Useful as
    input to a caller-side sort when the sort key is not the table key. *)
val keys : ('a, 'b) Hashtbl.t -> 'a list

(** [sorted_keys ~cmp tbl] is [keys tbl] sorted by [cmp]. *)
val sorted_keys : cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list

(** [iter_sorted ~cmp f tbl] applies [f key value] in ascending [cmp]
    order of the keys. *)
val iter_sorted : cmp:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit

(** [fold_sorted ~cmp f tbl init] folds [f key value acc] in ascending
    [cmp] order of the keys. *)
val fold_sorted :
  cmp:('a -> 'a -> int) -> ('a -> 'b -> 'c -> 'c) -> ('a, 'b) Hashtbl.t -> 'c -> 'c

(** [bindings_sorted ~cmp tbl] is the binding list in ascending [cmp]
    order of the keys. *)
val bindings_sorted : cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list

(** Monomorphic comparators for the key shapes the protocols use
    (processor ids and small id tuples); [compare]'s polymorphic runtime
    walk is both slower and banned in protocol code (lint rule [R3]). *)

val int_cmp : int -> int -> int
val pair_cmp : int * int -> int * int -> int
val triple_cmp : int * int * int -> int * int * int -> int
val int_list_cmp : int list -> int list -> int
