module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let rec varint t v =
    if v < 0 then invalid_arg "Wire.Writer.varint: negative";
    if v < 0x80 then Buffer.add_char t (Char.chr v)
    else begin
      Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
      varint t (v lsr 7)
    end

  let byte t v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.Writer.byte: out of range";
    Buffer.add_char t (Char.chr v)

  let bool t b = byte t (if b then 1 else 0)

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.Writer.u32: out of range";
    byte t (v land 0xFF);
    byte t ((v lsr 8) land 0xFF);
    byte t ((v lsr 16) land 0xFF);
    byte t ((v lsr 24) land 0xFF)

  let bytes t b =
    varint t (Bytes.length b);
    Buffer.add_bytes t b

  let word_array t a =
    varint t (Array.length a);
    Array.iter (varint t) a

  let contents t = Buffer.to_bytes t
  let length t = Buffer.length t
end

type invalid =
  | Truncated
  | Trailing of int
  | Bad_tag of int
  | Out_of_range of { what : string; value : int; bound : int }

let invalid_to_string = function
  | Truncated -> "truncated input"
  | Trailing k -> Printf.sprintf "%d trailing byte(s) after a complete value" k
  | Bad_tag tag -> Printf.sprintf "unknown tag %d" tag
  | Out_of_range { what; value; bound } ->
    Printf.sprintf "%s = %d out of range [0, %d)" what value bound

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int }

  exception Truncated
  exception Invalid of invalid

  let fail inv = raise (Invalid inv)

  let of_bytes data = { data; pos = 0 }

  let byte t =
    if t.pos >= Bytes.length t.data then raise Truncated;
    let v = Bytes.get_uint8 t.data t.pos in
    t.pos <- t.pos + 1;
    v

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise Truncated;
      let b = byte t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | _ -> raise Truncated

  let u32 t =
    let a = byte t in
    let b = byte t in
    let c = byte t in
    let d = byte t in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

  let bytes t =
    let len = varint t in
    if len < 0 || t.pos + len > Bytes.length t.data then raise Truncated;
    let b = Bytes.sub t.data t.pos len in
    t.pos <- t.pos + len;
    b

  let word_array t =
    let len = varint t in
    if len < 0 || len > Bytes.length t.data - t.pos then raise Truncated;
    Array.init len (fun _ -> varint t)

  let at_end t = t.pos = Bytes.length t.data
  let remaining t = Bytes.length t.data - t.pos

  (* Range-checked variants: the hardened decode paths use these so a
     malformed identifier is a typed [Invalid], not a silently accepted
     value that some later array access turns into an exception. *)

  let varint_below t ~what ~bound =
    let v = varint t in
    if v < 0 || v >= bound then fail (Out_of_range { what; value = v; bound });
    v

  let u32_below t ~what ~bound =
    let v = u32 t in
    if v < 0 || v >= bound then fail (Out_of_range { what; value = v; bound });
    v
end

(* [decode data f] — run reader [f] over all of [data], turning every
   failure mode into a typed [invalid]: truncation, unknown tags and
   out-of-range fields (via [Reader.fail]) and trailing garbage after a
   complete value.  The contract the fuzzers pin: never an exception. *)
let decode data f =
  let r = Reader.of_bytes data in
  match f r with
  | v -> if Reader.at_end r then Ok v else Error (Trailing (Reader.remaining r))
  | exception Reader.Truncated -> Error Truncated
  | exception Reader.Invalid inv -> Error inv

let encoded_bits f =
  let w = Writer.create () in
  f w;
  8 * Writer.length w
