let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let sorted_keys ~cmp tbl = List.sort cmp (keys tbl)

let iter_sorted ~cmp f tbl =
  List.iter (fun k -> f k (Hashtbl.find tbl k)) (sorted_keys ~cmp tbl)

let fold_sorted ~cmp f tbl init =
  List.fold_left (fun acc k -> f k (Hashtbl.find tbl k) acc) init (sorted_keys ~cmp tbl)

let bindings_sorted ~cmp tbl =
  List.map (fun k -> (k, Hashtbl.find tbl k)) (sorted_keys ~cmp tbl)

let int_cmp = Int.compare

let pair_cmp (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let triple_cmp (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else begin
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3
  end

let rec int_list_cmp a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a, y :: b ->
    let c = Int.compare x y in
    if c <> 0 then c else int_list_cmp a b
