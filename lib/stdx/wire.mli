(** Minimal binary wire format: length-delimited, varint-based encoding
    used to ground the simulator's bit accounting in real encoded sizes
    (a message is charged 8 × its encoded byte length plus the physical
    header, instead of a hand-estimated field sum).

    The encoding is deliberately boring: LEB128 varints for integers,
    length-prefixed byte strings, fixed tags chosen by the caller.  No
    framing beyond what the caller writes — the simulator's channels are
    reliable and message-oriented. *)

module Writer : sig
  type t

  val create : unit -> t

  (** [varint w v] — LEB128, non-negative values only (raises on
      negative). *)
  val varint : t -> int -> unit

  (** [byte w v] — one byte, [0, 255]. *)
  val byte : t -> int -> unit

  (** [bool w b] — one byte. *)
  val bool : t -> bool -> unit

  (** [u32 w v] — fixed four bytes, little endian, [0, 2^32). *)
  val u32 : t -> int -> unit

  (** [bytes w b] — length-prefixed blob. *)
  val bytes : t -> Bytes.t -> unit

  (** [word_array w a] — length-prefixed sequence of varints. *)
  val word_array : t -> int array -> unit

  val contents : t -> Bytes.t
  val length : t -> int
end

(** Typed decode failure.  Every decode path in the stack reports
    malformed input as one of these — never an uncaught exception, never
    silent acceptance of a mangled value. *)
type invalid =
  | Truncated  (** input ended mid-value (or a varint overflowed) *)
  | Trailing of int  (** [k] unconsumed bytes after a complete value *)
  | Bad_tag of int  (** unknown message tag *)
  | Out_of_range of { what : string; value : int; bound : int }
      (** a field failed its range check: [value] not in [\[0, bound)] *)

val invalid_to_string : invalid -> string

module Reader : sig
  type t

  exception Truncated
  (** Raised when reading past the end or on malformed input. *)

  exception Invalid of invalid
  (** Raised by {!fail} and the range-checked readers; {!decode} turns
      both exceptions into a typed [Error]. *)

  (** [fail inv] — abort the current decode with a typed reason. *)
  val fail : invalid -> 'a

  val of_bytes : Bytes.t -> t
  val varint : t -> int
  val byte : t -> int
  val bool : t -> bool
  val u32 : t -> int
  val bytes : t -> Bytes.t
  val word_array : t -> int array

  (** [varint_below r ~what ~bound] — a varint in [\[0, bound)], else
      [Invalid (Out_of_range _)]. *)
  val varint_below : t -> what:string -> bound:int -> int

  (** [u32_below r ~what ~bound] — a u32 in [\[0, bound)], else
      [Invalid (Out_of_range _)]. *)
  val u32_below : t -> what:string -> bound:int -> int

  (** [at_end r] — all input consumed. *)
  val at_end : t -> bool

  (** [remaining r] — unconsumed byte count. *)
  val remaining : t -> int
end

(** [decode data f] — run [f] over [data], requiring full consumption.
    Truncation, unknown tags, range violations and trailing bytes all
    come back as [Error]; the function never raises on malformed
    input. *)
val decode : Bytes.t -> (Reader.t -> 'a) -> ('a, invalid) result

(** [encoded_bits f] — 8 × the number of bytes [f] writes. *)
val encoded_bits : (Writer.t -> unit) -> int
