let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check_nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let min xs =
  check_nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  let b = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let a = my -. (b *. mx) in
  let r2 =
    if !syy = 0.0 then 1.0
    else begin
      let ss_res = ref 0.0 in
      for i = 0 to n - 1 do
        let e = ys.(i) -. (a +. (b *. xs.(i))) in
        ss_res := !ss_res +. (e *. e)
      done;
      1.0 -. (!ss_res /. !syy)
    end
  in
  (a, b, r2)

let loglog_slope ns ys =
  let pts =
    List.filter (fun (n, y) -> n > 0.0 && y > 0.0)
      (Array.to_list (Array.map2 (fun n y -> (n, y)) ns ys))
  in
  let lx = Array.of_list (List.map (fun (n, _) -> log n) pts) in
  let ly = Array.of_list (List.map (fun (_, y) -> log y) pts) in
  let _, b, r2 = linear_fit lx ly in
  (b, r2)

let wilson_interval ~successes ~trials =
  if trials <= 0 then (0.0, 1.0)
  else begin
    let z = 1.96 in
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = p +. (z2 /. (2.0 *. n)) in
    let spread = z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) in
    (Float.max 0.0 ((center -. spread) /. denom),
     Float.min 1.0 ((center +. spread) /. denom))
  end

let histogram xs ~bins =
  check_nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = min xs and hi = max xs in
  let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let blo = lo +. (float_of_int i *. width) in
      (blo, blo +. width, c))
    counts
