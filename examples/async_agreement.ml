(* Asynchronous agreement — the paper's §6 open problem, hands on.

     dune exec examples/async_agreement.exe

   No rounds, no clocks: an adversary schedules every single message
   delivery and may starve chosen processors for as long as it likes
   (delivery only has to be eventual).  A third of the processors
   equivocate.  The MMR'14 binary agreement keeps everyone safe because
   its only requirement from the environment is a common coin — which is
   exactly the product of the King-Saia tournament; wiring that coin
   through an asynchronous tree remains the open part. *)

module Aba = Ks_async.Async_ba
module Anet = Ks_async.Async_net

let n = 64
let f = (n - 2) / 3

let show label scheduler =
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let o =
    Aba.run ~seed:2026L ~n ~f ~inputs ~byz:Aba.Equivocate ~scheduler
      ~max_events:4_000_000 ()
  in
  Printf.printf "%-22s agreement=%b valid=%b rounds=%d deliveries=%d bits/proc=%d\n"
    label o.Aba.agreement o.Aba.validity o.Aba.max_rounds o.Aba.events
    o.Aba.max_sent_bits

let () =
  Printf.printf
    "async binary agreement: %d processors, %d equivocating, split inputs\n\n" n f;
  show "fair scheduler" Anet.Fair;
  show "starve 8 processors" (Anet.Delay_targets (List.init 8 (fun i -> i)));
  Printf.printf
    "\nThe hostile scheduler can only slow the starved processors down —\n\
     more rounds and deliveries — never split the decision or forge one.\n"
