examples/sensor_vote.mli:
