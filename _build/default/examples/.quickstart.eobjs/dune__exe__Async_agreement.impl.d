examples/async_agreement.ml: Array Ks_async Ks_stdx List Printf
