examples/quickstart.mli:
