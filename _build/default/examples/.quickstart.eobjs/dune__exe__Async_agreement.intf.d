examples/async_agreement.mli:
