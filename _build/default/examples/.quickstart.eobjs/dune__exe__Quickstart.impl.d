examples/quickstart.ml: Format Int64 Ks_core Ks_stdx Ks_topology Ks_workload Printf
