examples/sensor_vote.ml: Array Int64 Ks_core Ks_stdx Ks_workload List Printf
