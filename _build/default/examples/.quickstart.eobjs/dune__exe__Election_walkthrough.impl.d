examples/election_walkthrough.ml: Array Ks_core Ks_sim Ks_stdx Ks_topology Ks_workload List Printf Stdlib String
