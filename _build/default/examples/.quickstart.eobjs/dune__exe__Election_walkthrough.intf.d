examples/election_walkthrough.mli:
