examples/replicated_log.ml: Array Int64 Ks_baselines Ks_core Ks_sim Ks_stdx Ks_topology Ks_workload List Printf
