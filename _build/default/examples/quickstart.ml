(* Quickstart: run everywhere Byzantine agreement among 64 processors,
   a quarter of them Byzantine, and inspect the result.

     dune exec examples/quickstart.exe

   This is the smallest end-to-end use of the public API: pick a
   parameter profile, choose an adversary scenario, run Algorithm 4, and
   read out agreement, validity and communication cost. *)

module Params = Ks_core.Params
module Everywhere = Ks_core.Everywhere
module Attacks = Ks_workload.Attacks
module Inputs = Ks_workload.Inputs
module Prng = Ks_stdx.Prng

let () =
  let n = 64 in
  let seed = 2026L in

  (* 1. A parameter profile: the practical profile keeps the paper's
     structure with laptop-scale constants. *)
  let params = Params.practical n in
  Format.printf "parameters: %a@." Params.pp params;

  (* 2. Inputs and an adversary.  The model lets the adversary choose the
     inputs, so the alternating split is the canonical hard case. *)
  let inputs = Inputs.generate (Prng.create seed) ~n Inputs.Split in
  let scenario = Attacks.byzantine_static in
  let budget = Attacks.budget_of scenario ~params in
  Printf.printf "adversary: %s, corrupting up to %d of %d processors\n"
    scenario.Attacks.label budget n;

  (* 3. Run the full protocol: the almost-everywhere tournament followed
     by the everywhere amplification. *)
  let tree =
    Ks_topology.Tree.build (Prng.create (Int64.add seed 1L)) (Params.tree_config params)
  in
  let result =
    Everywhere.run ~params ~seed ~inputs ~behavior:scenario.Attacks.behavior
      ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
      ~a2e_strategy:(fun ~carried ~coin ->
        Attacks.a2e_strategy scenario ~params ~coin ~carried)
      ~budget ()
  in

  (* 4. Inspect the outcome. *)
  Printf.printf "\n--- outcome ---\n";
  Printf.printf "agreement everywhere : %b\n" result.Everywhere.success;
  Printf.printf "safety (nobody wrong): %b\n" result.Everywhere.safe;
  (match result.Everywhere.agreed_value with
   | Some v -> Printf.printf "agreed value         : %d\n" v
   | None -> Printf.printf "agreed value         : (none)\n");
  Printf.printf "a.e. agreement       : %.1f%% of good processors\n"
    (100.0 *. result.Everywhere.ae.Ks_core.Ae_ba.agreement);
  Printf.printf "\n--- cost (per good processor, max) ---\n";
  Printf.printf "tournament phase     : %d bits over %d rounds\n"
    result.Everywhere.max_sent_bits_ae result.Everywhere.ae_rounds;
  Printf.printf "amplification phase  : %d bits over %d rounds\n"
    result.Everywhere.max_sent_bits_a2e result.Everywhere.a2e_rounds;
  Printf.printf "total                : %d bits\n" result.Everywhere.max_sent_bits_total;
  if not (result.Everywhere.success && result.Everywhere.safe) then exit 1
