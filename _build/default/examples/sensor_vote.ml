(* Sensor fusion under Byzantine faults.

     dune exec examples/sensor_vote.exe

   The paper cites sensor networks as a driving domain.  Here a field of
   sensors must agree on a binary event ("intrusion detected?") although
   (a) honest sensors disagree — their readings are noisy — and (b) a
   coalition of captured sensors reports whatever an adversary wants and
   floods the network.  We sweep the true-signal strength and show the
   agreement outcome: below the noise floor the network settles on a
   common (possibly arbitrary but unanimous) verdict; once a majority of
   honest sensors see the event, validity forces the right answer.

   The run illustrates exactly what Byzantine agreement does and does not
   promise: when the honest sensors are unanimous (no event, or a blatant
   event), validity forces the right verdict whatever the captured
   sensors do; in between, both verdicts are legal outcomes and the
   adversary may steer the choice — but never split the field.  (At a
   given sparse degree, the unanimity guarantee holds up to a capture
   fraction somewhat below the asymptotic 1/3 — the T4 validity sweep in
   the benchmarks maps that boundary.)

   The agreement core is Algorithm 5 on a sparse k·log n-regular graph
   with a common coin — the component the tournament uses inside every
   node — which is also the right tool here: each sensor talks to a few
   dozen neighbours only. *)

module Aeba = Ks_core.Aeba_coin
module Attacks = Ks_workload.Attacks
module Params = Ks_core.Params
module Prng = Ks_stdx.Prng

let n = 512

let run_field ~signal ~seed =
  let params = Params.practical n in
  let rng = Prng.create seed in
  (* Honest sensors fire with probability [signal]; the captured ones are
     driven by the vote-flipping adversary at run time. *)
  let inputs = Array.init n (fun _ -> Prng.bernoulli rng signal) in
  Aeba.run_standalone ~seed ~n ~degree:params.Params.aeba_degree
    ~rounds:14 ~epsilon:params.Params.epsilon ~budget:(n * 3 / 20) ~inputs
    ~strategy:(Attacks.vote_flipper Attacks.byzantine_static ~params)
    ~coin:Aeba.Ideal ()

let () =
  Printf.printf
    "sensor field: %d sensors, degree %d, 15%% captured, vote-flipping adversary\n\n"
    n (Params.practical n).Params.aeba_degree;
  Printf.printf "%-14s %-12s %-12s %-10s %-12s %s\n" "signal" "agreement" "verdict"
    "valid" "bits/sensor" "guarantee";
  List.iter
    (fun (signal, guarantee) ->
      let o = run_field ~signal ~seed:(Int64.of_float ((signal +. 0.01) *. 1000.0)) in
      let verdict =
        match o.Aeba.decided with
        | Some true -> "INTRUSION"
        | Some false -> "quiet"
        | None -> "split"
      in
      Printf.printf "%-14s %-12s %-12s %-10b %-12d %s\n"
        (Printf.sprintf "%.0f%% fired" (100.0 *. signal))
        (Printf.sprintf "%.1f%%" (100.0 *. o.Aeba.agreement))
        verdict o.Aeba.valid o.Aeba.max_sent_bits guarantee)
    [
      (0.0, "quiet forced (unanimous)");
      (0.25, "either verdict legal");
      (0.50, "either verdict legal");
      (0.75, "either verdict legal");
      (1.0, "INTRUSION forced (unanimous)");
    ];
  Printf.printf
    "\nNote: each sensor exchanged ~degree bits per round with fixed\n\
     neighbours only — no all-to-all flooding — the captured quarter can\n\
     steer a genuinely ambiguous field but can never split it, and can\n\
     never override a unanimous one.\n"
