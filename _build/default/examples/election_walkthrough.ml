(* A guided walk through one run of the tournament (Algorithm 2),
   rendering the structures of the paper's Figure 1 from a live run.

     dune exec examples/election_walkthrough.exe

   Left side of Figure 1: the network tree with node memberships and the
   candidates competing at each node.  Right side: the communication
   phases of one election.  We build the same picture from an actual
   n = 32 execution, then print each election's bins, winners, and how
   the share instances fan out level by level. *)

module Tree = Ks_topology.Tree
module Params = Ks_core.Params
module Comm = Ks_core.Comm
module Ae_ba = Ks_core.Ae_ba
module Attacks = Ks_workload.Attacks
module Prng = Ks_stdx.Prng

let n = 32

let show_array a =
  "{" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "}"

let truncate_list max l =
  let l = Array.to_list l in
  if List.length l <= max then show_array (Array.of_list l)
  else
    "{"
    ^ String.concat "," (List.map string_of_int (List.filteri (fun i _ -> i < max) l))
    ^ ",...}"

let () =
  let params = Params.practical n in
  let tree = Tree.build (Prng.create 7L) (Params.tree_config params) in
  Printf.printf "== The network tree (Figure 1, left) ==\n";
  Printf.printf "n=%d processors, arity q=%d, %d levels\n\n" n params.Params.q
    (Tree.levels tree);
  for level = Tree.levels tree downto 1 do
    let count = Tree.node_count tree ~level in
    Printf.printf "level %d: %d node(s) of %d processors each\n" level count
      (Tree.node_size tree ~level);
    let show = Stdlib.min count 3 in
    for node = 0 to show - 1 do
      Printf.printf "  node %d: members %s\n" node
        (truncate_list 8 (Tree.members tree ~level ~node))
    done;
    if count > show then Printf.printf "  ... %d more\n" (count - show)
  done;

  Printf.printf "\n== Share instances (Definition 1, iterated i-shares) ==\n";
  let comm =
    Comm.create ~params ~tree ~seed:9L ~behavior:Comm.Follow
      ~strategy:Ks_sim.Adversary.none ()
  in
  let s = Comm.structure comm in
  for level = 1 to Tree.levels tree do
    Printf.printf
      "level %d: every candidate array exists as %d %d-share instance(s)\n" level
      (Comm.Structure.count s ~level) level
  done;
  Printf.printf
    "(each reshare splits every share among its holder's uplinks and erases\n\
     the original — taking over a whole lower node later reveals nothing)\n";

  Printf.printf "\n== One full tournament run (Figure 1, right) ==\n";
  let scenario = Attacks.byzantine_static in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let r =
    Ae_ba.run ~params ~seed:11L ~inputs ~behavior:scenario.Attacks.behavior
      ~strategy:(Attacks.tree_strategy scenario ~params ~tree:(Tree.build (Prng.create 7L) (Params.tree_config params)))
      ~budget:(Attacks.budget_of scenario ~params) ()
  in
  Printf.printf
    "phases per election: expose bin choices (sendDown + sendOpen), agree\n\
     on bin choices (coin exposure + sparse voting, one candidate's block\n\
     per round), then send the winners' shares up.\n\n";
  List.iter
    (fun (e : Ae_ba.election_stats) ->
      Printf.printf
        "election at level %d node %d: candidates %s -> winners %s\n\
        \  good winners %.0f%%, members agreeing on the result %.0f%%\n"
        e.level e.node
        (truncate_list 8 e.candidates)
        (show_array e.winners)
        (100.0 *. e.good_winner_fraction)
        (100.0 *. e.member_agreement))
    r.Ae_ba.elections;
  Printf.printf
    "\nroot: %d surviving arrays feed coins to the final agreement among all\n\
     %d processors; outcome: %.1f%% of good processors vote %b (valid=%b)\n"
    (Array.length r.Ae_ba.root_candidates)
    n
    (100.0 *. r.Ae_ba.agreement)
    r.Ae_ba.majority r.Ae_ba.valid
