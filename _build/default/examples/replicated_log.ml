(* Replicated log: ordering client commands across replicas with
   Byzantine agreement.

     dune exec examples/replicated_log.exe

   The paper's introduction quotes OceanStore/Pond: "Byzantine agreement
   requires a number of messages quadratic in the number of participants,
   so it is infeasible for use in synchronizing a large number of
   replicas".  This example plays that workload: a cluster of replicas
   must agree, slot by slot, whether to commit or skip each proposed
   command while a quarter of the replicas misbehave.  Each slot is one
   binary agreement; replicas start from their local view (did they see
   the command in time?), and the committed log must be identical at
   every good replica and never contain a command no good replica saw.

   To keep the demo brisk we order the slots with Rabin's all-to-all
   protocol (the O(n²)-messages baseline Pond was worried about) and one
   slot with the full King–Saia stack, printing the per-replica bit cost
   of each so the contrast the paper targets is visible on real output. *)

module Prng = Ks_stdx.Prng
module Attacks = Ks_workload.Attacks
module Params = Ks_core.Params

let n = 64
let slots = 8

type slot_result = { decided_commit : bool; max_bits : int; rounds : int }

(* One agreement slot via the quadratic baseline. *)
let rabin_slot ~seed ~inputs =
  let o =
    Ks_baselines.Rabin.run ~seed ~n ~budget:(n / 4) ~rounds:14 ~epsilon:0.08 ~inputs
      ~strategy:Ks_sim.Adversary.crash_random
  in
  let decided =
    match o.Ks_baselines.Outcome.decided.(0) with Some v -> v | None -> false
  in
  {
    decided_commit = decided;
    max_bits = o.Ks_baselines.Outcome.max_sent_bits;
    rounds = o.Ks_baselines.Outcome.rounds;
  }

(* One agreement slot via the paper's protocol. *)
let king_saia_slot ~seed ~inputs =
  let params = Params.practical n in
  let scenario = Attacks.crash in
  let budget = Attacks.budget_of scenario ~params in
  let tree =
    Ks_topology.Tree.build (Prng.create seed) (Params.tree_config params)
  in
  let r =
    Ks_core.Everywhere.run ~params ~seed ~inputs
      ~behavior:scenario.Attacks.behavior
      ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
      ~a2e_strategy:(fun ~carried ~coin ->
        Attacks.a2e_strategy scenario ~params ~coin ~carried)
      ~budget ()
  in
  {
    decided_commit =
      (match r.Ks_core.Everywhere.agreed_value with Some 1 -> true | _ -> false);
    max_bits = r.Ks_core.Everywhere.max_sent_bits_total;
    rounds = r.Ks_core.Everywhere.ae_rounds + r.Ks_core.Everywhere.a2e_rounds;
  }

let () =
  let rng = Prng.create 404L in
  Printf.printf "replicated log: %d replicas, %d slots, 25%% faulty\n\n" n slots;
  (* Proposed commands; replicas see each with 80% probability (slow
     gossip), so their initial votes differ — agreement must still land
     on one answer per slot. *)
  let commands =
    Array.init slots (fun i -> Printf.sprintf "SET key%d=%d" i (100 + i))
  in
  let log = ref [] in
  Array.iteri
    (fun slot cmd ->
      let inputs = Array.init n (fun _ -> Prng.bernoulli rng 0.8) in
      let r = rabin_slot ~seed:(Int64.of_int (900 + slot)) ~inputs in
      if r.decided_commit then log := cmd :: !log;
      Printf.printf "slot %d: %-16s -> %s  (%5d bits/replica, %d rounds, Rabin)\n"
        slot cmd
        (if r.decided_commit then "COMMIT" else "SKIP  ")
        r.max_bits r.rounds)
    commands;
  Printf.printf "\ncommitted log (every good replica agrees on this):\n";
  List.iteri (fun i cmd -> Printf.printf "  %d. %s\n" i cmd) (List.rev !log);

  (* The same slot decision through the paper's protocol, for cost
     contrast at this (small) n — the asymptotic win needs large n, which
     is exactly the T1/T10 tables' subject. *)
  Printf.printf "\none slot through King-Saia for comparison:\n";
  let inputs = Array.init n (fun _ -> Prng.bernoulli rng 0.8) in
  let ks = king_saia_slot ~seed:4242L ~inputs in
  Printf.printf "  decision %s, %d bits/replica, %d rounds\n"
    (if ks.decided_commit then "COMMIT" else "SKIP")
    ks.max_bits ks.rounds;
  Printf.printf
    "  (at n=%d the tournament constants dominate; see bench tables T1/T10\n\
    \   for the scaling story the paper is about)\n"
    n
