(** n-of-n additive secret sharing: the secret is the field sum of all
    shares, all of which are required to reconstruct.

    Not used on the critical path of the protocol (which needs thresholds
    below n), but kept as (a) the simplest instance of a hiding scheme for
    the Lemma 1 property tests and (b) an ablation point for the T7
    experiment — it shows why a threshold scheme is necessary once shares
    start getting lost to corrupt holders. *)

module Make (F : Ks_field.Field_intf.S) : sig
  (** [deal rng ~holders secret] — [holders >= 1] shares summing to the
      secret. *)
  val deal : Ks_stdx.Prng.t -> holders:int -> F.t -> F.t array

  (** [reconstruct shares] — the field sum. *)
  val reconstruct : F.t array -> F.t
end
