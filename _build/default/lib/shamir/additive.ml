module Make (F : Ks_field.Field_intf.S) = struct
  let deal rng ~holders secret =
    if holders < 1 then invalid_arg "Additive.deal: need at least one holder";
    let shares = Array.init holders (fun _ -> F.random rng) in
    let sum_rest = ref F.zero in
    for i = 1 to holders - 1 do
      sum_rest := F.add !sum_rest shares.(i)
    done;
    shares.(0) <- F.sub secret !sum_rest;
    shares

  let reconstruct shares = Array.fold_left F.add F.zero shares
end
