lib/shamir/shamir.mli: Ks_field Ks_stdx
