lib/shamir/additive.mli: Ks_field Ks_stdx
