lib/shamir/additive.ml: Array Ks_field
