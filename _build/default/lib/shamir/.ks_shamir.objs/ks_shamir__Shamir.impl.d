lib/shamir/shamir.ml: Array Hashtbl Ks_field List Option Stdlib
