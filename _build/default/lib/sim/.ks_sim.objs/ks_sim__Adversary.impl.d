lib/sim/adversary.ml: Array Ks_stdx List Stdlib Types
