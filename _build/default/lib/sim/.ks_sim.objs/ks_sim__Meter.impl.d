lib/sim/meter.ml: Array List Stdlib
