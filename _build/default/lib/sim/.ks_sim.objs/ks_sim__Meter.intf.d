lib/sim/meter.mli: Types
