lib/sim/net.mli: Ks_stdx Meter Types
