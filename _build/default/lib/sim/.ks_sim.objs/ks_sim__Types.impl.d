lib/sim/types.ml: Ks_stdx
