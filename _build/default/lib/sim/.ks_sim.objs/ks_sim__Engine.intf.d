lib/sim/engine.mli: Net Types
