lib/sim/engine.ml: Array Net Types
