lib/sim/adversary.mli: Ks_stdx Types
