lib/sim/net.ml: Array Ks_stdx List Meter Types
