module Prng = Ks_stdx.Prng
open Types

type 'msg t = {
  size : int;
  budget : int;
  corrupt : bool array;
  mutable corrupt_order : proc list; (* newest first *)
  mutable corrupt_count : int;
  meter : Meter.t;
  strategy : 'msg strategy;
  engine_rng : Prng.t;
  adversary_rng : Prng.t;
  proc_seed : Prng.t;
  proc_rngs : Prng.t option array;
  msg_bits : 'msg -> int;
  mutable round : int;
}

let create ~seed ~n ~budget ~msg_bits ~strategy =
  if n <= 0 then invalid_arg "Net.create: n must be positive";
  if budget < 0 || budget >= n then invalid_arg "Net.create: budget out of range";
  let root = Prng.create seed in
  let t =
    {
      size = n;
      budget;
      corrupt = Array.make n false;
      corrupt_order = [];
      corrupt_count = 0;
      meter = Meter.create ~n;
      strategy;
      engine_rng = Prng.split root;
      adversary_rng = Prng.split root;
      proc_seed = Prng.split root;
      proc_rngs = Array.make n None;
      msg_bits;
      round = 0;
    }
  in
  let initial =
    strategy.initial_corruptions t.adversary_rng ~n ~budget
  in
  List.iter
    (fun p ->
      if p >= 0 && p < n && (not t.corrupt.(p)) && t.corrupt_count < budget then begin
        t.corrupt.(p) <- true;
        t.corrupt_order <- p :: t.corrupt_order;
        t.corrupt_count <- t.corrupt_count + 1;
        strategy.on_corrupt p
      end)
    initial;
  t

let n t = t.size
let round t = t.round
let meter t = t.meter
let is_corrupt t p = t.corrupt.(p)
let corrupt_count t = t.corrupt_count
let budget t = t.budget

let good_procs t =
  let rec go p acc = if p < 0 then acc else go (p - 1) (if t.corrupt.(p) then acc else p :: acc) in
  go (t.size - 1) []

let rng t = t.engine_rng

(* Memoized so repeated calls return the same advancing stream — a fresh
   stream per call would replay the same randomness across independent
   secret-sharing polynomials. *)
let proc_rng t p =
  match t.proc_rngs.(p) with
  | Some rng -> rng
  | None ->
    let rng = Prng.split_at t.proc_seed p in
    t.proc_rngs.(p) <- Some rng;
    rng

let apply_corruptions t procs =
  List.iter
    (fun p ->
      if p >= 0 && p < t.size && (not t.corrupt.(p)) && t.corrupt_count < t.budget
      then begin
        t.corrupt.(p) <- true;
        t.corrupt_order <- p :: t.corrupt_order;
        t.corrupt_count <- t.corrupt_count + 1;
        t.strategy.on_corrupt p
      end)
    procs

let corrupt_now t procs = apply_corruptions t procs

let make_view t good_outgoing =
  {
    view_round = t.round;
    view_n = t.size;
    view_is_corrupt = (fun p -> t.corrupt.(p));
    view_corrupt = List.rev t.corrupt_order;
    view_budget_left = t.budget - t.corrupt_count;
    view_visible = List.filter (fun e -> t.corrupt.(e.dst)) good_outgoing;
    view_rng = t.adversary_rng;
  }

let exchange t outgoing =
  (* Only good processors' messages enter the network from the protocol. *)
  let good_outgoing = List.filter (fun e -> not t.corrupt.(e.src)) outgoing in
  (* Adaptive corruption: the adversary inspects what it may see, then
     takes over more processors before delivery. *)
  let requested = t.strategy.adapt (make_view t good_outgoing) in
  apply_corruptions t requested;
  (* Messages from freshly corrupted processors are reclaimed. *)
  let good_outgoing = List.filter (fun e -> not t.corrupt.(e.src)) good_outgoing in
  (* Rushing: the adversary reads traffic addressed to its processors and
     only now decides what the corrupted processors send. *)
  let adversarial =
    List.filter (fun e -> t.corrupt.(e.src) && e.dst >= 0 && e.dst < t.size)
      (t.strategy.act (make_view t good_outgoing))
  in
  (* Accounting: good senders pay for their bits. *)
  List.iter (fun e -> Meter.charge_send t.meter e.src ~bits:(t.msg_bits e.payload))
    good_outgoing;
  (* Delivery. *)
  let inboxes = Array.make t.size [] in
  let deliver e =
    inboxes.(e.dst) <- e :: inboxes.(e.dst);
    if not t.corrupt.(e.dst) then
      Meter.charge_recv t.meter e.dst ~bits:(t.msg_bits e.payload)
  in
  List.iter deliver good_outgoing;
  List.iter deliver adversarial;
  (* Reverse so good messages appear first, in send order. *)
  let inboxes = Array.map List.rev inboxes in
  Meter.tick_round t.meter;
  t.round <- t.round + 1;
  inboxes
