type t = {
  size : int;
  sent_bits : int array;
  recv_bits : int array;
  sent_msgs : int array;
  mutable rounds : int;
}

let create ~n =
  {
    size = n;
    sent_bits = Array.make n 0;
    recv_bits = Array.make n 0;
    sent_msgs = Array.make n 0;
    rounds = 0;
  }

let n t = t.size

let charge_send t p ~bits =
  t.sent_bits.(p) <- t.sent_bits.(p) + bits;
  t.sent_msgs.(p) <- t.sent_msgs.(p) + 1

let charge_recv t p ~bits = t.recv_bits.(p) <- t.recv_bits.(p) + bits

let tick_round t = t.rounds <- t.rounds + 1

let rounds t = t.rounds
let sent_bits t p = t.sent_bits.(p)
let recv_bits t p = t.recv_bits.(p)
let sent_msgs t p = t.sent_msgs.(p)

let max_sent_bits t ~over =
  List.fold_left (fun acc p -> Stdlib.max acc t.sent_bits.(p)) 0 over

let total_sent_bits t = Array.fold_left ( + ) 0 t.sent_bits
let total_sent_msgs t = Array.fold_left ( + ) 0 t.sent_msgs

let merge_into dst src =
  if dst.size <> src.size then invalid_arg "Meter.merge_into: size mismatch";
  for p = 0 to dst.size - 1 do
    dst.sent_bits.(p) <- dst.sent_bits.(p) + src.sent_bits.(p);
    dst.recv_bits.(p) <- dst.recv_bits.(p) + src.recv_bits.(p);
    dst.sent_msgs.(p) <- dst.sent_msgs.(p) + src.sent_msgs.(p)
  done;
  dst.rounds <- dst.rounds + src.rounds
