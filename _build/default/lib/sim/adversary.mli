(** Construction kit for adversary strategies, plus protocol-agnostic
    canned adversaries.

    Strategies that must read corrupted processors' private state or craft
    protocol-specific lies are built with [make] at the protocol layer
    (see [Ks_workload.Attacks]); closures give them exactly the access the
    model grants. *)

(** [make ()] — all components default to inert: no initial corruptions,
    no adaptation, no messages.  Override the pieces you need. *)
val make :
  ?name:string ->
  ?initial_corruptions:(Ks_stdx.Prng.t -> n:int -> budget:int -> Types.proc list) ->
  ?adapt:('msg Types.view -> Types.proc list) ->
  ?act:('msg Types.view -> 'msg Types.envelope list) ->
  ?on_corrupt:(Types.proc -> unit) ->
  unit ->
  'msg Types.strategy

(** No corruptions at all — the honest-execution baseline. *)
val none : 'msg Types.strategy

(** Corrupts a uniformly random set of [budget] processors before round 0
    and keeps them silent (crash faults). *)
val crash_random : 'msg Types.strategy

(** Spends the budget gradually: corrupts [per_round] random processors
    each round (crash behaviour).  Exercises adaptivity even when the
    protocol layer supplies no smarter target selection. *)
val creeping_crash : per_round:int -> 'msg Types.strategy

(** [uniform_random_set rng ~n ~budget] — helper for [initial_corruptions]
    components: a uniform random subset of size [budget]. *)
val uniform_random_set : Ks_stdx.Prng.t -> n:int -> budget:int -> Types.proc list

(** [with_name s strategy] — relabel (tables key results by this name). *)
val with_name : string -> 'msg Types.strategy -> 'msg Types.strategy
