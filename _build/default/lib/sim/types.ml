(** Shared vocabulary of the simulator.

    The model is the paper's (§1.1): [n] processors, synchronous rounds,
    private channels (the adversary reads only traffic touching a
    corrupted endpoint), a rushing adaptive adversary that sees the
    messages addressed to its processors before choosing its own, corrupts
    processors at any time up to a budget, and may flood (send any number
    of messages from corrupted processors). *)

type proc = int
(** Processors are numbered [0 .. n-1]. *)

type 'msg envelope = { src : proc; dst : proc; payload : 'msg }
(** One point-to-point message.  The recipient always learns [src]
    faithfully (the model says sender identity is known on direct
    channels), so the engine never lets the adversary spoof a good
    processor's identity. *)

type 'msg view = {
  view_round : int;
  view_n : int;
  view_is_corrupt : proc -> bool;
  view_corrupt : proc list;  (** corrupted processors, oldest first *)
  view_budget_left : int;
  view_visible : 'msg envelope list;
      (** this round's messages from good processors whose destination is
          corrupted — all the adversary is entitled to read under private
          channels (rushing: it reads them before acting) *)
  view_rng : Ks_stdx.Prng.t;
}
(** What an adversary strategy sees when deciding corruptions and
    messages.  Strategies needing the *private state* of processors they
    corrupt capture the protocol's state structures in their closures;
    the engine guarantees such access is legitimate only after
    corruption via the [on_corrupt] notification. *)

type 'msg strategy = {
  name : string;
  initial_corruptions : Ks_stdx.Prng.t -> n:int -> budget:int -> proc list;
      (** corruptions applied before round 0 *)
  adapt : 'msg view -> proc list;
      (** additional corruptions requested this round, applied before
          delivery; silently truncated to the remaining budget *)
  act : 'msg view -> 'msg envelope list;
      (** the corrupted processors' outgoing messages for this round,
          chosen after [adapt] and after reading [view_visible]
          (rushing); envelopes whose [src] is not corrupted are dropped *)
  on_corrupt : proc -> unit;
      (** notification that a processor just fell — protocol-specific
          strategies use it to snapshot the victim's secrets *)
}
