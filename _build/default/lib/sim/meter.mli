(** Per-processor communication accounting.

    The paper's headline metric is bits {e sent} per (good) processor;
    we also track received bits, message counts and rounds so the
    experiment tables can report latency and totals. *)

type t

val create : n:int -> t
val n : t -> int

val charge_send : t -> Types.proc -> bits:int -> unit
val charge_recv : t -> Types.proc -> bits:int -> unit

(** [tick_round m] advances the round counter by one. *)
val tick_round : t -> unit

val rounds : t -> int
val sent_bits : t -> Types.proc -> int
val recv_bits : t -> Types.proc -> int
val sent_msgs : t -> Types.proc -> int

(** [max_sent_bits m ~over] — the maximum bits sent by any processor in
    [over] (e.g. the good processors). *)
val max_sent_bits : t -> over:Types.proc list -> int

val total_sent_bits : t -> int
val total_sent_msgs : t -> int

(** [merge_into dst src] adds [src]'s counters (including rounds) into
    [dst]; used to combine the meters of sequentially composed
    sub-protocols. *)
val merge_into : t -> t -> unit
