(** Asynchronous binary Byzantine agreement — an exploration of the
    paper's §6 open problem ("Can we adapt our results to the
    asynchronous communication model?").

    The protocol is the signature-free binary agreement of Mostéfaoui,
    Moumen & Raynal (PODC 2014), which needs exactly what the King–Saia
    machinery produces: a {e common coin}.  Per round:

    + {b BV-broadcast}: broadcast [BVAL(r, est)]; on receiving the same
      [BVAL] from [f + 1] distinct senders, relay it; from [2f + 1],
      admit the value into [bin_values(r)] — a value admitted anywhere
      was proposed by a good processor and is eventually admitted
      everywhere;
    + once [bin_values] is non-empty, broadcast [AUX(r, w)] for some
      admitted [w]; collect [AUX] messages whose values are admitted
      from [n − f] distinct senders, giving a candidate set [V];
    + draw the round's common coin [c]: if [V = {v}] then adopt [v] and
      {e decide} it when [v = c]; if [V = {0, 1}], adopt [c].

    Safety holds for [f < n/3] under any scheduler; termination is
    expected-constant rounds thanks to the coin.  The coin itself is the
    oracle here — in a full adaptation it would come from the tournament's
    elected arrays, which is precisely the part the paper leaves open
    (the tree protocol leans on synchrony for its round-by-round coin
    openings).

    The per-processor cost is Θ(n) bits per round — this async variant
    inherits the quadratic total the paper's synchronous protocol
    escapes, which is an honest statement of how open the open problem
    is. *)

type msg = Bval of { r : int; v : bool } | Aux of { r : int; v : bool }

val msg_bits : msg -> int

type outcome = {
  decided : bool option array;  (** per processor *)
  agreement : bool;  (** all good processors decided one value *)
  validity : bool;  (** the value was some good input *)
  events : int;  (** delivery events consumed *)
  max_rounds : int;  (** highest round any good processor reached *)
  max_sent_bits : int;
}

(** What corrupted processors do: nothing, or equivocate ([BVAL] for
    both values and random [AUX]es each round they hear about). *)
type byz = Silent | Equivocate

(** [run ~seed ~n ~f ~inputs ~byz ~scheduler ~max_events ()] — [f]
    processors (chosen at random) are corrupted; requires [f < n/3] for
    the guarantees (callers may violate it to watch safety at the
    boundary). *)
val run :
  seed:int64 ->
  n:int ->
  f:int ->
  inputs:bool array ->
  byz:byz ->
  scheduler:msg Async_net.scheduler ->
  max_events:int ->
  unit ->
  outcome
