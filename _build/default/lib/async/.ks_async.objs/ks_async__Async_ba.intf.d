lib/async/async_ba.mli: Async_net
