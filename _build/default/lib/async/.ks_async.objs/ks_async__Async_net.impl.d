lib/async/async_net.ml: Array Ks_sim Ks_stdx List
