lib/async/async_ba.ml: Array Async_net Hashtbl Int64 Ks_sim Ks_stdx List Option Stdlib
