lib/async/async_net.mli: Ks_sim
