(** Protocol parameters.

    The paper states every constant asymptotically (k₁ = log³n,
    q = log^δ n, w = 5c·log³n, …).  Taken literally those values only
    separate from n itself for astronomically large n, so — as laid out in
    DESIGN.md §2 — we keep the formulas' {e structure} and expose two
    profiles:

    - {!theoretical}: the paper's own formulas, for inspecting what the
      protocol would look like at scale (buildable, rarely runnable);
    - {!practical}: every polylog factor scaled to Θ(log n) and the tree
      height pinned, so that n ≤ 4096 simulates in seconds while the
      asymptotic {e shape} (√n vs n², the 1/3 threshold, the
      1 − 1/log n agreement fractions) remains measurable. *)

type share_threshold_policy =
  | Half_minus_one  (** t = ⌈holders/2⌉ − 1: the paper's t = n/2 choice —
                        strongest hiding, no error-correcting slack *)
  | Third  (** t = ⌈holders/3⌉ − 1: still hides against < 1/3 corrupt
               holders and leaves enough Reed–Solomon redundancy to
               correct the < 1/3 wrong shares a good node can contain *)

type t = {
  n : int;  (** number of processors *)
  epsilon : float;  (** the adversary controls < (1/3 − ε)·n processors *)
  q : int;  (** tree arity *)
  k1 : int;  (** leaf node size *)
  growth : int;  (** node-size growth factor per level (paper: q) *)
  up_degree : int;  (** uplinks per member *)
  ell_degree : int;  (** ℓ-links per member *)
  winners : int;  (** w — arrays surviving each election *)
  aeba_degree : int;  (** degree of the intra-node agreement graph *)
  aeba_rounds : int;  (** rounds of Algorithm 5 per agreement instance *)
  max_election_rounds : int;
      (** cap on bin-choice BA rounds per election (the paper runs r
          rounds — one per candidate block — which practicality caps) *)
  a2e_requests_per_label : int;  (** a·log n of Algorithm 3 *)
  a2e_labels : int;  (** √n — the request-label space *)
  a2e_iterations : int;  (** repetitions of the Algorithm 3 loop *)
  share_policy : share_threshold_policy;
  header_bits : int;
      (** accounted per-message physical framing overhead, added on top
          of each payload's exact encoded size *)
}

(** [practical n] — the laptop-scale profile (DESIGN.md §5).  Requires
    [n >= 16]. *)
val practical : int -> t

(** [theoretical n] — the paper's own formulas with c = 1, δ = 8.  May
    produce parameters far larger than [n] for small [n]; intended for
    inspection and for the parameter-growth table, not simulation. *)
val theoretical : int -> t

(** [corruption_budget t] — ⌊(1/3 − ε)·n⌋. *)
val corruption_budget : t -> int

(** [share_threshold t ~holders] — the Shamir threshold used when dealing
    to [holders] processors under the profile's policy. *)
val share_threshold : t -> holders:int -> int

(** [tree_config t] — the [Ks_topology.Tree.config] this profile
    induces. *)
val tree_config : t -> Ks_topology.Tree.config

(** [validate t] — raises [Invalid_argument] describing the first
    inconsistency (e.g. [winners] exceeding candidates), or returns [t]. *)
val validate : t -> t

val pp : Format.formatter -> t -> unit
