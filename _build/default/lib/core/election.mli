(** Feige's lightest-bin election (Algorithm 1, Lemma 4), as pure logic.

    An election takes the (already agreed-upon) bin choices of [r]
    candidate arrays and selects the candidates that picked the lightest
    bin, padding with the lowest omitted indices up to the target size.
    Feige's theorem: if the good candidates' choices are uniform and
    independent — even when the adversary picks the remaining bins after
    seeing them (rushing) — the winner set is representative: the good
    fraction drops by at most ≈ 1/log n, w.h.p.

    Agreement on the bin choices themselves is the orchestrator's job
    (it runs one {!Aeba_coin} instance per candidate); this module only
    computes bins and winners. *)

(** [num_bins ~candidates ~winners] — the bin count making the expected
    lightest bin size equal the target winner count (the paper's
    r / (5c·log³n), with the polylog folded into [winners]).  At least 2,
    at most [candidates]. *)
val num_bins : candidates:int -> winners:int -> int

(** [bin_of_word ~num_bins word] — reduce an opened random word to a bin
    choice. *)
val bin_of_word : num_bins:int -> int -> int

(** [lightest_bin ~num_bins bins] — the bin index with fewest selectors
    (ties to the lowest index).  [bins.(j)] is candidate [j]'s choice;
    out-of-range choices (a corrupt dealer's malformed word) count as bin
    [choice mod num_bins]. *)
val lightest_bin : num_bins:int -> int array -> int

(** [winner_indices ~num_bins ~target bins] — candidates that chose the
    lightest bin, in index order, padded with the lowest-index omitted
    candidates to exactly [min target (Array.length bins)] entries. *)
val winner_indices : num_bins:int -> target:int -> int array -> int array
