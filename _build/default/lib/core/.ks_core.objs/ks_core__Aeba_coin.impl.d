lib/core/aeba_coin.ml: Array Hashtbl Ks_sim Ks_stdx Ks_topology List Stdlib
