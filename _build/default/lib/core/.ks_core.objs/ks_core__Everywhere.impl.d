lib/core/everywhere.ml: Ae_ba Ae_to_e Array Bool Comm Ks_sim Ks_stdx List Logs Option Params Stdlib
