lib/core/comm.mli: Bytes Ks_sim Ks_topology Params
