lib/core/ae_ba.mli: Comm Ks_sim Ks_topology Params
