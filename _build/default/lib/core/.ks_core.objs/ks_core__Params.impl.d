lib/core/params.ml: Float Format Ks_stdx Ks_topology Stdlib
