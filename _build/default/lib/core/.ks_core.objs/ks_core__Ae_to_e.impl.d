lib/core/ae_to_e.ml: Array Float Hashtbl Ks_sim Ks_stdx List Option Params Stdlib
