lib/core/everywhere.mli: Ae_ba Ae_to_e Comm Ks_sim Params
