lib/core/aeba_coin.mli: Ks_sim Ks_topology
