lib/core/universe.mli: Ae_ba Comm Ks_sim Params
