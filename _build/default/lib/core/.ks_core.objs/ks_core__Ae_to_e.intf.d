lib/core/ae_to_e.mli: Bytes Ks_sim Params
