lib/core/universe.ml: Ae_ba Array Comm Hashtbl Ks_sim Ks_stdx Option Params
