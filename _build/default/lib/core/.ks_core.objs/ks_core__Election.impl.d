lib/core/election.ml: Array Ks_stdx List Stdlib
