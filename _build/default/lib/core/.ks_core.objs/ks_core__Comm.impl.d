lib/core/comm.ml: Array Bytes Hashtbl Ks_field Ks_shamir Ks_sim Ks_stdx Ks_topology List Option Params
