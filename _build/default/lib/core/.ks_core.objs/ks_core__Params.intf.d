lib/core/params.mli: Format Ks_topology
