lib/core/ae_ba.ml: Aeba_coin Array Bytes Char Comm Election Hashtbl Ks_field Ks_sim Ks_stdx Ks_topology List Logs Option Params Stdlib
