lib/core/election.mli:
