(** Almost-everywhere Byzantine agreement with unreliable global coins —
    Algorithm 5 (§A.2) and Theorems 3/5.

    Participants sit on a sparse (k·log n-regular) graph.  Every round,
    each good participant sends its current vote to its graph neighbours,
    tallies the received votes, and either adopts the majority (when the
    majority fraction clears [(1 − ε₀)(2/3 + ε/2)]) or falls back on the
    round's global coin.  If the coin is common, random and unknown to the
    adversary in enough rounds, all but O(n / log n) good participants
    converge on one good input bit, failing with probability ≈ 2^−r in
    [r] good-coin rounds (Theorem 5).

    The module has two faces:

    - a {e composable core} ({!t}, {!outgoing}, {!step}) driven by an
      external orchestrator — [Ks_core.Ae_ba] runs many instances in
      lockstep inside tree nodes, feeding coins opened from elected
      arrays;
    - a {e standalone runner} ({!run_standalone}) on its own network,
      used by the T4 experiment and the tests, with the coin abstracted
      as a callback (ideal, unreliable or adversarially leaked). *)

type t

(** [create ~members ~graph ~inputs ~epsilon ?eps0 ()] — [members.(pos)]
    is the global processor at position [pos]; [graph] connects
    positions; [inputs.(pos)] is the initial vote.  [eps0] is the slack
    constant ε₀ of the informed-fraction test (default 0.05). *)
val create :
  members:int array ->
  graph:Ks_topology.Graph.t ->
  inputs:bool array ->
  epsilon:float ->
  ?eps0:float ->
  unit ->
  t

val member_count : t -> int

(** [member t ~pos] — global processor id at a position. *)
val member : t -> pos:int -> int

(** [position_of t proc] — position of a processor, if a member. *)
val position_of : t -> int -> int option

(** [vote t ~pos] — the position's current vote. *)
val vote : t -> pos:int -> bool

(** [votes t] — snapshot of all current votes (corrupt positions hold
    their last honest value; the adversary speaks for them on the wire,
    not in this array). *)
val votes : t -> bool array

(** [outgoing t] — the vote messages every position would send this
    round, as [(src_proc, dst_proc, vote)] triples.  The caller wraps
    them in its own message type; the network layer discards entries for
    corrupted sources. *)
val outgoing : t -> (int * int * bool) list

(** [step t ~received ~coin ~good] — apply one round.  [received pos] is
    the list of [(src_proc, vote)] pairs addressed to that position
    (already restricted to this instance by the orchestrator; votes from
    non-neighbours are discarded here — flooding defence).  [coin pos]
    is the position's view of the round's global coin, [None] when the
    coin never reached it (it then keeps the majority value regardless of
    the fraction test).  Only positions with [good] true are updated. *)
val step :
  t ->
  received:(int -> (int * bool) list) ->
  coin:(int -> bool option) ->
  good:(int -> bool) ->
  unit

(** [update_vote ~epsilon ~eps0 ~ones ~total ~coin ~current] — the bare
    vote-update rule of Algorithm 5 (steps 3–7), shared with the
    orchestrated elections of [Ks_core.Ae_ba]: adopt the majority of the
    [total] received votes ([ones] of them for 1) when its fraction
    clears [(1 − eps0)(2/3 + epsilon/2)], otherwise follow [coin] (or
    keep the majority when the coin never arrived).  [current] is
    returned when no votes arrived at all. *)
val update_vote :
  epsilon:float ->
  eps0:float ->
  ones:int ->
  total:int ->
  coin:bool option ->
  current:bool ->
  bool

(** [agreement_fraction t ~good] — largest fraction of good positions
    sharing one vote: the "all but C₂n/log n agree" metric of
    Theorem 5. *)
val agreement_fraction : t -> good:(int -> bool) -> float

(** How the standalone runner models GetGlobalCoin. *)
type coin_source =
  | Ideal  (** every good participant receives the same fresh fair coin *)
  | Unreliable of float
      (** each participant independently misses the common coin with the
          given probability (receives [None]) *)
  | Adversarial_known
      (** the common coin is drawn but published to the adversary one
          round early (strategy closures can read it via
          [last_leaked_coin]); models broken secrecy of the arrays *)

(** Result of a standalone run. *)
type outcome = {
  final_votes : bool array;
  agreement : float;  (** agreement fraction among good participants *)
  decided : bool option;
      (** the common vote if agreement is total among good, else the
          majority good vote *)
  valid : bool;  (** decided value was some good participant's input *)
  rounds_run : int;
  max_sent_bits : int;  (** over good participants *)
}

(** [run_standalone ~seed ~n ~degree ~rounds ~epsilon ~inputs ~strategy
    ~coin ()] builds a fresh network and graph and plays the algorithm.
    [leak] receives each round's coin as soon as it is drawn when [coin =
    Adversarial_known] (the default ignores it). *)
val run_standalone :
  seed:int64 ->
  n:int ->
  degree:int ->
  rounds:int ->
  epsilon:float ->
  budget:int ->
  inputs:bool array ->
  strategy:bool Ks_sim.Types.strategy ->
  coin:coin_source ->
  ?leak:(round:int -> bool -> unit) ->
  unit ->
  outcome
