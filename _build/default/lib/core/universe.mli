(** Universe reduction and the global coin subsequence — the paper's
    companion results (§1.2): "Our techniques also lead to solutions
    with Õ(√n) bit complexity for universe reduction and ... the global
    coin subsequence problem".

    Universe reduction elects a small committee that is {e representative}:
    its good fraction tracks the population's.  The tournament gives it
    directly — the arrays surviving to the root map one-to-one to their
    dealers.  But the paper's key observation (§1.3) is that against an
    {e adaptive} adversary a committee of processors is "prima facie
    impossible": the adversary simply corrupts the committee once it is
    announced.  That is why the protocol elects {e arrays of secrets}
    rather than processors — the arrays' usefulness (their hidden random
    words) survives the corruption of their dealers.

    {!reduce} runs the tournament and reports both readings: the
    committee's good fraction {e at election time} (the representativeness
    Lemma 6 is about) and {e after} the adversary gets post-election
    corruption rounds to spend its remaining budget on the committee —
    the measurable gap between the two is the paper's motivation, and the
    coin-quality figures show that the elected arrays keep working even
    as their dealers fall. *)

type result = {
  committee : int array;  (** dealers of the arrays surviving to the root *)
  good_at_election : float;
      (** fraction of the committee not corrupted when elected *)
  good_after_hunt : float;
      (** fraction still good after the adversary spends its remaining
          budget hunting committee members *)
  coin_commonality : float;
      (** over the coin-subsequence iterations (opened after the hunt):
          mean fraction of good processors sharing the plurality value —
          the "known almost everywhere" half of the (s, t) guarantee *)
  coin_distinct_rate : float;
      (** fraction of iterations whose plurality value differed from the
          previous iteration's — a cheap unpredictability check (≈ 1 −
          1/labels for uniform draws, ≈ 0 for a stuck generator) *)
  ae : Ae_ba.result;
}

(** [reduce ~params ~seed ~behavior ~strategy ?budget ()] — run the
    tournament on random inputs, let the adversary hunt the announced
    committee with its leftover budget, then open the coin subsequence
    and measure it. *)
val reduce :
  params:Params.t ->
  seed:int64 ->
  behavior:Comm.behavior ->
  strategy:Comm.payload Ks_sim.Types.strategy ->
  ?budget:int ->
  unit ->
  result
