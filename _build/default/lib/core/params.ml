module Intmath = Ks_stdx.Intmath

type share_threshold_policy = Half_minus_one | Third

type t = {
  n : int;
  epsilon : float;
  q : int;
  k1 : int;
  growth : int;
  up_degree : int;
  ell_degree : int;
  winners : int;
  aeba_degree : int;
  aeba_rounds : int;
  max_election_rounds : int;
  a2e_requests_per_label : int;
  a2e_labels : int;
  a2e_iterations : int;
  share_policy : share_threshold_policy;
  header_bits : int;
}

(* Tree height used by the practical profile: the paper's height is
   log_q(n/k1) with q = log^δ n — i.e. very shallow for any simulatable n.
   We pin 3 levels up to 2048 processors and 4 above. *)
let practical_height n = if n <= 2048 then 3 else 4

let practical n =
  if n < 16 then invalid_arg "Params.practical: n must be at least 16";
  let lg = Intmath.ceil_log2 n in
  let height = practical_height n in
  (* Choose q so that ceil-dividing n by q (height - 1) times reaches 1. *)
  let q =
    let rec fit q =
      let rec steps m k = if m = 1 then k else steps (Intmath.cdiv m q) (k + 1) in
      if steps n 0 <= height - 1 then q else fit (q + 1)
    in
    fit (Stdlib.max 2 (int_of_float (Float.of_int n ** (1.0 /. float_of_int (height - 1)))))
  in
  {
    n;
    epsilon = 0.08;
    q;
    k1 = Stdlib.max 8 (lg + 4);
    growth = 2;
    up_degree = 16;
    ell_degree = 8;
    winners = 2;
    aeba_degree = Stdlib.max 8 (4 * lg);
    aeba_rounds = lg + 4;
    max_election_rounds = lg + 2;
    a2e_requests_per_label = Stdlib.max 12 (3 * lg);
    a2e_labels = Stdlib.max 2 (Intmath.isqrt n);
    a2e_iterations = Stdlib.max 6 (lg + 2);
    share_policy = Third;
    header_bits = 32;
  }

let theoretical n =
  if n < 4 then invalid_arg "Params.theoretical: n too small";
  let lg = Intmath.ceil_log2 n in
  let lg3 = lg * lg * lg in
  let delta = 8 in
  let q = Intmath.pow lg delta in
  {
    n;
    epsilon = 0.01;
    q;
    k1 = lg3;
    growth = q;
    up_degree = q * lg3;
    ell_degree = lg3;
    winners = 5 * lg3;
    aeba_degree = 4 * lg;
    aeba_rounds = 2 * lg;
    max_election_rounds = max_int;
    a2e_requests_per_label = 32 * lg;
    a2e_labels = Stdlib.max 2 (Intmath.isqrt n);
    a2e_iterations = Stdlib.max 1 (2 * lg / 3);
    share_policy = Half_minus_one;
    header_bits = 32;
  }

let corruption_budget t =
  int_of_float (((1.0 /. 3.0) -. t.epsilon) *. float_of_int t.n)

let share_threshold t ~holders =
  if holders < 2 then 0
  else
    match t.share_policy with
    | Half_minus_one -> Stdlib.max 1 (Intmath.cdiv holders 2 - 1)
    | Third -> Stdlib.max 1 (Intmath.cdiv holders 3 - 1)

let tree_config t =
  {
    Ks_topology.Tree.n = t.n;
    q = t.q;
    k1 = Stdlib.min t.n t.k1;
    growth = t.growth;
    up_degree = t.up_degree;
    ell_degree = t.ell_degree;
  }

let validate t =
  let fail msg = invalid_arg ("Params.validate: " ^ msg) in
  if t.n < 16 then fail "n < 16";
  if t.epsilon <= 0.0 || t.epsilon >= 1.0 /. 3.0 then fail "epsilon outside (0, 1/3)";
  if t.q < 2 then fail "q < 2";
  if t.k1 < 4 || t.k1 > t.n then fail "k1 outside [4, n]";
  if t.winners < 1 then fail "winners < 1";
  if t.aeba_rounds < 1 then fail "aeba_rounds < 1";
  if t.max_election_rounds < 1 then fail "max_election_rounds < 1";
  if t.a2e_labels < 1 || t.a2e_labels > t.n then fail "a2e_labels outside [1, n]";
  if t.a2e_requests_per_label < 1 then fail "a2e_requests_per_label < 1";
  if t.header_bits < 0 then fail "bit sizes";
  t

let pp fmt t =
  Format.fprintf fmt
    "{n=%d; eps=%.3f; q=%d; k1=%d; up=%d; ell=%d; w=%d; aeba_deg=%d; \
     aeba_rounds=%d; elect_rounds<=%d; a2e=%dx%d reqs, %d iters; policy=%s}"
    t.n t.epsilon t.q t.k1 t.up_degree t.ell_degree t.winners t.aeba_degree
    t.aeba_rounds t.max_election_rounds t.a2e_labels t.a2e_requests_per_label
    t.a2e_iterations
    (match t.share_policy with Half_minus_one -> "half" | Third -> "third")
