(** Undirected near-regular random graphs.

    Theorem 5 runs the unreliable-coin agreement protocol on a random
    k·log n-regular graph; we build such graphs as unions of random
    Hamiltonian cycles (each cycle adds exactly 2 to every degree), then
    drop self-loops and duplicate edges — connectivity and expansion hold
    with overwhelming probability, and degrees are within the duplicate
    slack of the target. *)

type t

(** [random_regular rng ~n ~degree] — a graph on [n >= 3] vertices built
    from [ceil(degree / 2)] random cycles. *)
val random_regular : Ks_stdx.Prng.t -> n:int -> degree:int -> t

(** [complete n] — every pair adjacent (used by baselines and by tiny
    nodes where the sampled degree would exceed [n-1]). *)
val complete : int -> t

val n : t -> int

(** [neighbours g v] — sorted, duplicate-free, never contains [v]. *)
val neighbours : t -> int -> int array

(** [adjacent g u v] — O(log degree) membership test. *)
val adjacent : t -> int -> int -> bool

val degree : t -> int -> int
val max_degree : t -> int
val min_degree : t -> int

(** [is_connected g] — BFS reachability from vertex 0. *)
val is_connected : t -> bool
