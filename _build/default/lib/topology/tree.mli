(** The sparse q-ary node tree of §3.2.2.

    Levels are numbered 1 (leaves) to [levels] (root).  Level 1 has [n]
    nodes — node [i] is where processor [i] initially secret-shares its
    candidate array — each populated with [k1] processors chosen by a
    sampler.  Going up, node counts shrink by a factor [q] and node sizes
    grow by [q] (clamped at [n]); the root contains every processor.

    Three families of edges (all sampler-chosen):
    - {b uplinks} connect each member of a child node to [up_degree]
      members of its parent — shares of secrets climb these;
    - {b ℓ-links} connect each member of a level-ℓ node directly to a
      polylog set of its level-1 descendants — opened values come back up
      these in one hop ([sendOpen]);
    - intra-node graphs for running agreement inside a node are built
      separately with {!Graph.random_regular}.

    Everything is precomputed at [build] time from one RNG, so a seed
    fully determines the network. *)

type t

type config = {
  n : int;  (** number of processors *)
  q : int;  (** tree arity, >= 2 *)
  k1 : int;  (** leaf node size *)
  growth : int;  (** node-size growth per level: size(ℓ) = k1·growth^(ℓ-1),
                     clamped at [n]; the paper uses growth = q, the
                     practical profile a smaller constant.  The root node
                     always contains all [n] processors (step 3 of
                     Algorithm 2 runs agreement among everyone). *)
  up_degree : int;  (** uplinks per member (clamped to parent size) *)
  ell_degree : int;  (** ℓ-links per member (clamped to #descendant leaves) *)
}

val build : Ks_stdx.Prng.t -> config -> t

val config : t -> config
val n : t -> int

(** Number of levels; the root is level [levels t]. *)
val levels : t -> int

(** [node_count t ~level] — nodes on the level. *)
val node_count : t -> level:int -> int

(** [node_size t ~level] — members per node on the level. *)
val node_size : t -> level:int -> int

(** [members t ~level ~node] — the member processors, by position.  Owned
    by the tree; do not mutate. *)
val members : t -> level:int -> node:int -> int array

(** [position_of t ~level ~node p] — position of processor [p] in the
    node's member array, if present. *)
val position_of : t -> level:int -> node:int -> int -> int option

(** [parent t ~level ~node] — parent node index on [level + 1]; raises if
    [level = levels t]. *)
val parent : t -> level:int -> node:int -> int

(** [children t ~level ~node] — child node indices on [level - 1]
    (empty for level 1). *)
val children : t -> level:int -> node:int -> int list

(** [leaf_range t ~level ~node] — the half-open range [lo, hi) of level-1
    node indices in this node's subtree. *)
val leaf_range : t -> level:int -> node:int -> int * int

(** [leaf_ancestor t ~leaf ~level] — index of the level-[level] ancestor
    of leaf node [leaf]. *)
val leaf_ancestor : t -> leaf:int -> level:int -> int

(** [uplinks t ~level ~member] — parent-node member positions that member
    position [member] of any level-[level] node shares up to (defined for
    level < levels).  The pattern is shared by all nodes of the level so
    that a share dealt by position [m] of one child returns, during
    [sendDown], to position [m] of every sibling ("the corresponding
    uplinks", §3.2.3). *)
val uplinks : t -> level:int -> member:int -> int array

(** [downlinks t ~level ~parent_member] — member positions of any
    level-[level] child reachable down from position [parent_member] of
    its parent: the reverse of [uplinks]. *)
val downlinks : t -> level:int -> parent_member:int -> int array

(** [ell_links t ~level ~node ~member] — absolute level-1 node indices
    this member listens to during [sendOpen] (defined for level >= 2). *)
val ell_links : t -> level:int -> node:int -> member:int -> int array

(** [ell_sources t ~level ~node ~leaf] — member positions of (level, node)
    that have an ℓ-link to absolute leaf node [leaf]. *)
val ell_sources : t -> level:int -> node:int -> leaf:int -> int array

(** [is_good_node t ~corrupt ~level ~node ~threshold] — true if the
    fraction of non-corrupt members is at least [threshold] (Definition 3
    uses 2/3 + ε/2). *)
val is_good_node :
  t -> corrupt:(int -> bool) -> level:int -> node:int -> threshold:float -> bool

(** [appearances t p] — in how many nodes (across all levels) processor
    [p] appears; the paper needs this polylogarithmic. *)
val appearances : t -> int -> int
