lib/topology/graph.ml: Array Hashtbl Ks_stdx List Queue Stdlib
