lib/topology/tree.ml: Array Hashtbl Ks_sampler Ks_stdx List Stdlib
