lib/topology/graph.mli: Ks_stdx
