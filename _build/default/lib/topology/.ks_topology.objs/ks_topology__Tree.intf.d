lib/topology/tree.mli: Ks_stdx
