module Prng = Ks_stdx.Prng
module Intmath = Ks_stdx.Intmath

type config = {
  n : int;
  q : int;
  k1 : int;
  growth : int;
  up_degree : int;
  ell_degree : int;
}

type t = {
  cfg : config;
  levels : int;
  counts : int array; (* counts.(l-1) = nodes on level l *)
  sizes : int array; (* sizes.(l-1) = members per node on level l *)
  node_members : int array array array; (* .(l-1).(j) = procs by position *)
  node_positions : (int, int) Hashtbl.t array array; (* proc -> position *)
  up : int array array array; (* .(l-1).(m) = parent positions *)
  down : int array array array; (* .(l-1).(pp) = child member positions *)
  ell : int array array array array; (* .(l-1).(j).(m) = absolute leaf indices *)
  ell_rev : int array array array array; (* .(l-1).(j).(leaf - lo) = positions *)
}

let leaf_range_of cfg counts ~level ~node =
  let width = Intmath.pow cfg.q (level - 1) in
  let lo = node * width in
  let hi = Stdlib.min counts.(0) (lo + width) in
  (lo, hi)

let build rng cfg =
  if cfg.n < 2 then invalid_arg "Tree.build: n too small";
  if cfg.q < 2 then invalid_arg "Tree.build: arity must be >= 2";
  if cfg.growth < 1 then invalid_arg "Tree.build: growth must be >= 1";
  if cfg.k1 < 1 || cfg.k1 > cfg.n then invalid_arg "Tree.build: bad k1";
  if cfg.up_degree < 1 || cfg.ell_degree < 1 then invalid_arg "Tree.build: bad degrees";
  (* Level population counts: n leaf nodes, shrinking by q per level. *)
  let counts =
    let rec go acc m = if m = 1 then List.rev acc else go (Intmath.cdiv m cfg.q :: acc) (Intmath.cdiv m cfg.q) in
    Array.of_list (go [ cfg.n ] cfg.n)
  in
  let levels = Array.length counts in
  let sizes =
    Array.init levels (fun i ->
        if i = levels - 1 then cfg.n
        else Stdlib.min cfg.n (cfg.k1 * Intmath.pow cfg.growth i))
  in
  (* Node membership: one sampler per level assigning a distinct multiset
     of processors to each node; the root holds everyone. *)
  let node_members =
    Array.init levels (fun i ->
        let size = sizes.(i) in
        if size >= cfg.n then
          Array.init counts.(i) (fun _ -> Array.init cfg.n (fun p -> p))
        else begin
          let sampler =
            Ks_sampler.Sampler.create_distinct rng ~r:counts.(i) ~s:cfg.n ~d:size
          in
          Array.init counts.(i) (fun j ->
              Array.copy (Ks_sampler.Sampler.eval sampler j))
        end)
  in
  let node_positions =
    Array.map
      (Array.map (fun procs ->
           let tbl = Hashtbl.create (2 * Array.length procs) in
           Array.iteri (fun pos p -> Hashtbl.replace tbl p pos) procs;
           tbl))
      node_members
  in
  (* Uplinks for levels 1 .. levels-1 and their reverses.  The pattern is
     position-based and shared by all nodes of a level: member position m
     of any child connects to the same parent positions.  This is what
     makes "the corresponding uplinks from each of its other children"
     (sendDown, §3.2.3) well defined — a share dealt by position m of one
     child comes back down to position m of every sibling. *)
  let up = Array.make levels [||] in
  let down = Array.make levels [||] in
  for i = 0 to levels - 2 do
    let parent_size = sizes.(i + 1) in
    let d = Stdlib.min cfg.up_degree parent_size in
    up.(i) <-
      Array.init sizes.(i) (fun _m ->
          Prng.sample_without_replacement rng ~n:parent_size ~k:d);
    down.(i) <-
      (let rev = Array.make parent_size [] in
       Array.iteri
         (fun m targets -> Array.iter (fun pp -> rev.(pp) <- m :: rev.(pp)) targets)
         up.(i);
       Array.map (fun l -> Array.of_list (List.rev l)) rev)
  done;
  (* ℓ-links for levels >= 2, and their reverses. *)
  let ell = Array.make levels [||] in
  let ell_rev = Array.make levels [||] in
  for i = 1 to levels - 1 do
    let level = i + 1 in
    ell.(i) <-
      Array.init counts.(i) (fun j ->
          let lo, hi = leaf_range_of cfg counts ~level ~node:j in
          let nleaves = hi - lo in
          let d = Stdlib.min cfg.ell_degree nleaves in
          Array.init sizes.(i) (fun _m ->
              Array.map (fun rel -> lo + rel)
                (Prng.sample_without_replacement rng ~n:nleaves ~k:d)));
    ell_rev.(i) <-
      Array.init counts.(i) (fun j ->
          let lo, hi = leaf_range_of cfg counts ~level ~node:j in
          let rev = Array.make (hi - lo) [] in
          Array.iteri
            (fun m leaves ->
              Array.iter (fun leaf -> rev.(leaf - lo) <- m :: rev.(leaf - lo)) leaves)
            ell.(i).(j);
          Array.map (fun l -> Array.of_list (List.rev l)) rev)
  done;
  { cfg; levels; counts; sizes; node_members; node_positions; up; down; ell; ell_rev }

let config t = t.cfg
let n t = t.cfg.n
let levels t = t.levels

let check_level t level =
  if level < 1 || level > t.levels then invalid_arg "Tree: level out of range"

let node_count t ~level =
  check_level t level;
  t.counts.(level - 1)

let node_size t ~level =
  check_level t level;
  t.sizes.(level - 1)

let members t ~level ~node =
  check_level t level;
  t.node_members.(level - 1).(node)

let position_of t ~level ~node p =
  check_level t level;
  Hashtbl.find_opt t.node_positions.(level - 1).(node) p

let parent t ~level ~node =
  if level >= t.levels then invalid_arg "Tree.parent: root has no parent";
  node / t.cfg.q

let children t ~level ~node =
  check_level t level;
  if level = 1 then []
  else begin
    let lo = node * t.cfg.q in
    let hi = Stdlib.min t.counts.(level - 2) (lo + t.cfg.q) in
    List.init (hi - lo) (fun i -> lo + i)
  end

let leaf_range t ~level ~node =
  check_level t level;
  leaf_range_of t.cfg t.counts ~level ~node

let leaf_ancestor t ~leaf ~level =
  check_level t level;
  leaf / Intmath.pow t.cfg.q (level - 1)

let uplinks t ~level ~member =
  if level >= t.levels then invalid_arg "Tree.uplinks: root has no uplinks";
  t.up.(level - 1).(member)

let downlinks t ~level ~parent_member =
  if level >= t.levels then invalid_arg "Tree.downlinks: root has no parent";
  t.down.(level - 1).(parent_member)

let ell_links t ~level ~node ~member =
  check_level t level;
  if level < 2 then invalid_arg "Tree.ell_links: undefined on level 1";
  t.ell.(level - 1).(node).(member)

let ell_sources t ~level ~node ~leaf =
  check_level t level;
  if level < 2 then invalid_arg "Tree.ell_sources: undefined on level 1";
  let lo, hi = leaf_range t ~level ~node in
  if leaf < lo || leaf >= hi then invalid_arg "Tree.ell_sources: leaf outside subtree";
  t.ell_rev.(level - 1).(node).(leaf - lo)

let is_good_node t ~corrupt ~level ~node ~threshold =
  let procs = members t ~level ~node in
  let good =
    Array.fold_left (fun acc p -> if corrupt p then acc else acc + 1) 0 procs
  in
  float_of_int good >= threshold *. float_of_int (Array.length procs)

let appearances t p =
  let count = ref 0 in
  Array.iter
    (Array.iter (fun tbl -> if Hashtbl.mem tbl p then incr count))
    t.node_positions;
  !count
