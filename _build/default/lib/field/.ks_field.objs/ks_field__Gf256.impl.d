lib/field/gf256.ml: Array Char Format Int Ks_stdx
