lib/field/zp.ml: Format Int Ks_stdx
