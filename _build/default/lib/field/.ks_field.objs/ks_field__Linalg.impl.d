lib/field/linalg.ml: Array Field_intf List
