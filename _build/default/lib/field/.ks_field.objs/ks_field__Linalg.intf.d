lib/field/linalg.mli: Field_intf
