lib/field/poly.mli: Field_intf Format Ks_stdx
