lib/field/zp.mli: Field_intf
