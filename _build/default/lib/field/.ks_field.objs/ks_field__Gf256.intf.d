lib/field/gf256.mli: Field_intf
