lib/field/field_intf.ml: Format Ks_stdx
