lib/field/poly.ml: Array Field_intf Format List Stdlib
