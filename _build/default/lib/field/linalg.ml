module Make (F : Field_intf.S) = struct
  (* Reduce the augmented matrix [m] (rows × (cols+1)) to row echelon form;
     returns the list of pivot columns in order. *)
  let echelon m rows cols =
    let pivots = ref [] in
    let row = ref 0 in
    let col = ref 0 in
    while !row < rows && !col < cols do
      (* Find a pivot in this column. *)
      let pivot_row = ref (-1) in
      (try
         for r = !row to rows - 1 do
           if not (F.equal m.(r).(!col) F.zero) then begin
             pivot_row := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot_row < 0 then incr col
      else begin
        let pr = !pivot_row in
        if pr <> !row then begin
          let tmp = m.(pr) in
          m.(pr) <- m.(!row);
          m.(!row) <- tmp
        end;
        let inv = F.inv m.(!row).(!col) in
        for c = !col to cols do
          m.(!row).(c) <- F.mul m.(!row).(c) inv
        done;
        for r = 0 to rows - 1 do
          if r <> !row && not (F.equal m.(r).(!col) F.zero) then begin
            let factor = m.(r).(!col) in
            for c = !col to cols do
              m.(r).(c) <- F.sub m.(r).(c) (F.mul factor m.(!row).(c))
            done
          end
        done;
        pivots := (!row, !col) :: !pivots;
        incr row;
        incr col
      end
    done;
    List.rev !pivots

  let solve a b =
    let rows = Array.length a in
    if rows = 0 then Some [||]
    else begin
      let cols = Array.length a.(0) in
      if Array.length b <> rows then invalid_arg "Linalg.solve: dimension mismatch";
      let m =
        Array.init rows (fun r ->
            Array.init (cols + 1) (fun c -> if c < cols then a.(r).(c) else b.(r)))
      in
      let pivots = echelon m rows cols in
      (* Inconsistent if some row is 0 = nonzero. *)
      let inconsistent =
        Array.exists
          (fun row ->
            let all_zero = ref true in
            for c = 0 to cols - 1 do
              if not (F.equal row.(c) F.zero) then all_zero := false
            done;
            !all_zero && not (F.equal row.(cols) F.zero))
          m
      in
      if inconsistent then None
      else begin
        let x = Array.make cols F.zero in
        List.iter (fun (r, c) -> x.(c) <- m.(r).(cols)) pivots;
        Some x
      end
    end

  let rank a =
    let rows = Array.length a in
    if rows = 0 then 0
    else begin
      let cols = Array.length a.(0) in
      let m = Array.map (fun row -> Array.append row [| F.zero |]) a in
      List.length (echelon m rows cols)
    end
end
