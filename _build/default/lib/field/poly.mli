(** Univariate polynomials over an arbitrary finite field.

    Coefficients are stored lowest-degree first.  Values are normalised
    (no trailing zero coefficients) by every operation, so [degree] is
    meaningful; the zero polynomial has degree [-1]. *)

module Make (F : Field_intf.S) : sig
  type t

  val zero : t
  val of_coeffs : F.t array -> t
  val coeffs : t -> F.t array

  (** [degree p] — [-1] for the zero polynomial. *)
  val degree : t -> int

  val equal : t -> t -> bool
  val eval : t -> F.t -> F.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val scale : F.t -> t -> t

  (** [divmod a b] returns [(q, r)] with [a = q·b + r] and
      [degree r < degree b].  Raises [Division_by_zero] if [b] is zero. *)
  val divmod : t -> t -> t * t

  (** [random rng ~degree ~const] draws coefficients uniformly for degrees
      1..[degree] and fixes the constant term to [const] — exactly the
      dealer polynomial of Shamir sharing. *)
  val random : Ks_stdx.Prng.t -> degree:int -> const:F.t -> t

  (** [interpolate pts] — the unique polynomial of degree < |pts| through
      the given points.  Raises [Invalid_argument] on duplicate abscissae
      or an empty list. *)
  val interpolate : (F.t * F.t) list -> t

  (** [lagrange_eval pts x] evaluates the interpolating polynomial at [x]
      directly (O(k²) field operations, no intermediate polynomial). *)
  val lagrange_eval : (F.t * F.t) list -> F.t -> F.t

  val pp : Format.formatter -> t -> unit
end
