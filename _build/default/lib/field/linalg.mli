(** Dense linear algebra over a finite field: just enough Gaussian
    elimination to drive the Berlekamp–Welch decoder in [Ks_shamir]. *)

module Make (F : Field_intf.S) : sig
  (** [solve a b] solves [a·x = b] for square or overdetermined [a]
      (rows >= cols).  Returns [Some x] for any solution of the system
      (free variables are set to zero), or [None] if the system is
      inconsistent.  [a] and [b] are not mutated. *)
  val solve : F.t array array -> F.t array -> F.t array option

  (** [rank a] — rank of the matrix. *)
  val rank : F.t array array -> int
end
