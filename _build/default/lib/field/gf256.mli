(** The binary field GF(2^8) with the AES reduction polynomial
    x^8 + x^4 + x^3 + x + 1 (0x11B).

    Used for byte-oriented sharing of long payloads (each byte of a secret
    is shared independently), where a 31-bit prime-field element per byte
    would waste bandwidth.  Multiplication goes through exp/log tables
    built once at module initialisation. *)

include Field_intf.S

(** [of_char] / [to_char] view bytes as field elements. *)
val of_char : char -> t

val to_char : t -> char
