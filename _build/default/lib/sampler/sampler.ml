module Prng = Ks_stdx.Prng

type t = { r : int; s : int; d : int; assign : int array array }

let validate ~r ~s ~d =
  if r <= 0 || s <= 0 || d <= 0 then invalid_arg "Sampler.create: non-positive dimension"

let create rng ~r ~s ~d =
  validate ~r ~s ~d;
  let assign = Array.init r (fun _ -> Array.init d (fun _ -> Prng.int rng s)) in
  { r; s; d; assign }

let create_distinct rng ~r ~s ~d =
  validate ~r ~s ~d;
  if d > s then invalid_arg "Sampler.create_distinct: d > s";
  let assign =
    Array.init r (fun _ -> Prng.sample_without_replacement rng ~n:s ~k:d)
  in
  { r; s; d; assign }

let r t = t.r
let s t = t.s
let d t = t.d

let eval t x =
  if x < 0 || x >= t.r then invalid_arg "Sampler.eval: input out of range";
  t.assign.(x)

let degree t y =
  let count = ref 0 in
  Array.iter
    (fun multiset -> Array.iter (fun e -> if e = y then incr count) multiset)
    t.assign;
  !count

let degrees t =
  let deg = Array.make t.s 0 in
  Array.iter
    (fun multiset -> Array.iter (fun e -> deg.(e) <- deg.(e) + 1) multiset)
    t.assign;
  deg

let max_degree t = Array.fold_left Stdlib.max 0 (degrees t)

let bad_fraction t ~bad x =
  let multiset = eval t x in
  let hits = Array.fold_left (fun acc e -> if bad.(e) then acc + 1 else acc) 0 multiset in
  float_of_int hits /. float_of_int t.d

let exceeding_inputs t ~bad ~theta =
  if Array.length bad <> t.s then invalid_arg "Sampler.exceeding_inputs: bad set size";
  let set_size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bad in
  let population = float_of_int set_size /. float_of_int t.s in
  let threshold = population +. theta in
  let exceeding = ref 0 in
  for x = 0 to t.r - 1 do
    if bad_fraction t ~bad x > threshold then incr exceeding
  done;
  float_of_int !exceeding /. float_of_int t.r

let estimate_delta rng t ~theta ~trials ~set_fraction =
  let set_size = Ks_stdx.Intmath.clamp ~lo:1 ~hi:t.s
      (int_of_float (set_fraction *. float_of_int t.s))
  in
  let worst = ref 0.0 in
  for _ = 1 to trials do
    let chosen = Prng.sample_without_replacement rng ~n:t.s ~k:set_size in
    let bad = Array.make t.s false in
    Array.iter (fun i -> bad.(i) <- true) chosen;
    worst := Float.max !worst (exceeding_inputs t ~bad ~theta)
  done;
  (* Greedy adversarial set: the highest-degree elements skew the most
     multisets at once. *)
  let deg = degrees t in
  let order = Array.init t.s (fun i -> i) in
  Array.sort (fun a b -> compare deg.(b) deg.(a)) order;
  let bad = Array.make t.s false in
  for i = 0 to set_size - 1 do
    bad.(order.(i)) <- true
  done;
  Float.max !worst (exceeding_inputs t ~bad ~theta)
