(** Averaging (oblivious) samplers — Definition 2 of the paper.

    A sampler is a function [H : [r] -> [s]^d] assigning to each input a
    multiset of [d] elements of [s].  [H] is a (θ, δ) sampler if for every
    subset [S] of [s], at most a δ fraction of inputs [x] have
    [|H(x) ∩ S| / d > |S|/s + θ] — i.e. almost every assigned multiset is
    nearly as "clean" as the population.

    The paper (Lemma 2) establishes existence by the probabilistic method
    and assumes a non-uniform model in which processors simply have the
    sampler.  We realise that model by drawing [H] from the very
    distribution used in the existence proof — d independent uniform
    choices per input, from a shared seed — and provide estimators that
    measure the (θ, δ) quality empirically (reproduced as table T8).

    Samplers determine the whole network: node membership at every tree
    level, uplinks, and ℓ-links (§3.2.2). *)

type t

(** [create rng ~r ~s ~d] draws each of the [r] multisets as [d] uniform,
    independent elements of [0, s) (with replacement — the distribution of
    the probabilistic-method proof). *)
val create : Ks_stdx.Prng.t -> r:int -> s:int -> d:int -> t

(** [create_distinct rng ~r ~s ~d] draws each multiset without
    replacement ([d <= s] required): used where the protocol needs [d]
    distinct processors (e.g. node membership). *)
val create_distinct : Ks_stdx.Prng.t -> r:int -> s:int -> d:int -> t

val r : t -> int
val s : t -> int
val d : t -> int

(** [eval h x] — the multiset assigned to input [x], as an array of
    length [d].  The array is owned by the sampler; do not mutate. *)
val eval : t -> int -> int array

(** [degree h y] — |{(x, i) | (eval h x).(i) = y}|, the number of
    multiset slots naming [y].  Lemma 2 bounds the maximum degree by
    O((r·d/s)·log n). *)
val degree : t -> int -> int

val max_degree : t -> int

(** [bad_fraction h ~bad x] — the fraction of [eval h x]'s slots landing
    in the set [bad] (an [s]-length characteristic array). *)
val bad_fraction : t -> bad:bool array -> int -> float

(** [exceeding_inputs h ~bad ~theta] — the fraction of inputs [x] whose
    [bad_fraction] exceeds [|bad|/s + theta]: the δ witnessed by this
    particular adversarial set. *)
val exceeding_inputs : t -> bad:bool array -> theta:float -> float

(** [estimate_delta rng h ~theta ~trials ~set_fraction] estimates the
    sampler's δ at the given θ: the maximum of [exceeding_inputs] over
    [trials] random subsets of size [set_fraction·s] and one greedy
    adversarial subset built from the highest-degree elements. *)
val estimate_delta :
  Ks_stdx.Prng.t -> t -> theta:float -> trials:int -> set_fraction:float -> float
