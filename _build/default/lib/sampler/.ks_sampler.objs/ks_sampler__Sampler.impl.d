lib/sampler/sampler.ml: Array Float Ks_stdx Stdlib
