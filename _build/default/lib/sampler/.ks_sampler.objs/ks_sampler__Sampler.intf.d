lib/sampler/sampler.mli: Ks_stdx
