lib/workload/experiments.mli:
