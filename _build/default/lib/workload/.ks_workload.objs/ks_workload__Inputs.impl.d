lib/workload/inputs.ml: Array Ks_stdx Printf
