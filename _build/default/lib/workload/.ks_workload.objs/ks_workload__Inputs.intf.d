lib/workload/inputs.mli: Ks_stdx
