lib/workload/attacks.ml: Array Ks_core Ks_sim Ks_stdx Ks_topology List Stdlib
