lib/workload/experiments.ml: Array Attacks Float Fun Inputs Int64 Ks_async Ks_baselines Ks_core Ks_field Ks_sampler Ks_shamir Ks_sim Ks_stdx Ks_topology List Printf Stdlib
