lib/workload/attacks.mli: Ks_core Ks_sim Ks_topology
