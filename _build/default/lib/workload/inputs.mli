(** Input-bit assignments for agreement runs.

    The adversary chooses every processor's input in the model (§1.1), so
    the interesting workloads are the hardest splits, not just uniform
    noise. *)

type t =
  | All_zero
  | All_one
  | Random  (** iid fair bits *)
  | Split  (** alternating: the adversarially balanced worst case *)
  | Minority_one of float  (** the given fraction starts with 1 *)

val name : t -> string
val generate : Ks_stdx.Prng.t -> n:int -> t -> bool array
val all : t list
