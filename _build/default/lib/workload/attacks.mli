(** Adversary scenarios: who falls, when, and how the fallen fight.

    A scenario bundles a corruption schedule (an [Ks_sim] strategy
    skeleton reusable at any message type), a tree-phase behavior policy,
    and an amplification-phase strategy builder.  The experiment tables
    sweep over [all]. *)

type corruption_schedule =
  | No_corruption
  | Static of float  (** corrupt a random ⌊f·n⌋ set before round 0 *)
  | Creeping of float
      (** same total fraction, but spread over the run: a constant
          trickle of adaptive corruptions per round *)
  | Eclipse_leaves of float
      (** spend the budget taking over {e whole level-1 nodes} (chosen at
          random), the natural adaptive attack on share custody *)

type t = {
  label : string;
  schedule : corruption_schedule;
  behavior : Ks_core.Comm.behavior;
  a2e_flood : bool;
      (** corrupted processors also fight the amplification phase:
          mis-replies to every request received and label-targeted
          request floods against random responders *)
}

val all : t list
val honest : t
val crash : t
val byzantine_static : t
val byzantine_adaptive : t
val eclipse : t
val flood : t

(** [budget_of t ~params] — corruptions this scenario actually wants (at
    most the model budget ⌊(1/3 − ε)n⌋). *)
val budget_of : t -> params:Ks_core.Params.t -> int

(** [tree_strategy t ~params ~tree] — the corruption schedule instantiated
    for the tree phase. *)
val tree_strategy :
  t ->
  params:Ks_core.Params.t ->
  tree:Ks_topology.Tree.t ->
  Ks_core.Comm.payload Ks_sim.Types.strategy

(** [a2e_strategy t ~params ~coin ~carried] — the amplification-phase
    strategy: carries over [carried] corruptions and, when [a2e_flood],
    floods the round's agreed label (learned through [coin] exactly as a
    real adversary would from its corrupted knowledgeable processors) and
    answers every request with a poisoned value. *)
val a2e_strategy :
  t ->
  params:Ks_core.Params.t ->
  coin:(iteration:int -> int -> int option) ->
  carried:int list ->
  Ks_core.Ae_to_e.msg Ks_sim.Types.strategy

(** [generic_strategy t ~params] — the schedule at an arbitrary message
    type with silent corrupted processors; used by the single-protocol
    experiments (Algorithm 5 standalone, baselines). *)
val generic_strategy : t -> params:Ks_core.Params.t -> 'msg Ks_sim.Types.strategy

(** [vote_flipper ~params schedule] — a strategy for bool-vote protocols
    (Algorithm 5 standalone, Rabin) whose corrupted processors echo the
    {e minority} of what they can see, maximally delaying convergence. *)
val vote_flipper :
  t -> params:Ks_core.Params.t -> bool Ks_sim.Types.strategy
