type t = All_zero | All_one | Random | Split | Minority_one of float

let name = function
  | All_zero -> "all-0"
  | All_one -> "all-1"
  | Random -> "random"
  | Split -> "split"
  | Minority_one f -> Printf.sprintf "minority-%.0f%%" (100.0 *. f)

let generate rng ~n = function
  | All_zero -> Array.make n false
  | All_one -> Array.make n true
  | Random -> Array.init n (fun _ -> Ks_stdx.Prng.bool rng)
  | Split -> Array.init n (fun i -> i mod 2 = 0)
  | Minority_one f ->
    let ones = int_of_float (f *. float_of_int n) in
    let a = Array.init n (fun i -> i < ones) in
    Ks_stdx.Prng.shuffle rng a;
    a

let all = [ All_zero; All_one; Random; Split; Minority_one 0.25 ]
