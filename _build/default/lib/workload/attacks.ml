module Prng = Ks_stdx.Prng
open Ks_sim.Types

type corruption_schedule =
  | No_corruption
  | Static of float
  | Creeping of float
  | Eclipse_leaves of float

type t = {
  label : string;
  schedule : corruption_schedule;
  behavior : Ks_core.Comm.behavior;
  a2e_flood : bool;
}

let honest =
  { label = "honest"; schedule = No_corruption; behavior = Ks_core.Comm.Follow;
    a2e_flood = false }

let crash =
  { label = "crash"; schedule = Static 0.25; behavior = Ks_core.Comm.Silent;
    a2e_flood = false }

let byzantine_static =
  { label = "byz-static"; schedule = Static 0.25; behavior = Ks_core.Comm.Garbage;
    a2e_flood = false }

let byzantine_adaptive =
  { label = "byz-adaptive"; schedule = Creeping 0.25; behavior = Ks_core.Comm.Garbage;
    a2e_flood = false }

let eclipse =
  { label = "eclipse"; schedule = Eclipse_leaves 0.25; behavior = Ks_core.Comm.Flip;
    a2e_flood = false }

let flood =
  { label = "flood"; schedule = Static 0.25; behavior = Ks_core.Comm.Garbage;
    a2e_flood = true }

let all = [ honest; crash; byzantine_static; byzantine_adaptive; eclipse; flood ]

let budget_of t ~params =
  let n = params.Ks_core.Params.n in
  let model = Ks_core.Params.corruption_budget params in
  let want f = Stdlib.min model (int_of_float (f *. float_of_int n)) in
  match t.schedule with
  | No_corruption -> 0
  | Static f | Creeping f | Eclipse_leaves f -> want f

(* Corrupt whole level-1 nodes until the budget runs out: the canonical
   attack on share custody. *)
let eclipse_targets rng tree budget =
  let leaves = Ks_topology.Tree.node_count tree ~level:1 in
  let order = Prng.permutation rng leaves in
  let chosen = ref [] in
  let left = ref budget in
  Array.iter
    (fun leaf ->
      if !left > 0 then begin
        let members = Ks_topology.Tree.members tree ~level:1 ~node:leaf in
        Array.iter
          (fun p ->
            if !left > 0 && not (List.mem p !chosen) then begin
              chosen := p :: !chosen;
              decr left
            end)
          members
      end)
    order;
  !chosen

let schedule_pieces t ~params ~tree =
  let want = budget_of t ~params in
  match t.schedule with
  | No_corruption -> (None, None)
  | Static _ ->
    ( Some (fun rng ~n ~budget ->
          Ks_sim.Adversary.uniform_random_set rng ~n
            ~budget:(Stdlib.min budget want)),
      None )
  | Eclipse_leaves _ ->
    (match tree with
     | Some tree ->
       (Some (fun rng ~n:_ ~budget ->
            eclipse_targets rng tree (Stdlib.min budget want)),
        None)
     | None ->
       (* No tree in this phase: degrade to a static random set. *)
       (Some (fun rng ~n ~budget ->
            Ks_sim.Adversary.uniform_random_set rng ~n
              ~budget:(Stdlib.min budget want)),
        None))
  | Creeping _ ->
    let taken = ref 0 in
    ( None,
      Some (fun view ->
          if !taken >= want || view.view_budget_left <= 0 then []
          else begin
            let rec pick tries =
              if tries = 0 then []
              else begin
                let p = Prng.int view.view_rng view.view_n in
                if view.view_is_corrupt p then pick (tries - 1)
                else begin
                  incr taken;
                  [ p ]
                end
              end
            in
            pick 16
          end) )

let strategy_of_pieces label (initial, adapt) =
  Ks_sim.Adversary.make ~name:label ?initial_corruptions:initial ?adapt ()

let tree_strategy t ~params ~tree =
  strategy_of_pieces t.label (schedule_pieces t ~params ~tree:(Some tree))

let generic_strategy t ~params =
  strategy_of_pieces t.label (schedule_pieces t ~params ~tree:None)

let a2e_strategy t ~params ~coin ~carried =
  let base = strategy_of_pieces t.label (schedule_pieces t ~params ~tree:None) in
  let base = Ks_core.Everywhere.carry_corruptions base ~carried in
  if not t.a2e_flood then base
  else begin
    let n = params.Ks_core.Params.n in
    let poison = 2 in
    let act view =
      let iteration = view.view_round / 2 in
      let respond_phase = view.view_round mod 2 = 1 in
      if respond_phase then begin
        (* Mis-reply to every request a corrupted processor received; the
           adversary legitimately knows this iteration's label through its
           corrupted knowledgeable processors. *)
        let k =
          List.find_map (fun p -> coin ~iteration p) view.view_corrupt
        in
        List.filter_map
          (fun e ->
            match (e.payload, k) with
            | Ks_core.Ae_to_e.Request label, Some k when label = k ->
              Some
                { src = e.dst; dst = e.src;
                  payload = Ks_core.Ae_to_e.Reply { label; value = poison } }
            | _ -> None)
          view.view_visible
      end
      else begin
        (* Request phase: the label is not drawn yet (that is the point of
           Algorithm 3), so each corrupted processor concentrates its full
           per-sender allowance (n - 1 requests, any more is evidently
           corrupt) on one victim with a guessed label — if the guess hits
           the drawn label, the victim is overloaded out of serving. *)
        let guess = Prng.int view.view_rng params.Ks_core.Params.a2e_labels in
        List.concat_map
          (fun p ->
            let victim = Prng.int view.view_rng n in
            List.init (n - 1) (fun _ ->
                { src = p; dst = victim; payload = Ks_core.Ae_to_e.Request guess }))
          view.view_corrupt
      end
    in
    { base with act }
  end

let vote_flipper t ~params =
  let base = generic_strategy t ~params in
  let act view =
    (* Echo the minority of the votes the adversary can see, to everyone:
       non-neighbours are discarded by the receivers, which also exercises
       that defence. *)
    let ones =
      List.fold_left
        (fun acc e -> if e.payload then acc + 1 else acc)
        0 view.view_visible
    in
    let total = List.length view.view_visible in
    let minority = if total = 0 then Prng.bool view.view_rng else 2 * ones < total in
    List.concat_map
      (fun p ->
        List.init view.view_n (fun dst ->
            { src = p; dst; payload = minority }))
      view.view_corrupt
  in
  { base with act }
