lib/baselines/outcome.mli: Ks_sim
