lib/baselines/outcome.ml: Array Ks_sim List
