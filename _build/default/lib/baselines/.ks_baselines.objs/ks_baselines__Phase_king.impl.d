lib/baselines/phase_king.ml: Array Hashtbl Ks_sim List Option Outcome
