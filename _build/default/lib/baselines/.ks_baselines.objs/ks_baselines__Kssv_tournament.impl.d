lib/baselines/kssv_tournament.ml: Array Fun Ks_core Ks_sim Ks_stdx Ks_topology List Stdlib
