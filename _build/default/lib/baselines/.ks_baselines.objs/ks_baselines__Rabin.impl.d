lib/baselines/rabin.ml: Array Ks_core Ks_sim Ks_stdx Ks_topology List Outcome
