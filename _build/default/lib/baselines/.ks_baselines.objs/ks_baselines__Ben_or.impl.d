lib/baselines/ben_or.ml: Array Hashtbl Ks_sim Ks_stdx List Option Outcome
