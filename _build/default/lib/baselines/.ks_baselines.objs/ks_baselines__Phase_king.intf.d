lib/baselines/phase_king.mli: Ks_sim Outcome
