lib/baselines/rabin.mli: Ks_sim Outcome
