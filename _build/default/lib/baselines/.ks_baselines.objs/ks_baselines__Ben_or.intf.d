lib/baselines/ben_or.mli: Ks_sim Outcome
