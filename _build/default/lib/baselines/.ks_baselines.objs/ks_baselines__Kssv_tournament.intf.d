lib/baselines/kssv_tournament.mli: Ks_core
