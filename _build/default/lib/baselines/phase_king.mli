(** The Phase King protocol (Berman–Garay–Perry) — the classical
    {e deterministic} O(n²)-messages baseline.

    f + 1 phases of two broadcast rounds each.  In the first round
    everyone broadcasts its value and computes the plurality; in the
    second the phase's king broadcasts its plurality, and processors with
    a weak plurality (multiplicity ≤ n/2 + f) adopt the king's value.
    Since some phase has a good king, all good processors align in that
    phase and never diverge after.  Tolerates f < n/4 faults — note the
    {e worse} resilience than the paper's 1/3 − ε, which the T9 threshold
    table makes visible.

    Per-processor cost: Θ(n·f) bits.  Latency: 2(f + 1) rounds. *)

type msg = Value of bool | King_value of bool

val run :
  seed:int64 ->
  n:int ->
  budget:int ->
  faults:int ->
  (* [faults] is the f the phase count is sized for. *)
  inputs:bool array ->
  strategy:msg Ks_sim.Types.strategy ->
  Outcome.t
