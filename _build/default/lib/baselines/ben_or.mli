(** Ben-Or's randomized agreement (PODC 1983) with {e local} coins — the
    no-setup randomized baseline.

    Two broadcast rounds per phase: report values, then propose a value
    seen in a supermajority (or ⊥).  A processor decides when a proposal
    clears n/2 + f support, adopts a proposed value seen at least f + 1
    times, and otherwise flips its own private coin.  Safe for f < n/5
    (this simple synchronous variant); expected convergence is fast when
    good processors lean one way, exponential in the worst split — which
    is exactly why the paper (and Rabin) wants {e common} coins.

    Per-processor cost: Θ(n) bits per phase. *)

type msg = Report of bool | Propose of bool option

val run :
  seed:int64 ->
  n:int ->
  budget:int ->
  max_phases:int ->
  inputs:bool array ->
  strategy:msg Ks_sim.Types.strategy ->
  Outcome.t
