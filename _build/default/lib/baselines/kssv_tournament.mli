(** A light version of the King–Saia–Sanwalani–Vee tournament (SODA 2006,
    [17] in the paper) — the {e non-adaptive} predecessor that King–Saia
    2010 builds on and fixes.

    KSSV elects {e processors}: candidates announce fresh random bin
    choices in the clear (full-information model), each node keeps the
    lightest-bin winners, and the root's winners form a representative
    committee.  Against a {e static} adversary this works — Feige's
    lemma keeps the committee's good fraction near the population's.
    Against an {e adaptive} adversary it fails exactly as §1.3 of the
    2010 paper says: the winners are public, so the adversary corrupts
    them the moment they are announced, level after level, and arrives
    at the root owning the committee.

    This module exists to measure that contrast (experiment T13) against
    the 2010 protocol's array elections (T12).  Fidelity notes: the
    within-node agreement on announcements is idealised (announcements
    are broadcast to the node and taken at face value); the corrupt
    candidates play the strongest rushing bin-stuffing strategy; the
    adaptive adversary corrupts each level's winners right after the
    election, budget permitting. *)

type result = {
  committee : int array;  (** processors elected at the root *)
  good_fraction : float;  (** fraction of the committee never corrupted *)
  corrupted_total : int;  (** corruptions the adversary spent *)
  max_sent_bits : int;  (** max bits sent by a good processor *)
  rounds : int;
}

val run :
  seed:int64 ->
  params:Ks_core.Params.t ->
  adaptive:bool ->
  budget:int ->
  result
