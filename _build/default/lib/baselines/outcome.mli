(** Common result shape for the baseline agreement protocols, so the
    benchmark tables can compare them uniformly with the paper's
    protocol. *)

type t = {
  decided : bool option array;  (** per-processor decision *)
  agreement : bool;  (** all good processors decided, on one value *)
  validity : bool;  (** the common value was some good input *)
  rounds : int;
  max_sent_bits : int;  (** max bits sent by a good processor *)
  total_sent_bits : int;  (** bits sent by all good processors *)
}

(** [of_decisions ~net ~inputs decided] — evaluate agreement and validity
    over the good processors of [net] and read the cost counters off its
    meter. *)
val of_decisions :
  net:'msg Ks_sim.Net.t -> inputs:bool array -> bool option array -> t
