(** Rabin's randomized Byzantine agreement (FOCS 1983) — the classical
    O(n²)-messages-per-round baseline the paper's tournament replaces
    ([21] in the paper; §1's "quadratic number of messages" quotes).

    Every round each processor broadcasts its vote to {e all} processors
    (n − 1 messages), adopts the supermajority when one exists, and
    otherwise follows a common coin.  Rabin's original coin comes from
    predistributed Shamir-shared values (a trusted dealer); we model it
    as an ideal common-coin oracle, which only {e strengthens} this
    baseline — its measured Θ(n) bits per processor per round is the
    quantity the paper beats.

    Per-processor cost: Θ(n·rounds) bits.  Total: Θ(n²·rounds). *)

val run :
  seed:int64 ->
  n:int ->
  budget:int ->
  rounds:int ->
  epsilon:float ->
  inputs:bool array ->
  strategy:bool Ks_sim.Types.strategy ->
  Outcome.t
