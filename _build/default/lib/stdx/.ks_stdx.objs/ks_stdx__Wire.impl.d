lib/stdx/wire.ml: Array Buffer Bytes Char
