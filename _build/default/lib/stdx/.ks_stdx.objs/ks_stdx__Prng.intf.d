lib/stdx/prng.mli:
