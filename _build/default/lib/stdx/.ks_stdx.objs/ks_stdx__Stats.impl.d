lib/stdx/stats.ml: Array Float List
