lib/stdx/wire.mli: Bytes
