lib/stdx/intmath.ml:
