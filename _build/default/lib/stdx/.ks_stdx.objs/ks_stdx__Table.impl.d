lib/stdx/table.ml: Buffer List Printf Stdlib String
