lib/stdx/stats.mli:
