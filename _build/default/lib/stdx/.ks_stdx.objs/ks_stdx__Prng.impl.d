lib/stdx/prng.ml: Array Hashtbl Int64
