lib/stdx/table.mli:
