lib/stdx/intmath.mli:
