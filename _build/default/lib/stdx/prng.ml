type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the advanced state. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let split_at t i =
  (* Derive a child stream deterministically from (state, i) without
     advancing the parent: mix the index in with a distinct constant. *)
  let z = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) 0xD1B54A32D192ED03L) in
  { state = mix64 z }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  (* 53 uniform bits into the mantissa. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~n ~k =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  if k <= 0 then [||]
  else if 4 * k >= n then begin
    (* Dense case: partial Fisher–Yates over the whole index range. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection with a hash set of chosen indices. *)
    let chosen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let c = int t n in
      if not (Hashtbl.mem chosen c) then begin
        Hashtbl.add chosen c ();
        out.(!filled) <- c;
        incr filled
      end
    done;
    out
  end

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
