type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let blanks = String.make (width - n) ' ' in
    match align with Left -> s ^ blanks | Right -> blanks ^ s
  end

let render ~title ~headers ?aligns rows =
  let ncols = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: aligns length mismatch"
    | None -> List.map (fun _ -> Left) headers
  in
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row c)))
          (String.length h) rows)
      headers
  in
  let line cells =
    let padded =
      List.map2 (fun (a, w) s -> pad a w s) (List.combine aligns widths) cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("\n== " ^ title ^ " ==\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  Buffer.contents buf

let print ~title ~headers ?aligns rows =
  print_string (render ~title ~headers ?aligns rows);
  flush stdout

let fint = string_of_int

let ffloat ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fpct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let fbits b =
  if b < 1e3 then Printf.sprintf "%.0f b" b
  else if b < 1e6 then Printf.sprintf "%.1f Kb" (b /. 1e3)
  else if b < 1e9 then Printf.sprintf "%.2f Mb" (b /. 1e6)
  else Printf.sprintf "%.2f Gb" (b /. 1e9)
