(** Minimal binary wire format: length-delimited, varint-based encoding
    used to ground the simulator's bit accounting in real encoded sizes
    (a message is charged 8 × its encoded byte length plus the physical
    header, instead of a hand-estimated field sum).

    The encoding is deliberately boring: LEB128 varints for integers,
    length-prefixed byte strings, fixed tags chosen by the caller.  No
    framing beyond what the caller writes — the simulator's channels are
    reliable and message-oriented. *)

module Writer : sig
  type t

  val create : unit -> t

  (** [varint w v] — LEB128, non-negative values only (raises on
      negative). *)
  val varint : t -> int -> unit

  (** [byte w v] — one byte, [0, 255]. *)
  val byte : t -> int -> unit

  (** [bool w b] — one byte. *)
  val bool : t -> bool -> unit

  (** [u32 w v] — fixed four bytes, little endian, [0, 2^32). *)
  val u32 : t -> int -> unit

  (** [bytes w b] — length-prefixed blob. *)
  val bytes : t -> Bytes.t -> unit

  (** [word_array w a] — length-prefixed sequence of varints. *)
  val word_array : t -> int array -> unit

  val contents : t -> Bytes.t
  val length : t -> int
end

module Reader : sig
  type t

  exception Truncated
  (** Raised when reading past the end or on malformed input. *)

  val of_bytes : Bytes.t -> t
  val varint : t -> int
  val byte : t -> int
  val bool : t -> bool
  val u32 : t -> int
  val bytes : t -> Bytes.t
  val word_array : t -> int array

  (** [at_end r] — all input consumed. *)
  val at_end : t -> bool
end

(** [encoded_bits f] — 8 × the number of bytes [f] writes. *)
val encoded_bits : (Writer.t -> unit) -> int
