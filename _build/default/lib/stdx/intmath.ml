let ceil_log2 n =
  if n <= 0 then invalid_arg "Intmath.ceil_log2: non-positive";
  let rec go k pow = if pow >= n then k else go (k + 1) (pow * 2) in
  go 0 1

let floor_log2 n =
  if n <= 0 then invalid_arg "Intmath.floor_log2: non-positive";
  let rec go k pow = if pow * 2 > n then k else go (k + 1) (pow * 2) in
  go 0 1

let pow base e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * base) (base * base) (e asr 1)
    else go acc (base * base) (e asr 1)
  in
  go 1 base e

let cdiv a b =
  if b <= 0 then invalid_arg "Intmath.cdiv: non-positive divisor";
  if a < 0 then invalid_arg "Intmath.cdiv: negative dividend";
  (a + b - 1) / b

let bits_needed n = if n <= 2 then 1 else ceil_log2 n

let isqrt n =
  if n < 0 then invalid_arg "Intmath.isqrt: negative";
  if n = 0 then 0
  else begin
    let x = ref (int_of_float (sqrt (float_of_int n))) in
    while !x * !x > n do
      decr x
    done;
    while (!x + 1) * (!x + 1) <= n do
      incr x
    done;
    !x
  end

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
