(** Deterministic pseudo-random number generation.

    All randomness in the library flows through this module so that every
    simulation is reproducible from a single 64-bit seed.  The generator is
    SplitMix64 (Steele, Lea & Flood 2014): it is fast, has a 64-bit state,
    and supports cheap {e splitting} into statistically independent
    streams, which we use to give each processor, each adversary and each
    experiment repetition its own generator. *)

type t

(** [create seed] returns a fresh generator determined by [seed]. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)
val split : t -> t

(** [split_at t i] derives the [i]-th child stream of [t] without
    advancing [t]; used to hand one stream per processor. *)
val split_at : t -> int -> t

(** [bits64 t] returns 64 uniformly random bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform on [0, bound); raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)
val int_in : t -> int -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [float t] is uniform on [0, 1). *)
val float : t -> float

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] returns a uniformly random element of [a]. *)
val choose : t -> 'a array -> 'a

(** [sample_without_replacement t ~n ~k] returns [k] distinct integers
    drawn uniformly from [0, n).  Raises [Invalid_argument] if [k > n]. *)
val sample_without_replacement : t -> n:int -> k:int -> int array

(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
val permutation : t -> int -> int array
