(** Small integer-math helpers used when sizing protocol parameters
    (node sizes, degrees, bit widths) from the paper's formulas. *)

(** [ceil_log2 n] is the least [k] with [2^k >= n]; [ceil_log2 1 = 0].
    Raises [Invalid_argument] for [n <= 0]. *)
val ceil_log2 : int -> int

(** [floor_log2 n] is the greatest [k] with [2^k <= n]. *)
val floor_log2 : int -> int

(** [pow base e] — integer exponentiation; raises on negative exponent. *)
val pow : int -> int -> int

(** [cdiv a b] — ceiling division for non-negative [a], positive [b]. *)
val cdiv : int -> int -> int

(** [bits_needed n] — number of bits to encode a value in [0, n); at
    least 1. *)
val bits_needed : int -> int

(** [isqrt n] — integer square root (floor). *)
val isqrt : int -> int

(** [clamp ~lo ~hi x]. *)
val clamp : lo:int -> hi:int -> int -> int
