(** Descriptive statistics and scaling-law fits used by the experiment
    harness to summarise Monte-Carlo runs and to estimate bit-complexity
    exponents (e.g. checking that measured cost grows like n^0.5·polylog
    rather than n^2). *)

(** [mean xs] — arithmetic mean.  Raises [Invalid_argument] on empty. *)
val mean : float array -> float

(** [variance xs] — unbiased sample variance (0 for singletons). *)
val variance : float array -> float

val stddev : float array -> float

(** [percentile xs p] with [p] in [0,100], linear interpolation between
    order statistics.  Does not mutate [xs]. *)
val percentile : float array -> float -> float

val median : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float

(** [linear_fit xs ys] — least-squares fit [y = a + b·x]; returns
    [(a, b, r2)] where [r2] is the coefficient of determination. *)
val linear_fit : float array -> float array -> float * float * float

(** [loglog_slope ns ys] fits [log y = a + b·log n] and returns [(b, r2)]:
    the empirical scaling exponent of [y] in [n].  Points with
    non-positive [y] are dropped. *)
val loglog_slope : float array -> float array -> float * float

(** [wilson_interval ~successes ~trials] — 95% Wilson score confidence
    interval for a binomial proportion, as [(lo, hi)]. *)
val wilson_interval : successes:int -> trials:int -> float * float

(** [histogram xs ~bins] returns [(lo, hi, count) array] covering the data
    range with [bins] equal-width buckets. *)
val histogram : float array -> bins:int -> (float * float * int) array
