(** Column-aligned plain-text tables.

    The benchmark harness prints one table per reproduced experiment; this
    module keeps the formatting in one place so every table in
    EXPERIMENTS.md renders identically. *)

type align = Left | Right

(** [render ~title ~headers ?aligns rows] lays out [rows] under [headers]
    with per-column alignment (default: [Right] for cells that parse as
    numbers' columns is not inferred — default is [Left] for all).
    Raises [Invalid_argument] if a row's width differs from [headers]. *)
val render :
  title:string -> headers:string list -> ?aligns:align list ->
  string list list -> string

(** [print] is [render] followed by [print_string] and a flush. *)
val print :
  title:string -> headers:string list -> ?aligns:align list ->
  string list list -> unit

(** Formatting helpers shared by the experiment tables. *)

val fint : int -> string
val ffloat : ?decimals:int -> float -> string

(** [fpct x] renders a proportion in [0,1] as a percentage. *)
val fpct : float -> string

(** [fbits b] renders a bit count with a unit suffix (b, Kb, Mb, Gb). *)
val fbits : float -> string
