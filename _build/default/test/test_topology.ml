module Tree = Ks_topology.Tree
module Graph = Ks_topology.Graph
module Prng = Ks_stdx.Prng

let config ?(n = 128) ?(q = 8) ?(k1 = 8) ?(growth = 2) ?(up = 6) ?(ell = 5) () =
  { Tree.n; q; k1; growth; up_degree = up; ell_degree = ell }

let build ?n ?q ?k1 ?growth ?up ?ell () =
  Tree.build (Prng.create 31L) (config ?n ?q ?k1 ?growth ?up ?ell ())

let test_level_structure () =
  let t = build () in
  (* n=128, q=8: 128 -> 16 -> 2 -> 1. *)
  Alcotest.(check int) "levels" 4 (Tree.levels t);
  Alcotest.(check int) "leaf count" 128 (Tree.node_count t ~level:1);
  Alcotest.(check int) "level2 count" 16 (Tree.node_count t ~level:2);
  Alcotest.(check int) "root count" 1 (Tree.node_count t ~level:4);
  Alcotest.(check int) "leaf size" 8 (Tree.node_size t ~level:1);
  Alcotest.(check int) "level2 size" 16 (Tree.node_size t ~level:2);
  Alcotest.(check int) "root holds everyone" 128 (Tree.node_size t ~level:4)

let test_members_distinct () =
  let t = build () in
  for level = 1 to Tree.levels t do
    for node = 0 to Tree.node_count t ~level - 1 do
      let m = Tree.members t ~level ~node in
      let sorted = Array.copy m in
      Array.sort compare sorted;
      for i = 1 to Array.length sorted - 1 do
        Alcotest.(check bool) "distinct members" true (sorted.(i) <> sorted.(i - 1))
      done;
      Array.iter
        (fun p -> Alcotest.(check bool) "member in range" true (p >= 0 && p < 128))
        m
    done
  done

let test_position_of () =
  let t = build () in
  let m = Tree.members t ~level:2 ~node:3 in
  Array.iteri
    (fun pos p ->
      Alcotest.(check (option int)) "position roundtrip" (Some pos)
        (Tree.position_of t ~level:2 ~node:3 p))
    m;
  (* A processor not in the node. *)
  let absent =
    let rec find p = if Array.exists (fun x -> x = p) m then find (p + 1) else p in
    find 0
  in
  Alcotest.(check (option int)) "absent" None (Tree.position_of t ~level:2 ~node:3 absent)

let test_parent_child () =
  let t = build () in
  for node = 0 to Tree.node_count t ~level:1 - 1 do
    let parent = Tree.parent t ~level:1 ~node in
    Alcotest.(check bool) "child listed" true
      (List.mem node (Tree.children t ~level:2 ~node:parent))
  done;
  Alcotest.(check (list int)) "leaves have no children" []
    (Tree.children t ~level:1 ~node:0)

let test_leaf_range_and_ancestor () =
  let t = build () in
  for leaf = 0 to 127 do
    for level = 1 to Tree.levels t do
      let anc = Tree.leaf_ancestor t ~leaf ~level in
      let lo, hi = Tree.leaf_range t ~level ~node:anc in
      Alcotest.(check bool) "leaf within ancestor's range" true (leaf >= lo && leaf < hi)
    done
  done;
  let lo, hi = Tree.leaf_range t ~level:(Tree.levels t) ~node:0 in
  Alcotest.(check (pair int int)) "root covers all leaves" (0, 128) (lo, hi)

let test_uplinks_shared_and_reversed () =
  let t = build () in
  for level = 1 to Tree.levels t - 1 do
    let size = Tree.node_size t ~level in
    let parent_size = Tree.node_size t ~level:(level + 1) in
    for m = 0 to size - 1 do
      let ups = Tree.uplinks t ~level ~member:m in
      Alcotest.(check bool) "uplink degree positive" true (Array.length ups > 0);
      Array.iter
        (fun pp ->
          Alcotest.(check bool) "uplink in parent" true (pp >= 0 && pp < parent_size);
          Alcotest.(check bool) "reverse edge exists" true
            (Array.exists (fun c -> c = m) (Tree.downlinks t ~level ~parent_member:pp)))
        ups
    done
  done

let test_ell_links () =
  let t = build () in
  for level = 2 to Tree.levels t do
    for node = 0 to Tree.node_count t ~level - 1 do
      let lo, hi = Tree.leaf_range t ~level ~node in
      let size = Tree.node_size t ~level in
      for m = 0 to size - 1 do
        Array.iter
          (fun leaf ->
            Alcotest.(check bool) "ell link in subtree" true (leaf >= lo && leaf < hi);
            Alcotest.(check bool) "ell reverse" true
              (Array.exists (fun x -> x = m) (Tree.ell_sources t ~level ~node ~leaf)))
          (Tree.ell_links t ~level ~node ~member:m)
      done
    done
  done

let test_good_node_classification () =
  let t = build () in
  let corrupt _ = false in
  Alcotest.(check bool) "all good" true
    (Tree.is_good_node t ~corrupt ~level:1 ~node:0 ~threshold:0.67);
  let all_corrupt _ = true in
  Alcotest.(check bool) "all bad" false
    (Tree.is_good_node t ~corrupt:all_corrupt ~level:1 ~node:0 ~threshold:0.67)

let test_appearances_polylog () =
  let t = build () in
  (* Every processor appears somewhere, and nobody appears in more than a
     small multiple of the expected load. *)
  let expected_total =
    let acc = ref 0 in
    for level = 1 to Tree.levels t do
      acc := !acc + (Tree.node_count t ~level * Tree.node_size t ~level)
    done;
    !acc
  in
  let per_proc = expected_total / 128 in
  for p = 0 to 127 do
    let a = Tree.appearances t p in
    Alcotest.(check bool) "appears" true (a >= 1);
    Alcotest.(check bool) "balanced" true (a <= 6 * per_proc)
  done

let test_build_validation () =
  Alcotest.check_raises "bad arity" (Invalid_argument "Tree.build: arity must be >= 2")
    (fun () -> ignore (build ~q:1 ()));
  Alcotest.check_raises "bad k1" (Invalid_argument "Tree.build: bad k1") (fun () ->
      ignore (build ~k1:0 ()))

let test_graph_regular () =
  let g = Graph.random_regular (Prng.create 3L) ~n:64 ~degree:8 in
  Alcotest.(check int) "n" 64 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  for v = 0 to 63 do
    let d = Graph.degree g v in
    Alcotest.(check bool) "degree near target" true (d >= 4 && d <= 8);
    Array.iter
      (fun u ->
        Alcotest.(check bool) "no self loop" true (u <> v);
        Alcotest.(check bool) "symmetric" true (Graph.adjacent g u v))
      (Graph.neighbours g v)
  done

let test_graph_complete () =
  let g = Graph.complete 5 in
  for v = 0 to 4 do
    Alcotest.(check int) "degree" 4 (Graph.degree g v)
  done;
  Alcotest.(check bool) "adjacent" true (Graph.adjacent g 0 4);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let prop_tree_counts_shrink =
  QCheck.Test.make ~name:"node counts shrink by q" ~count:30
    QCheck.(pair (int_range 32 512) (int_range 2 8))
    (fun (n, q) ->
      let t =
        Tree.build (Prng.create 1L)
          { Tree.n; q; k1 = 6; growth = 2; up_degree = 5; ell_degree = 4 }
      in
      let ok = ref (Tree.node_count t ~level:1 = n) in
      for level = 2 to Tree.levels t do
        let expected =
          Ks_stdx.Intmath.cdiv (Tree.node_count t ~level:(level - 1)) q
        in
        if Tree.node_count t ~level <> expected then ok := false
      done;
      !ok && Tree.node_count t ~level:(Tree.levels t) = 1)

let () =
  Alcotest.run "topology"
    [
      ( "tree",
        [
          Alcotest.test_case "level structure" `Quick test_level_structure;
          Alcotest.test_case "members distinct" `Quick test_members_distinct;
          Alcotest.test_case "position_of" `Quick test_position_of;
          Alcotest.test_case "parent/child" `Quick test_parent_child;
          Alcotest.test_case "leaf ranges" `Quick test_leaf_range_and_ancestor;
          Alcotest.test_case "uplinks/downlinks" `Quick test_uplinks_shared_and_reversed;
          Alcotest.test_case "ell links" `Quick test_ell_links;
          Alcotest.test_case "good node" `Quick test_good_node_classification;
          Alcotest.test_case "appearances" `Quick test_appearances_polylog;
          Alcotest.test_case "validation" `Quick test_build_validation;
          QCheck_alcotest.to_alcotest prop_tree_counts_shrink;
        ] );
      ( "graph",
        [
          Alcotest.test_case "random regular" `Quick test_graph_regular;
          Alcotest.test_case "complete" `Quick test_graph_complete;
        ] );
    ]
