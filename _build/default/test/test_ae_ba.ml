module Ae_ba = Ks_core.Ae_ba
module Params = Ks_core.Params
module Comm = Ks_core.Comm
module Tree = Ks_topology.Tree
module Prng = Ks_stdx.Prng

let static_strategy budget =
  Ks_sim.Adversary.make ~name:"static"
    ~initial_corruptions:(fun rng ~n ~budget:b ->
      Ks_sim.Adversary.uniform_random_set rng ~n ~budget:(Stdlib.min budget b))
    ()

let run ?(n = 32) ?(budget = 0) ?(behavior = Comm.Follow) ?(inputs = fun i -> i mod 2 = 0)
    ?(seed = 42L) () =
  let params = Params.practical n in
  Ae_ba.run ~params ~seed ~inputs:(Array.init n inputs) ~behavior
    ~strategy:(static_strategy budget) ~budget ()

let test_layout () =
  let params = Params.practical 64 in
  let tree = Tree.build (Prng.create 1L) (Params.tree_config params) in
  let layout = Ae_ba.Layout.make params tree in
  Alcotest.(check int) "levels" (Tree.levels tree) layout.Ae_ba.Layout.levels;
  (* Blocks tile the array without overlap: first election block at 0,
     coin words at the end. *)
  Alcotest.(check int) "first block at origin" 0 layout.Ae_ba.Layout.block_off.(2);
  Alcotest.(check int) "a2e coin after root coin"
    (layout.Ae_ba.Layout.root_coin_off + 1)
    layout.Ae_ba.Layout.a2e_coin_off;
  Alcotest.(check int) "total covers everything"
    (layout.Ae_ba.Layout.a2e_coin_off + 1)
    layout.Ae_ba.Layout.total;
  Alcotest.(check int) "level-2 elections have q candidates" params.Params.q
    layout.Ae_ba.Layout.r_max.(2)

let test_honest_agreement () =
  let r = run () in
  Alcotest.(check (float 0.001)) "full agreement" 1.0 r.Ae_ba.agreement;
  Alcotest.(check bool) "valid" true r.Ae_ba.valid

let test_validity_unanimous_inputs () =
  let r0 = run ~inputs:(fun _ -> false) () in
  Alcotest.(check bool) "all-zero stays zero" false r0.Ae_ba.majority;
  Alcotest.(check (float 0.001)) "agreement" 1.0 r0.Ae_ba.agreement;
  let r1 = run ~inputs:(fun _ -> true) () in
  Alcotest.(check bool) "all-one stays one" true r1.Ae_ba.majority

let test_elections_recorded () =
  let r = run () in
  Alcotest.(check bool) "has elections" true (List.length r.Ae_ba.elections > 0);
  List.iter
    (fun (e : Ae_ba.election_stats) ->
      Alcotest.(check bool) "winners nonempty" true (Array.length e.winners > 0);
      Alcotest.(check bool) "winners among candidates" true
        (Array.for_all
           (fun w -> Array.exists (fun c -> c = w) e.candidates)
           e.winners);
      Alcotest.(check bool) "member agreement in [0,1]" true
        (e.member_agreement >= 0.0 && e.member_agreement <= 1.0))
    r.Ae_ba.elections

let test_root_candidates_survive () =
  let r = run () in
  Alcotest.(check bool) "root candidates exist" true
    (Array.length r.Ae_ba.root_candidates > 0);
  (* Root candidates still hold live shares at the root level. *)
  let comm = r.Ae_ba.comm in
  let levels = Tree.levels (Comm.tree comm) in
  Array.iter
    (fun c ->
      Alcotest.(check (option int)) "live at root" (Some levels)
        (Comm.level_of comm ~cand:c))
    r.Ae_ba.root_candidates

let test_byzantine_quarter () =
  let r = run ~budget:8 ~behavior:Comm.Garbage () in
  Alcotest.(check bool)
    (Printf.sprintf "agreement %.2f >= 0.9" r.Ae_ba.agreement)
    true (r.Ae_ba.agreement >= 0.9);
  Alcotest.(check bool) "valid" true r.Ae_ba.valid

let test_crash_quarter () =
  let r = run ~budget:8 ~behavior:Comm.Silent () in
  Alcotest.(check bool) "agreement" true (r.Ae_ba.agreement >= 0.9);
  Alcotest.(check bool) "valid" true r.Ae_ba.valid

let test_flip_equivocation () =
  let r = run ~budget:8 ~behavior:Comm.Flip () in
  Alcotest.(check bool) "agreement" true (r.Ae_ba.agreement >= 0.9)

let test_coin_view_mostly_common () =
  let r = run ~budget:6 ~behavior:Comm.Garbage () in
  let net = Comm.net r.Ae_ba.comm in
  let n = 32 in
  for iteration = 0 to 2 do
    let counts = Hashtbl.create 8 in
    let good_total = ref 0 in
    for p = 0 to n - 1 do
      if not (Ks_sim.Net.is_corrupt net p) then begin
        incr good_total;
        match r.Ae_ba.coin_view ~iteration p with
        | Some k ->
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
        | None -> ()
      end
    done;
    let plurality = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) counts 0 in
    Alcotest.(check bool)
      (Printf.sprintf "iteration %d plurality %d/%d" iteration plurality !good_total)
      true
      (float_of_int plurality >= 0.85 *. float_of_int !good_total)
  done

let test_coin_view_deterministic () =
  let r = run () in
  let a = r.Ae_ba.coin_view ~iteration:0 5 in
  let b = r.Ae_ba.coin_view ~iteration:0 5 in
  Alcotest.(check (option int)) "cached" a b

let test_deterministic_given_seed () =
  let a = run ~seed:7L () and b = run ~seed:7L () in
  Alcotest.(check (array bool)) "same votes" a.Ae_ba.votes b.Ae_ba.votes;
  let c = run ~seed:8L () in
  ignore c
  (* different seed may or may not differ in votes; we only pin determinism *)

let test_half_policy_still_works_at_quarter () =
  (* The paper-literal t = n/2 sharing: no error-correcting slack, so
     corrupted custodians become erasures; the majority layers must still
     carry the tournament at 25% corruption. *)
  let n = 32 in
  let params =
    { (Params.practical n) with Params.share_policy = Params.Half_minus_one }
  in
  let r =
    Ae_ba.run ~params ~seed:6L
      ~inputs:(Array.init n (fun i -> i mod 2 = 0))
      ~behavior:Comm.Garbage ~strategy:(static_strategy 8) ~budget:8 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "agreement %.2f" r.Ae_ba.agreement)
    true (r.Ae_ba.agreement >= 0.85)

let test_adaptive_mid_run_corruption () =
  let n = 32 in
  let params = Params.practical n in
  let strategy =
    Ks_sim.Adversary.make ~name:"creeping"
      ~adapt:(fun view ->
        if view.Ks_sim.Types.view_round mod 7 = 3 && view.Ks_sim.Types.view_budget_left > 0
        then [ Ks_stdx.Prng.int view.Ks_sim.Types.view_rng n ]
        else [])
      ()
  in
  let r =
    Ae_ba.run ~params ~seed:3L ~inputs:(Array.init n (fun i -> i mod 2 = 0))
      ~behavior:Comm.Garbage ~strategy ~budget:8 ()
  in
  Alcotest.(check bool) "survives adaptive corruption" true (r.Ae_ba.agreement >= 0.85)

let () =
  Alcotest.run "ae_ba"
    [
      ("layout", [ Alcotest.test_case "block layout" `Quick test_layout ]);
      ( "integration",
        [
          Alcotest.test_case "honest agreement" `Slow test_honest_agreement;
          Alcotest.test_case "validity" `Slow test_validity_unanimous_inputs;
          Alcotest.test_case "elections recorded" `Slow test_elections_recorded;
          Alcotest.test_case "root candidates" `Slow test_root_candidates_survive;
          Alcotest.test_case "byzantine 25%" `Slow test_byzantine_quarter;
          Alcotest.test_case "crash 25%" `Slow test_crash_quarter;
          Alcotest.test_case "flip 25%" `Slow test_flip_equivocation;
          Alcotest.test_case "coin views common" `Slow test_coin_view_mostly_common;
          Alcotest.test_case "coin view cached" `Slow test_coin_view_deterministic;
          Alcotest.test_case "deterministic" `Slow test_deterministic_given_seed;
          Alcotest.test_case "half policy" `Slow test_half_policy_still_works_at_quarter;
          Alcotest.test_case "adaptive corruption" `Slow test_adaptive_mid_run_corruption;
        ] );
    ]
