module Aeba = Ks_core.Aeba_coin
module Graph = Ks_topology.Graph
module Prng = Ks_stdx.Prng

let test_update_vote_rule () =
  let update = Aeba.update_vote ~epsilon:0.1 ~eps0:0.05 in
  (* Overwhelming majority: adopt it, coin irrelevant. *)
  Alcotest.(check bool) "strong majority wins" true
    (update ~ones:9 ~total:10 ~coin:(Some false) ~current:false);
  (* Weak majority: follow the coin. *)
  Alcotest.(check bool) "weak majority follows coin" false
    (update ~ones:6 ~total:10 ~coin:(Some false) ~current:true);
  (* Weak majority, no coin: keep the majority. *)
  Alcotest.(check bool) "no coin keeps majority" true
    (update ~ones:6 ~total:10 ~coin:None ~current:false);
  (* No votes at all: keep current. *)
  Alcotest.(check bool) "no votes keeps current" true
    (update ~ones:0 ~total:0 ~coin:(Some false) ~current:true)

let mk_instance ?(n = 12) ?(degree = 6) ~inputs () =
  let graph = Graph.random_regular (Prng.create 4L) ~n ~degree in
  let members = Array.init n (fun i -> 100 + i) in
  (members, Aeba.create ~members ~graph ~inputs:(Array.init n inputs) ~epsilon:0.1 ())

let test_instance_accessors () =
  let members, inst = mk_instance ~inputs:(fun i -> i mod 2 = 0) () in
  Alcotest.(check int) "member count" 12 (Aeba.member_count inst);
  Alcotest.(check int) "member id" 103 (Aeba.member inst ~pos:3);
  Alcotest.(check (option int)) "position" (Some 3) (Aeba.position_of inst members.(3));
  Alcotest.(check (option int)) "stranger" None (Aeba.position_of inst 999);
  Alcotest.(check bool) "vote" true (Aeba.vote inst ~pos:0)

let test_outgoing_covers_edges () =
  let _, inst = mk_instance ~inputs:(fun _ -> true) () in
  let out = Aeba.outgoing inst in
  List.iter
    (fun (src, dst, v) ->
      Alcotest.(check bool) "vote payload" true v;
      Alcotest.(check bool) "ids in member space" true (src >= 100 && dst >= 100))
    out;
  (* Each position sends exactly its degree. *)
  Alcotest.(check bool) "non-empty" true (List.length out > 0)

let test_step_ignores_non_neighbours () =
  let members, inst = mk_instance ~inputs:(fun _ -> false) () in
  (* Flood position 0 with "true" votes from a non-member: must not move. *)
  let received pos =
    if pos = 0 then List.init 50 (fun _ -> (424242, true)) else []
  in
  Aeba.step inst ~received ~coin:(fun _ -> None) ~good:(fun _ -> true);
  ignore members;
  Alcotest.(check bool) "flood ignored" false (Aeba.vote inst ~pos:0)

let test_step_counts_once_per_sender () =
  let members, inst = mk_instance ~inputs:(fun _ -> false) () in
  (* A single neighbour repeating "true" 100 times is one vote; honest
     neighbours voting false dominate. *)
  let g_neighbour pos =
    (* find one real neighbour of pos 0 *)
    ignore pos;
    members.(1)
  in
  ignore g_neighbour;
  let received pos =
    if pos = 0 then
      List.init 100 (fun _ -> (members.(1), true))
      @ [ (members.(2), false); (members.(3), false); (members.(4), false) ]
    else []
  in
  Aeba.step inst ~received ~coin:(fun _ -> None) ~good:(fun _ -> true);
  (* Whether members 1..4 are neighbours of 0 depends on the graph; the
     point is the repeated sender contributes at most one vote, so true
     can never reach a 2/3 fraction. *)
  Alcotest.(check bool) "duplicates collapsed" false (Aeba.vote inst ~pos:0)

let run ?(coin = Aeba.Ideal) ?(budget = 0) ?(fraction_one = 0.5) ?(rounds = 12)
    ?(strategy = Ks_sim.Adversary.none) ~n () =
  let rng = Prng.create 8L in
  let inputs = Array.init n (fun _ -> Prng.float rng < fraction_one) in
  Aeba.run_standalone ~seed:17L ~n ~degree:24 ~rounds ~epsilon:0.1 ~budget ~inputs
    ~strategy ~coin ()

let test_honest_convergence () =
  let o = run ~n:96 () in
  Alcotest.(check (float 0.01)) "full agreement" 1.0 o.Aeba.agreement;
  Alcotest.(check bool) "valid" true o.Aeba.valid

let test_validity_unanimous () =
  (* All-one inputs must yield one (Lemma 12), whatever the coin does. *)
  let o = run ~n:96 ~fraction_one:1.0 ~coin:(Aeba.Unreliable 0.5) () in
  Alcotest.(check (float 0.01)) "agreement" 1.0 o.Aeba.agreement;
  Alcotest.(check (option bool)) "decided one" (Some true) o.Aeba.decided

let test_crash_adversary () =
  let o =
    run ~n:96 ~budget:24 ~strategy:Ks_sim.Adversary.crash_random ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "agreement %.2f" o.Aeba.agreement)
    true (o.Aeba.agreement >= 0.9);
  Alcotest.(check bool) "valid" true o.Aeba.valid

let test_unreliable_coin_still_converges () =
  let o = run ~n:96 ~coin:(Aeba.Unreliable 0.2) () in
  Alcotest.(check bool) "agreement" true (o.Aeba.agreement >= 0.9)

let test_bits_accounting () =
  let o = run ~n:64 ~rounds:10 () in
  (* degree 24, 10 rounds, 1 bit per vote. *)
  Alcotest.(check bool)
    (Printf.sprintf "bits %d" o.Aeba.max_sent_bits)
    true
    (o.Aeba.max_sent_bits >= 10 * 20 && o.Aeba.max_sent_bits <= 10 * 25)

let test_adversarial_known_leaks () =
  let leaked = ref [] in
  let inputs = Array.init 48 (fun i -> i mod 2 = 0) in
  let _ =
    Aeba.run_standalone ~seed:4L ~n:48 ~degree:12 ~rounds:5 ~epsilon:0.1 ~budget:0
      ~inputs ~strategy:Ks_sim.Adversary.none ~coin:Aeba.Adversarial_known
      ~leak:(fun ~round c -> leaked := (round, c) :: !leaked)
      ()
  in
  Alcotest.(check int) "one leak per round" 5 (List.length !leaked);
  List.iteri
    (fun i (round, _) -> Alcotest.(check int) "round order" (4 - i) round)
    !leaked

let test_agreement_fraction_metric () =
  let _, inst = mk_instance ~inputs:(fun i -> i < 9) () in
  Alcotest.(check (float 1e-9)) "9 of 12" 0.75 (Aeba.agreement_fraction inst ~good:(fun _ -> true));
  (* Excluding the minority as corrupt gives full agreement. *)
  Alcotest.(check (float 1e-9)) "good subset" 1.0
    (Aeba.agreement_fraction inst ~good:(fun p -> p < 109))

let () =
  Alcotest.run "aeba_coin"
    [
      ( "rule",
        [
          Alcotest.test_case "update_vote" `Quick test_update_vote_rule;
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "outgoing" `Quick test_outgoing_covers_edges;
          Alcotest.test_case "non-neighbours ignored" `Quick test_step_ignores_non_neighbours;
          Alcotest.test_case "dedup senders" `Quick test_step_counts_once_per_sender;
          Alcotest.test_case "agreement metric" `Quick test_agreement_fraction_metric;
          Alcotest.test_case "coin leak callback" `Quick test_adversarial_known_leaks;
        ] );
      ( "standalone",
        [
          Alcotest.test_case "honest converges" `Quick test_honest_convergence;
          Alcotest.test_case "validity" `Quick test_validity_unanimous;
          Alcotest.test_case "crash adversary" `Quick test_crash_adversary;
          Alcotest.test_case "unreliable coin" `Quick test_unreliable_coin_still_converges;
          Alcotest.test_case "bit accounting" `Quick test_bits_accounting;
        ] );
    ]
