test/test_ae_to_e.mli:
