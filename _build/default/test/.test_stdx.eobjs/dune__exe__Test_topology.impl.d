test/test_topology.ml: Alcotest Array Ks_stdx Ks_topology List QCheck QCheck_alcotest
