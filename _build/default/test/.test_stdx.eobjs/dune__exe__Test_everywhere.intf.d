test/test_everywhere.mli:
