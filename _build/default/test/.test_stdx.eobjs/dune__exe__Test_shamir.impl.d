test/test_shamir.ml: Alcotest Array Float Int64 Ks_field Ks_shamir Ks_stdx List Printf QCheck QCheck_alcotest Stdlib
