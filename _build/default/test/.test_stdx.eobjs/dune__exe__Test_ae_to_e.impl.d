test/test_ae_to_e.ml: Alcotest Array Bytes Ks_core Ks_sim Ks_stdx List Printf
