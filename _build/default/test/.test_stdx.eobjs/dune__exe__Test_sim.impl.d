test/test_sim.ml: Adversary Alcotest Array Engine Ks_sim Ks_stdx List Meter Net Types
