test/test_aeba_coin.mli:
