test/test_stdx.ml: Alcotest Array Bytes Hashtbl Int64 Ks_stdx QCheck QCheck_alcotest String
