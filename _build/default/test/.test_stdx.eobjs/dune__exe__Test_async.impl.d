test/test_async.ml: Alcotest Array Int64 Ks_async Ks_sim Ks_stdx List Printf
