test/test_ae_ba.mli:
