test/test_sampler.ml: Alcotest Array Int64 Ks_sampler Ks_stdx Printf QCheck QCheck_alcotest
