test/test_comm.ml: Alcotest Array Bytes Ks_core Ks_sim Ks_stdx Ks_topology List Printf Stdlib
