test/test_election.ml: Alcotest Array Int64 Ks_core Ks_stdx Ks_topology QCheck QCheck_alcotest Stdlib
