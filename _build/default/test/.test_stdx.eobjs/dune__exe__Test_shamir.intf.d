test/test_shamir.mli:
