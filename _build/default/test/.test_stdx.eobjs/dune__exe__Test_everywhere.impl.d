test/test_everywhere.ml: Alcotest Array Ks_core Ks_sim Ks_stdx Ks_topology Ks_workload List Stdlib
