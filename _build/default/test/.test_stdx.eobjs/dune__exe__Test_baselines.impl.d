test/test_baselines.ml: Alcotest Array Ks_baselines Ks_core Ks_sim Ks_stdx
