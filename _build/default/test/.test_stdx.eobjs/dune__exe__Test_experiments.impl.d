test/test_experiments.ml: Alcotest Array Hashtbl Ks_core Ks_sim Ks_stdx Ks_topology Ks_workload List Printf
