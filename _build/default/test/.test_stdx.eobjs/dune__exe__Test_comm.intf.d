test/test_comm.mli:
