test/test_ae_ba.ml: Alcotest Array Hashtbl Ks_core Ks_sim Ks_stdx Ks_topology List Option Printf Stdlib
