test/test_field.ml: Alcotest Array Int64 Ks_field Ks_stdx List QCheck QCheck_alcotest Stdlib
