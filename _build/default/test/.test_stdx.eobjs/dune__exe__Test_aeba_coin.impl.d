test/test_aeba_coin.ml: Alcotest Array Ks_core Ks_sim Ks_stdx Ks_topology List Printf
