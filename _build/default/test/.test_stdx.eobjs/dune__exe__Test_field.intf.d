test/test_field.mli:
