(* Smoke coverage of the workload layer: inputs, attack construction, and
   the cheap experiment tables (the expensive sweeps run in bench). *)
module Inputs = Ks_workload.Inputs
module Attacks = Ks_workload.Attacks
module Experiments = Ks_workload.Experiments
module Params = Ks_core.Params
module Prng = Ks_stdx.Prng

let test_inputs_shapes () =
  let rng = Prng.create 1L in
  List.iter
    (fun w ->
      let a = Inputs.generate rng ~n:50 w in
      Alcotest.(check int) (Inputs.name w) 50 (Array.length a))
    Inputs.all;
  let zeros = Inputs.generate rng ~n:10 Inputs.All_zero in
  Alcotest.(check bool) "all zero" true (Array.for_all not zeros);
  let minority = Inputs.generate rng ~n:100 (Inputs.Minority_one 0.25) in
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 minority in
  Alcotest.(check int) "minority count" 25 ones

let test_budgets () =
  let params = Params.practical 64 in
  Alcotest.(check int) "honest budget" 0 (Attacks.budget_of Attacks.honest ~params);
  let b = Attacks.budget_of Attacks.byzantine_static ~params in
  Alcotest.(check bool) "capped by model" true (b <= Params.corruption_budget params);
  Alcotest.(check bool) "roughly a quarter" true (b >= 64 / 5)

let test_eclipse_targets_whole_leaves () =
  let params = Params.practical 64 in
  let tree = Ks_topology.Tree.build (Prng.create 2L) (Params.tree_config params) in
  let strategy = Attacks.tree_strategy Attacks.eclipse ~params ~tree in
  let picked =
    strategy.Ks_sim.Types.initial_corruptions (Prng.create 3L) ~n:64
      ~budget:(Params.corruption_budget params)
  in
  Alcotest.(check bool) "nonempty" true (picked <> []);
  (* At least one level-1 node is fully covered. *)
  let covered = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace covered p ()) picked;
  let full_leaf =
    let found = ref false in
    for leaf = 0 to Ks_topology.Tree.node_count tree ~level:1 - 1 do
      let members = Ks_topology.Tree.members tree ~level:1 ~node:leaf in
      if Array.for_all (fun p -> Hashtbl.mem covered p) members then found := true
    done;
    !found
  in
  Alcotest.(check bool) "a whole leaf eclipsed" true full_leaf

let test_creeping_spends_gradually () =
  let params = Params.practical 64 in
  let strategy = Attacks.generic_strategy Attacks.byzantine_adaptive ~params in
  let view round =
    {
      Ks_sim.Types.view_round = round;
      view_n = 64;
      view_is_corrupt = (fun _ -> false);
      view_corrupt = [];
      view_budget_left = 100;
      view_visible = [];
      view_rng = Prng.create 9L;
    }
  in
  let total = ref 0 in
  for round = 0 to 200 do
    total := !total + List.length (strategy.Ks_sim.Types.adapt (view round))
  done;
  let want = Attacks.budget_of Attacks.byzantine_adaptive ~params in
  Alcotest.(check int) "spends exactly its budget" want !total

let test_vote_flipper_echoes_minority () =
  let params = Params.practical 64 in
  let strategy = Attacks.vote_flipper Attacks.byzantine_static ~params in
  let visible =
    List.init 10 (fun i ->
        { Ks_sim.Types.src = i; dst = 63; payload = i < 7 (* majority true *) })
  in
  let view =
    {
      Ks_sim.Types.view_round = 0;
      view_n = 64;
      view_is_corrupt = (fun p -> p = 63);
      view_corrupt = [ 63 ];
      view_budget_left = 0;
      view_visible = visible;
      view_rng = Prng.create 9L;
    }
  in
  let out = strategy.Ks_sim.Types.act view in
  Alcotest.(check bool) "echoes minority (false)" true
    (out <> [] && List.for_all (fun e -> e.Ks_sim.Types.payload = false) out);
  Alcotest.(check bool) "speaks only for corrupt procs" true
    (List.for_all (fun e -> e.Ks_sim.Types.src = 63) out)

let test_t1_t2_t10_tables_from_synthetic_points () =
  (* The scaling tables render from any collected points; synthetic data
     keeps this cheap. *)
  let pt n : Experiments.scaling_point =
    {
      Experiments.n;
      ks_ae_bits = 1000.0 *. float_of_int n ** 0.7;
      ks_a2e_bits = 500.0 *. sqrt (float_of_int n);
      ks_total_bits = 1100.0 *. float_of_int n ** 0.7;
      ks_rounds = 100.0 +. float_of_int n /. 10.0;
      rabin_bits = 20.0 *. float_of_int n;
      rabin_rounds = 20.0;
      king_bits = float_of_int (n * n) /. 10.0;
      king_rounds = float_of_int n;
      ks_success = true;
    }
  in
  let pts = [ pt 64; pt 128; pt 256 ] in
  let t1 = Experiments.t1_bits pts in
  Alcotest.(check int) "t1 rows = points + slope + normalised" 5 (List.length t1);
  let t2 = Experiments.t2_latency pts in
  Alcotest.(check int) "t2 rows" 3 (List.length t2);
  let t10 = Experiments.t10_crossover pts in
  Alcotest.(check int) "t10 rows" 3 (List.length t10)

let test_t5_table () =
  let rows = Experiments.t5_election ~candidates:128 ~trials:40 () in
  Alcotest.(check int) "five sweep rows" 5 (List.length rows)

let test_t7_table () =
  let rows = Experiments.t7_hiding ~trials:2000 () in
  Alcotest.(check int) "five rows" 5 (List.length rows)

let test_t8_table () =
  let rows = Experiments.t8_samplers ~r:256 ~s:256 () in
  Alcotest.(check int) "five degrees" 5 (List.length rows)

let test_universe_reduction () =
  let n = 32 in
  let params = Params.practical n in
  let model_budget = Params.corruption_budget params in
  let strategy =
    Ks_sim.Adversary.make ~name:"half-upfront"
      ~initial_corruptions:(fun rng ~n ~budget:_ ->
        Ks_sim.Adversary.uniform_random_set rng ~n ~budget:(model_budget / 2))
      ()
  in
  let r =
    Ks_core.Universe.reduce ~params ~seed:3L ~behavior:Ks_core.Comm.Garbage
      ~strategy ~budget:model_budget ()
  in
  Alcotest.(check bool) "committee nonempty" true
    (Array.length r.Ks_core.Universe.committee > 0);
  Alcotest.(check bool) "representative at election" true
    (r.Ks_core.Universe.good_at_election >= 0.5);
  Alcotest.(check bool) "hunt hurts the processors" true
    (r.Ks_core.Universe.good_after_hunt <= r.Ks_core.Universe.good_at_election);
  (* The arrays survive the hunt: coins stay mostly common. *)
  Alcotest.(check bool)
    (Printf.sprintf "coins still common (%.2f)" r.Ks_core.Universe.coin_commonality)
    true
    (r.Ks_core.Universe.coin_commonality >= 0.6)

let () =
  Alcotest.run "experiments"
    [
      ( "workload",
        [
          Alcotest.test_case "inputs" `Quick test_inputs_shapes;
          Alcotest.test_case "budgets" `Quick test_budgets;
          Alcotest.test_case "eclipse" `Quick test_eclipse_targets_whole_leaves;
          Alcotest.test_case "creeping budget" `Quick test_creeping_spends_gradually;
          Alcotest.test_case "vote flipper" `Quick test_vote_flipper_echoes_minority;
        ] );
      ( "tables",
        [
          Alcotest.test_case "t1/t2/t10 synthetic" `Quick test_t1_t2_t10_tables_from_synthetic_points;
          Alcotest.test_case "t5" `Quick test_t5_table;
          Alcotest.test_case "t7" `Slow test_t7_table;
          Alcotest.test_case "t8" `Slow test_t8_table;
          Alcotest.test_case "universe reduction" `Slow test_universe_reduction;
        ] );
    ]
