module Election = Ks_core.Election
module Params = Ks_core.Params
module Prng = Ks_stdx.Prng

let test_num_bins () =
  Alcotest.(check int) "basic" 16 (Election.num_bins ~candidates:64 ~winners:4);
  Alcotest.(check int) "at least 2" 2 (Election.num_bins ~candidates:3 ~winners:4);
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Election.num_bins: no candidates") (fun () ->
      ignore (Election.num_bins ~candidates:0 ~winners:1))

let test_bin_of_word () =
  Alcotest.(check int) "mod" 3 (Election.bin_of_word ~num_bins:8 11);
  Alcotest.(check int) "negative-safe" 5 (Election.bin_of_word ~num_bins:8 (-3))

let test_lightest_bin () =
  (* bins: candidate choices; bin 1 has one selector, bin 0 two, bin 2 three. *)
  let bins = [| 0; 0; 1; 2; 2; 2 |] in
  Alcotest.(check int) "lightest" 1 (Election.lightest_bin ~num_bins:3 bins);
  (* An empty bin is lightest (paper-literal semantics; padding then
     fills the winner set). *)
  let empty = [| 0; 1 |] in
  Alcotest.(check int) "empty bin is lightest" 2 (Election.lightest_bin ~num_bins:3 empty);
  (* Ties among equally light bins break to the lowest index. *)
  let tie = [| 0; 1; 0; 1 |] in
  Alcotest.(check int) "tie to low" 0 (Election.lightest_bin ~num_bins:2 tie)

let test_winner_indices () =
  let bins = [| 0; 1; 1; 0; 2; 1 |] in
  (* bin 2 is lightest with candidate 4 only; pad to 3 with 0 and 1. *)
  let w = Election.winner_indices ~num_bins:3 ~target:3 bins in
  Alcotest.(check (array int)) "padded winners" [| 0; 1; 4 |] w

let test_winner_no_padding_needed () =
  let bins = [| 0; 0; 1; 1; 2 |] in
  let w = Election.winner_indices ~num_bins:3 ~target:1 bins in
  Alcotest.(check (array int)) "lightest only" [| 4 |] w

let test_winner_target_capped () =
  let bins = [| 0; 0 |] in
  let w = Election.winner_indices ~num_bins:2 ~target:10 bins in
  Alcotest.(check int) "cannot exceed candidates" 2 (Array.length w)

let test_empty () =
  Alcotest.(check (array int)) "no candidates" [||]
    (Election.winner_indices ~num_bins:2 ~target:3 [||])

let prop_winner_count =
  QCheck.Test.make ~name:"winner count = min(target, r) when lightest fits" ~count:200
    QCheck.(triple (int_range 1 100) (int_range 2 16) (int_range 1 20))
    (fun (r, num_bins, target) ->
      let rng = Prng.create (Int64.of_int ((r * 31) + num_bins)) in
      let bins = Array.init r (fun _ -> Prng.int rng num_bins) in
      let w = Election.winner_indices ~num_bins ~target bins in
      (* Winners are sorted, distinct, within range; the count never
         falls below min(target, r). *)
      let sorted = Array.copy w in
      Array.sort compare sorted;
      sorted = w
      && Array.for_all (fun i -> i >= 0 && i < r) w
      && Array.length w >= Stdlib.min target r
      && Array.length w <= r)

let prop_lightest_is_lightest =
  QCheck.Test.make ~name:"lightest bin has minimal count" ~count:200
    QCheck.(pair (int_range 1 80) (int_range 2 10))
    (fun (r, num_bins) ->
      let rng = Prng.create (Int64.of_int ((r * 7) + num_bins)) in
      let bins = Array.init r (fun _ -> Prng.int rng num_bins) in
      let counts = Array.make num_bins 0 in
      Array.iter (fun b -> counts.(b) <- counts.(b) + 1) bins;
      let light = Election.lightest_bin ~num_bins bins in
      Array.for_all (fun c -> counts.(light) <= c) counts)

let test_params_profiles () =
  let p = Params.practical 256 in
  ignore (Params.validate p);
  Alcotest.(check bool) "budget below n/3" true
    (Params.corruption_budget p < 256 / 3 + 1);
  let t = Params.theoretical 1024 in
  Alcotest.(check bool) "theoretical k1 = log^3" true (t.Params.k1 = 1000);
  Alcotest.check_raises "tiny n rejected"
    (Invalid_argument "Params.practical: n must be at least 16") (fun () ->
      ignore (Params.practical 8))

let test_share_threshold_policies () =
  let p = Params.practical 64 in
  let third = Params.share_threshold p ~holders:12 in
  Alcotest.(check int) "third policy" 3 third;
  let p2 = { p with Params.share_policy = Params.Half_minus_one } in
  Alcotest.(check int) "half policy" 5 (Params.share_threshold p2 ~holders:12);
  Alcotest.(check int) "degenerate holders" 0 (Params.share_threshold p ~holders:1)

let test_tree_config_roundtrip () =
  let p = Params.practical 128 in
  let cfg = Params.tree_config p in
  Alcotest.(check int) "n" 128 cfg.Ks_topology.Tree.n;
  Alcotest.(check int) "q" p.Params.q cfg.Ks_topology.Tree.q;
  (* The tree it induces must build. *)
  let t = Ks_topology.Tree.build (Prng.create 2L) cfg in
  Alcotest.(check bool) "at least 3 levels" true (Ks_topology.Tree.levels t >= 3)

let () =
  Alcotest.run "election"
    [
      ( "feige",
        [
          Alcotest.test_case "num_bins" `Quick test_num_bins;
          Alcotest.test_case "bin_of_word" `Quick test_bin_of_word;
          Alcotest.test_case "lightest bin" `Quick test_lightest_bin;
          Alcotest.test_case "winners with padding" `Quick test_winner_indices;
          Alcotest.test_case "winners exact" `Quick test_winner_no_padding_needed;
          Alcotest.test_case "target capped" `Quick test_winner_target_capped;
          Alcotest.test_case "empty" `Quick test_empty;
          QCheck_alcotest.to_alcotest prop_winner_count;
          QCheck_alcotest.to_alcotest prop_lightest_is_lightest;
        ] );
      ( "params",
        [
          Alcotest.test_case "profiles" `Quick test_params_profiles;
          Alcotest.test_case "share thresholds" `Quick test_share_threshold_policies;
          Alcotest.test_case "tree config" `Quick test_tree_config_roundtrip;
        ] );
    ]
