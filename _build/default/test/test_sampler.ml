module Sampler = Ks_sampler.Sampler
module Prng = Ks_stdx.Prng

let rng () = Prng.create 99L

let test_shapes () =
  let s = Sampler.create (rng ()) ~r:100 ~s:50 ~d:8 in
  Alcotest.(check int) "r" 100 (Sampler.r s);
  Alcotest.(check int) "s" 50 (Sampler.s s);
  Alcotest.(check int) "d" 8 (Sampler.d s);
  for x = 0 to 99 do
    let m = Sampler.eval s x in
    Alcotest.(check int) "multiset size" 8 (Array.length m);
    Array.iter (fun e -> Alcotest.(check bool) "element range" true (e >= 0 && e < 50)) m
  done

let test_eval_out_of_range () =
  let s = Sampler.create (rng ()) ~r:10 ~s:10 ~d:2 in
  Alcotest.check_raises "negative" (Invalid_argument "Sampler.eval: input out of range")
    (fun () -> ignore (Sampler.eval s (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Sampler.eval: input out of range")
    (fun () -> ignore (Sampler.eval s 10))

let test_distinct () =
  let s = Sampler.create_distinct (rng ()) ~r:50 ~s:20 ~d:10 in
  for x = 0 to 49 do
    let m = Array.copy (Sampler.eval s x) in
    Array.sort compare m;
    for i = 1 to 9 do
      Alcotest.(check bool) "distinct elements" true (m.(i) <> m.(i - 1))
    done
  done

let test_distinct_rejects_oversize () =
  Alcotest.check_raises "d > s" (Invalid_argument "Sampler.create_distinct: d > s")
    (fun () -> ignore (Sampler.create_distinct (rng ()) ~r:5 ~s:3 ~d:4))

let test_degree_consistency () =
  let s = Sampler.create (rng ()) ~r:64 ~s:32 ~d:4 in
  let total = ref 0 in
  for y = 0 to 31 do
    total := !total + Sampler.degree s y
  done;
  Alcotest.(check int) "degrees sum to r*d" (64 * 4) !total;
  Alcotest.(check bool) "max degree sane" true (Sampler.max_degree s >= (64 * 4) / 32)

let test_bad_fraction () =
  let s = Sampler.create_distinct (rng ()) ~r:10 ~s:10 ~d:10 in
  (* d = s means every multiset is the full population. *)
  let bad = Array.init 10 (fun i -> i < 3) in
  for x = 0 to 9 do
    Alcotest.(check (float 1e-9)) "full-population fraction" 0.3
      (Sampler.bad_fraction s ~bad x)
  done;
  Alcotest.(check (float 1e-9)) "no exceeders at theta=0" 0.0
    (Sampler.exceeding_inputs s ~bad ~theta:0.0)

let test_exceeding_monotone_in_theta () =
  let rng = rng () in
  let s = Sampler.create rng ~r:256 ~s:256 ~d:16 in
  let bad = Array.init 256 (fun i -> i mod 3 = 0) in
  let e1 = Sampler.exceeding_inputs s ~bad ~theta:0.05 in
  let e2 = Sampler.exceeding_inputs s ~bad ~theta:0.15 in
  let e3 = Sampler.exceeding_inputs s ~bad ~theta:0.30 in
  Alcotest.(check bool) "monotone decreasing" true (e1 >= e2 && e2 >= e3)

let test_quality_improves_with_degree () =
  let rng = rng () in
  let delta d =
    let s = Sampler.create rng ~r:512 ~s:512 ~d in
    Sampler.estimate_delta rng s ~theta:0.15 ~trials:10 ~set_fraction:(1.0 /. 3.0)
  in
  let d8 = delta 8 and d64 = delta 64 in
  Alcotest.(check bool)
    (Printf.sprintf "delta(64)=%.3f <= delta(8)=%.3f" d64 d8)
    true (d64 <= d8)

let prop_exceeding_bounded =
  QCheck.Test.make ~name:"exceeding_inputs in [0,1]" ~count:50 QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let s = Sampler.create rng ~r:64 ~s:64 ~d:8 in
      let bad = Array.init 64 (fun _ -> Prng.bool rng) in
      let e = Sampler.exceeding_inputs s ~bad ~theta:0.1 in
      e >= 0.0 && e <= 1.0)

let () =
  Alcotest.run "sampler"
    [
      ( "structure",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "eval bounds" `Quick test_eval_out_of_range;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "distinct oversize" `Quick test_distinct_rejects_oversize;
          Alcotest.test_case "degrees" `Quick test_degree_consistency;
        ] );
      ( "quality",
        [
          Alcotest.test_case "bad fraction" `Quick test_bad_fraction;
          Alcotest.test_case "theta monotone" `Quick test_exceeding_monotone_in_theta;
          Alcotest.test_case "degree improves delta" `Quick
            test_quality_improves_with_degree;
          QCheck_alcotest.to_alcotest prop_exceeding_bounded;
        ] );
    ]
