(* ba_sim — command-line driver for the King–Saia reproduction.

   Run one protocol at a chosen size, adversary and seed, and print the
   outcome and communication costs:

     ba_sim run --protocol everywhere -n 128 --adversary byz-static --seed 7
     ba_sim run --protocol rabin -n 256 --adversary crash
     ba_sim inspect -n 1024            # show parameters, tree and layout
*)

module Params = Ks_core.Params
module Attacks = Ks_workload.Attacks
module Inputs = Ks_workload.Inputs
module Prng = Ks_stdx.Prng
open Cmdliner

let scenario_of_name name =
  match List.find_opt (fun s -> s.Attacks.label = name) Attacks.all with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown adversary %S (one of: %s)" name
         (String.concat ", " (List.map (fun s -> s.Attacks.label) Attacks.all)))

let attack_of_name name =
  match Ks_attacks.find name with
  | Some a -> Ok a
  | None ->
    Error
      (Printf.sprintf "unknown attack %S (one of: %s; see --list-attacks)" name
         (String.concat ", "
            (List.map (fun a -> a.Ks_attacks.name) Ks_attacks.all)))

let inputs_of_name rng ~n = function
  | "split" -> Ok (Inputs.generate rng ~n Inputs.Split)
  | "random" -> Ok (Inputs.generate rng ~n Inputs.Random)
  | "zeros" -> Ok (Inputs.generate rng ~n Inputs.All_zero)
  | "ones" -> Ok (Inputs.generate rng ~n Inputs.All_one)
  | other -> Error (Printf.sprintf "unknown inputs %S (split|random|zeros|ones)" other)

(* Documented exit codes (docs/FAULTS.md, pinned by test/test_cli.ml):
   0 = agreed cleanly, 3 = degraded but agreed (decode failures detected
   and/or re-request rounds spent), 4 = failed (no agreement, or an
   invariant violation).  Usage errors keep cmdliner's 124. *)
let exit_agreed = 0
let exit_degraded = 3
let exit_failed = 4

let report_everywhere ~label ~budget ~n r =
  Printf.printf "everywhere BA: n=%d adversary=%s budget=%d\n" n label budget;
  Printf.printf "  success=%b safe=%b value=%s\n" r.Ks_core.Everywhere.success
    r.Ks_core.Everywhere.safe
    (match r.Ks_core.Everywhere.agreed_value with
     | Some v -> string_of_int v
     | None -> "-");
  Printf.printf "  a.e. agreement=%.1f%% (tournament), rounds ae=%d a2e=%d\n"
    (100.0 *. r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.agreement)
    r.Ks_core.Everywhere.ae_rounds r.Ks_core.Everywhere.a2e_rounds;
  Printf.printf "  max bits/proc: tournament=%d amplify=%d total=%d\n"
    r.Ks_core.Everywhere.max_sent_bits_ae r.Ks_core.Everywhere.max_sent_bits_a2e
    r.Ks_core.Everywhere.max_sent_bits_total;
  Printf.printf
    "  degraded=%b decode_failures=%d retries_used=%d shortfalls=%d quarantined=%d\n"
    r.Ks_core.Everywhere.degraded r.Ks_core.Everywhere.decode_failures
    r.Ks_core.Everywhere.retries_used
    r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.quorum_shortfalls
    (Ks_core.Comm.quarantine_events r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm);
  if not r.Ks_core.Everywhere.success then begin
    Printf.printf "  FAILED: no everywhere agreement\n";
    `Ok exit_failed
  end
  else if r.Ks_core.Everywhere.degraded then `Ok exit_degraded
  else `Ok exit_agreed

let run_everywhere ~retries ~quarantine ~params ~scenario ~seed ~inputs =
  let n = params.Params.n in
  let budget = Attacks.budget_of scenario ~params in
  let tree = Ks_topology.Tree.build (Prng.create seed) (Params.tree_config params) in
  let r =
    Ks_core.Everywhere.run ~retries ~quarantine ~params ~seed ~inputs
      ~behavior:scenario.Attacks.behavior
      ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
      ~a2e_strategy:(fun ~carried ~coin ->
        Attacks.a2e_strategy scenario ~params ~coin ~carried)
      ~budget ()
  in
  report_everywhere ~label:scenario.Attacks.label ~budget ~n r

(* Attack runs aim at the protocol's real topology: the tree the attack
   strategies target is rebuilt from the same seed plumbing
   [Everywhere.run] uses internally, not the CLI seed directly. *)
let run_everywhere_attack ~retries ~quarantine ~params ~atk ~fraction ~seed ~inputs =
  let n = params.Params.n in
  let budget = Ks_attacks.budget ~params ~fraction in
  let tree =
    Ks_attacks.protocol_tree ~params ~ae_seed:(Ks_attacks.ae_seed_of seed)
  in
  let r =
    Ks_core.Everywhere.run ~retries ~quarantine ~params ~seed ~inputs
      ~behavior:atk.Ks_attacks.behavior
      ~tree_strategy:(atk.Ks_attacks.tree ~params ~tree)
      ~a2e_strategy:(fun ~carried ~coin ->
        atk.Ks_attacks.a2e ~params ~carried ~coin)
      ~budget ()
  in
  report_everywhere ~label:("attack:" ^ atk.Ks_attacks.name) ~budget ~n r

let run_ae ~retries ~quarantine ~params ~scenario ~seed ~inputs =
  let tree = Ks_topology.Tree.build (Prng.create seed) (Params.tree_config params) in
  let r =
    Ks_core.Ae_ba.run ~retries ~quarantine ~params ~seed ~inputs
      ~behavior:scenario.Attacks.behavior
      ~strategy:(Attacks.tree_strategy scenario ~params ~tree)
      ~budget:(Attacks.budget_of scenario ~params) ()
  in
  Printf.printf "almost-everywhere BA: agreement=%.1f%% majority=%b valid=%b\n"
    (100.0 *. r.Ks_core.Ae_ba.agreement)
    r.Ks_core.Ae_ba.majority r.Ks_core.Ae_ba.valid;
  List.iter
    (fun (e : Ks_core.Ae_ba.election_stats) ->
      Printf.printf "  election l%d/n%d: %d cands -> %d winners (good %.0f%%)\n"
        e.level e.node (Array.length e.candidates) (Array.length e.winners)
        (100.0 *. e.good_winner_fraction))
    r.Ks_core.Ae_ba.elections;
  let decode_failures = Ks_core.Comm.decode_failures r.Ks_core.Ae_ba.comm in
  let retries_used = Ks_core.Comm.retries_used r.Ks_core.Ae_ba.comm in
  Printf.printf "  decode_failures=%d retries_used=%d shortfalls=%d quarantined=%d\n"
    decode_failures retries_used r.Ks_core.Ae_ba.quorum_shortfalls
    (Ks_core.Comm.quarantine_events r.Ks_core.Ae_ba.comm);
  if decode_failures > 0 || retries_used > 0 then `Ok exit_degraded
  else `Ok exit_agreed

let run_ae_attack ~retries ~quarantine ~params ~atk ~fraction ~seed ~inputs =
  (* Standalone [Ae_ba.run] builds its tree from its own seed (no
     tournament-seed derivation step), so mirror that here. *)
  let tree =
    Ks_topology.Tree.build
      (Prng.split (Prng.create seed))
      (Params.tree_config params)
  in
  let r =
    Ks_core.Ae_ba.run ~retries ~quarantine ~params ~seed ~inputs
      ~behavior:atk.Ks_attacks.behavior
      ~strategy:(atk.Ks_attacks.tree ~params ~tree)
      ~budget:(Ks_attacks.budget ~params ~fraction) ()
  in
  Printf.printf "almost-everywhere BA: agreement=%.1f%% majority=%b valid=%b\n"
    (100.0 *. r.Ks_core.Ae_ba.agreement)
    r.Ks_core.Ae_ba.majority r.Ks_core.Ae_ba.valid;
  Printf.printf "  decode_failures=%d retries_used=%d shortfalls=%d quarantined=%d\n"
    (Ks_core.Comm.decode_failures r.Ks_core.Ae_ba.comm)
    (Ks_core.Comm.retries_used r.Ks_core.Ae_ba.comm)
    r.Ks_core.Ae_ba.quorum_shortfalls
    (Ks_core.Comm.quarantine_events r.Ks_core.Ae_ba.comm);
  if not (r.Ks_core.Ae_ba.majority && r.Ks_core.Ae_ba.valid) then begin
    Printf.printf "  FAILED: no almost-everywhere majority\n";
    `Ok exit_failed
  end
  else if
    Ks_core.Comm.decode_failures r.Ks_core.Ae_ba.comm > 0
    || Ks_core.Comm.retries_used r.Ks_core.Ae_ba.comm > 0
  then `Ok exit_degraded
  else `Ok exit_agreed

let run_rabin_attack ~params ~atk ~fraction ~seed ~inputs =
  let n = params.Params.n in
  let budget = Ks_attacks.budget ~params ~fraction in
  let lg = Ks_stdx.Intmath.ceil_log2 n in
  let o =
    Ks_baselines.Rabin.run ~seed ~n ~budget ~rounds:((2 * lg) + 6)
      ~epsilon:params.Params.epsilon ~inputs
      ~strategy:(atk.Ks_attacks.vote ~params)
  in
  Printf.printf "baseline: agreement=%b validity=%b rounds=%d max bits/proc=%d\n"
    o.Ks_baselines.Outcome.agreement o.Ks_baselines.Outcome.validity
    o.Ks_baselines.Outcome.rounds o.Ks_baselines.Outcome.max_sent_bits;
  if o.Ks_baselines.Outcome.agreement then `Ok exit_agreed
  else begin
    Printf.printf "  FAILED: disagreement\n";
    `Ok exit_failed
  end

let run_baseline name ~params ~scenario ~seed ~inputs =
  let n = params.Params.n in
  let budget = Attacks.budget_of scenario ~params in
  let lg = Ks_stdx.Intmath.ceil_log2 n in
  let o =
    match name with
    | `Rabin ->
      Ks_baselines.Rabin.run ~seed ~n ~budget ~rounds:((2 * lg) + 6)
        ~epsilon:params.Params.epsilon ~inputs
        ~strategy:(Attacks.vote_flipper scenario ~params)
    | `Phase_king ->
      let faults = Stdlib.min budget (Stdlib.max 1 ((n / 4) - 1)) in
      Ks_baselines.Phase_king.run ~seed ~n ~budget:faults ~faults ~inputs
        ~strategy:(Attacks.generic_strategy scenario ~params)
    | `Ben_or ->
      Ks_baselines.Ben_or.run ~seed ~n ~budget:(Stdlib.min budget (n / 6))
        ~max_phases:(4 * lg) ~inputs
        ~strategy:(Attacks.generic_strategy scenario ~params)
  in
  Printf.printf "baseline: agreement=%b validity=%b rounds=%d max bits/proc=%d\n"
    o.Ks_baselines.Outcome.agreement o.Ks_baselines.Outcome.validity
    o.Ks_baselines.Outcome.rounds o.Ks_baselines.Outcome.max_sent_bits;
  if o.Ks_baselines.Outcome.agreement then `Ok exit_agreed
  else begin
    Printf.printf "  FAILED: disagreement\n";
    `Ok exit_failed
  end

let setup_logging verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let run_async ~n ~scenario ~seed ~inputs =
  let f = Stdlib.min ((n - 2) / 3) (Stdlib.max 0 (n / 4)) in
  let byz =
    match scenario.Attacks.behavior with
    | Ks_core.Comm.Silent -> Ks_async.Async_ba.Silent
    | Ks_core.Comm.Follow | Ks_core.Comm.Garbage | Ks_core.Comm.Flip
    | Ks_core.Comm.Equivocate ->
      Ks_async.Async_ba.Equivocate
  in
  let f = if scenario.Attacks.label = "honest" then 0 else f in
  let o =
    Ks_async.Async_ba.run ~seed ~n ~f ~inputs ~byz
      ~scheduler:Ks_async.Async_net.Fair ~max_events:8_000_000 ()
  in
  Printf.printf
    "async BA (MMR'14, coin oracle): n=%d f=%d\n\
    \  agreement=%b validity=%b rounds=%d deliveries=%d max bits/proc=%d\n"
    n f o.Ks_async.Async_ba.agreement o.Ks_async.Async_ba.validity
    o.Ks_async.Async_ba.max_rounds o.Ks_async.Async_ba.events
    o.Ks_async.Async_ba.max_sent_bits;
  if o.Ks_async.Async_ba.agreement then `Ok exit_agreed
  else begin
    Printf.printf "  FAILED: disagreement\n";
    `Ok exit_failed
  end

(* Every run executes under the invariant monitors: the accounting set of
   [Experiments.standard_monitors] plus agreement/validity over the actual
   decisions.  [--trace FILE] additionally streams the JSONL event trace. *)
let monitored ?(envelopes = true) ~trace_file ~inputs f =
  match
    try Ok (Option.map Ks_monitor.Trace.file trace_file)
    with Sys_error e -> Error (`Error (false, Printf.sprintf "--trace: %s" e))
  with
  | Error e -> e
  | Ok trace ->
  (* Attack runs flood crafted traffic and may corrupt past 1/3 on
     purpose, so the bit/round envelopes do not apply to them; the
     budget, agreement and validity invariants always do. *)
  let monitors =
    (if envelopes then Ks_workload.Experiments.standard_monitors ()
     else [ Ks_monitor.Monitor.corruption_budget () ])
    @ [
        Ks_monitor.Monitor.agreement ();
        Ks_monitor.Monitor.validity ~inputs:(Array.map Bool.to_int inputs);
      ]
  in
  let hub = Ks_monitor.Hub.create ?trace monitors in
  let result = Ks_monitor.Hub.with_ambient hub f in
  match Ks_monitor.Hub.finish hub with
  | [] -> result
  | vs ->
    prerr_string (Ks_monitor.Hub.render_violations vs);
    Printf.eprintf "FAILED: %d invariant violation(s)\n" (List.length vs);
    `Ok exit_failed

let run_cmd verbose protocol n adversary attack fraction no_quarantine seed inputs
    trace_file faults retries_opt =
  setup_logging verbose;
  match scenario_of_name adversary with
  | Error e -> `Error (false, e)
  | Ok scenario -> (
    match
      match attack with
      | None -> Ok None
      | Some name -> Result.map Option.some (attack_of_name name)
    with
    | Error e -> `Error (false, e)
    | Ok (Some _) when fraction < 0. || fraction > 1. ->
      `Error (false, Printf.sprintf "--corrupt %g is not a fraction in [0,1]" fraction)
    | Ok atk -> (
      match
        match faults with
        | None -> Ok None
        | Some s -> Result.map Option.some (Ks_faults.Plan.of_string_or_preset s)
      with
      | Error e -> `Error (false, e)
      | Ok plan ->
        let params = Params.practical n in
        let rng = Prng.create (Int64.of_int seed) in
        (match inputs_of_name rng ~n inputs with
         | Error e -> `Error (false, e)
         | Ok input_bits ->
           let seed = Int64.of_int seed in
           let quarantine = not no_quarantine in
           (* Bounded retry defaults on exactly when faults are injected:
              plain runs stay bit-identical to the pre-fault-layer code. *)
           let retries =
             match retries_opt with
             | Some r -> Stdlib.max 0 r
             | None -> ( match plan with Some _ -> 2 | None -> 0)
           in
           let go () =
             match atk with
             | Some atk ->
               monitored ~envelopes:false ~trace_file ~inputs:input_bits (fun () ->
                   match protocol with
                   | "everywhere" ->
                     run_everywhere_attack ~retries ~quarantine ~params ~atk
                       ~fraction ~seed ~inputs:input_bits
                   | "ae" ->
                     run_ae_attack ~retries ~quarantine ~params ~atk ~fraction
                       ~seed ~inputs:input_bits
                   | "rabin" ->
                     run_rabin_attack ~params ~atk ~fraction ~seed
                       ~inputs:input_bits
                   | other ->
                     `Error
                       ( false,
                         Printf.sprintf
                           "--attack supports everywhere, ae and rabin (got %S)"
                           other ))
             | None ->
               monitored ~trace_file ~inputs:input_bits (fun () ->
                   match protocol with
                   | "everywhere" ->
                     run_everywhere ~retries ~quarantine ~params ~scenario ~seed
                       ~inputs:input_bits
                   | "ae" ->
                     run_ae ~retries ~quarantine ~params ~scenario ~seed
                       ~inputs:input_bits
                   | "rabin" ->
                     run_baseline `Rabin ~params ~scenario ~seed ~inputs:input_bits
                   | "phase-king" ->
                     run_baseline `Phase_king ~params ~scenario ~seed
                       ~inputs:input_bits
                   | "ben-or" ->
                     run_baseline `Ben_or ~params ~scenario ~seed
                       ~inputs:input_bits
                   | "async" -> run_async ~n ~scenario ~seed ~inputs:input_bits
                   | other ->
                     `Error
                       ( false,
                         Printf.sprintf
                           "unknown protocol %S \
                            (everywhere|ae|rabin|phase-king|ben-or|async)"
                           other ))
           in
           (match plan with
            | Some p -> Ks_faults.Plan.with_plan p go
            | None -> go ()))))

let inspect_cmd n theoretical =
  let params = if theoretical then Params.theoretical n else Params.practical n in
  Format.printf "parameters: %a@." Params.pp params;
  if not theoretical then begin
    let tree = Ks_topology.Tree.build (Prng.create 1L) (Params.tree_config params) in
    Printf.printf "tree: %d levels\n" (Ks_topology.Tree.levels tree);
    for level = 1 to Ks_topology.Tree.levels tree do
      Printf.printf "  level %d: %d nodes x %d members\n" level
        (Ks_topology.Tree.node_count tree ~level)
        (Ks_topology.Tree.node_size tree ~level)
    done;
    let layout = Ks_core.Ae_ba.Layout.make params tree in
    Printf.printf "candidate array: %d words " layout.Ks_core.Ae_ba.Layout.total;
    Printf.printf "(election blocks + root coin + amplification coin)\n";
    Printf.printf "corruption budget: %d (%.1f%% of n)\n"
      (Params.corruption_budget params)
      (100.0 *. float_of_int (Params.corruption_budget params) /. float_of_int n)
  end;
  `Ok 0

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Number of processors.")

let protocol_arg =
  Arg.(
    value
    & opt string "everywhere"
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"Protocol: everywhere, ae, rabin, phase-king, ben-or or async.")

let adversary_arg =
  Arg.(
    value
    & opt string "byz-static"
    & info [ "a"; "adversary" ] ~docv:"ADV"
        ~doc:"Adversary: honest, crash, byz-static, byz-adaptive, eclipse or flood.")

let attack_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "attack" ] ~docv:"NAME"
        ~doc:
          "Run under an active attack from the attack library (docs/ATTACKS.md); \
           overrides $(b,--adversary).  Supported protocols: everywhere, ae, \
           rabin.  See $(b,ba_sim --list-attacks).")

let corrupt_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "corrupt" ] ~docv:"FRAC"
        ~doc:
          "Corrupted fraction of processors for $(b,--attack) runs.  May \
           deliberately exceed 1/3; capped at n-1 processors.")

let no_quarantine_arg =
  Arg.(
    value
    & flag
    & info [ "no-quarantine" ]
        ~doc:
          "Disarm the tree phase's provable-misbehaviour quarantine layer \
           (armed by default; see docs/ATTACKS.md).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let inputs_arg =
  Arg.(
    value
    & opt string "split"
    & info [ "inputs" ] ~doc:"Input assignment: split, random, zeros or ones.")

let theoretical_arg =
  Arg.(value & flag & info [ "theoretical" ] ~doc:"Show the paper-faithful profile.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log protocol phases to stderr.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the structured JSONL event trace (rounds, sends, corruptions, \
           decisions, meters) to $(docv).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Benign-fault plan: a preset name (see $(b,ba_sim --list-faults)) or \
           a comma-separated key=value list (see docs/FAULTS.md): drop, dup, \
           crash, recover, silence, silence_len, max_down, seed.  Example: \
           drop=0.1,dup=0.02,crash=0.01,recover=0.3.  Faults never consume \
           the adversary's corruption budget.")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-request rounds allowed per failed robust decode in the tree phase \
           (graceful degradation).  Defaults to 2 when $(b,--faults) is given, 0 \
           otherwise.")

let run_term =
  Term.(
    ret
      (const run_cmd $ verbose_arg $ protocol_arg $ n_arg $ adversary_arg
     $ attack_arg $ corrupt_arg $ no_quarantine_arg $ seed_arg $ inputs_arg
     $ trace_arg $ faults_arg $ retries_arg))

let inspect_term = Term.(ret (const inspect_cmd $ n_arg $ theoretical_arg))

let cmds =
  [
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a protocol once and print the outcome.  Exit codes: 0 = agreed, \
            3 = degraded but agreed, 4 = failed (no agreement or invariant \
            violation), 124 = usage error.")
      run_term;
    Cmd.v
      (Cmd.info "inspect" ~doc:"Print the derived parameters, tree shape and layout.")
      inspect_term;
  ]

(* Top-level catalog listings ([ba_sim --list-attacks] / [--list-faults]);
   with neither flag the default term falls back to the group help, so
   plain [ba_sim] stays informative. *)
let list_cmd list_attacks list_faults =
  if list_attacks then begin
    List.iter
      (fun a -> Printf.printf "%-18s %s\n" a.Ks_attacks.name a.Ks_attacks.doc)
      Ks_attacks.all;
    `Ok 0
  end
  else if list_faults then begin
    List.iter
      (fun (name, plan, doc) ->
        Printf.printf "%-8s %s\n%8s   (%s)\n" name doc ""
          (Ks_faults.Plan.to_string plan))
      Ks_faults.Plan.presets;
    `Ok 0
  end
  else `Help (`Auto, None)

let list_attacks_arg =
  Arg.(
    value
    & flag
    & info [ "list-attacks" ]
        ~doc:"List the attack library's strategies (for $(b,run --attack)) and exit.")

let list_faults_arg =
  Arg.(
    value
    & flag
    & info [ "list-faults" ]
        ~doc:"List the named benign-fault presets (for $(b,run --faults)) and exit.")

let default_term = Term.(ret (const list_cmd $ list_attacks_arg $ list_faults_arg))

let () =
  let info =
    Cmd.info "ba_sim" ~version:"1.0.0"
      ~doc:"Scalable Byzantine agreement (King-Saia PODC'10) simulator"
  in
  (* [eval_value] instead of [eval]: the run commands' return value is the
     process exit code (0/3/4, documented above), while usage and internal
     errors keep cmdliner's distinct 124/125. *)
  match Cmd.eval_value (Cmd.group ~default:default_term info cmds) with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit 0
  | Error (`Parse | `Term) -> exit Cmd.Exit.cli_error
  | Error `Exn -> exit Cmd.Exit.internal_error
