(* ks_lint — the repository's determinism & bit-accounting linter.

   Usage: ks_lint.exe [PATH ...]
   Lints every .ml file under the given files/directories (default: the
   checked-in source roots).  Exit 0 when clean, 1 when any rule fires,
   2 on usage or I/O errors.  See docs/LINT.md for the rules. *)

module L = Ks_lint_rules

let default_roots = [ "lib"; "bin"; "bench"; "examples"; "test" ]

let usage oc =
  output_string oc
    (String.concat "\n"
       [
         "usage: ks_lint.exe [PATH ...]";
         "  Lints .ml files under each PATH (file or directory).";
         Printf.sprintf "  With no PATH, lints: %s" (String.concat " " default_roots);
         "  Rules R1-R5 are documented in docs/LINT.md."; "";
       ])

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (fun a -> a = "--help" || a = "-h") args then begin
    usage stdout;
    exit 0
  end;
  (match List.find_opt (fun a -> String.length a > 0 && a.[0] = '-') args with
   | Some flag ->
     Printf.eprintf "ks_lint: unknown option %s\n" flag;
     usage stderr;
     exit 2
   | None -> ());
  let roots = if args = [] then default_roots else args in
  (match List.find_opt (fun r -> not (Sys.file_exists r)) roots with
   | Some missing ->
     Printf.eprintf "ks_lint: no such file or directory: %s\n" missing;
     exit 2
   | None -> ());
  let summary = L.lint_paths roots in
  List.iter (fun d -> print_endline (L.render_diagnostic d)) summary.L.diagnostics;
  List.iter (fun e -> Printf.eprintf "ks_lint: error: %s\n" e) summary.L.errors;
  if summary.L.errors <> [] then exit 2
  else if summary.L.diagnostics <> [] then begin
    Printf.eprintf "ks_lint: %d violation(s) in %d file(s) scanned\n"
      (List.length summary.L.diagnostics)
      summary.L.files;
    exit 1
  end
  else Printf.printf "ks_lint: clean (%d files scanned)\n" summary.L.files
