module Anet = Ks_async.Async_net
module Aba = Ks_async.Async_ba
open Ks_sim.Types

let envelope src dst payload = { src; dst; payload }

let test_net_delivers_everything () =
  let net =
    Anet.create ~seed:1L ~n:4 ~corrupt:[] ~msg_bits:(fun (_ : int) -> 8)
      ~scheduler:Anet.Fair ()
  in
  let seen = ref [] in
  Anet.send net [ envelope 0 1 10; envelope 1 2 20; envelope 2 3 30 ];
  let events =
    Anet.run net
      ~handler:(fun ~me e ->
        seen := (me, e.payload) :: !seen;
        [])
      ~max_events:100
  in
  Alcotest.(check int) "three deliveries" 3 events;
  Alcotest.(check int) "pool drained" 0 (Anet.pending net);
  Alcotest.(check bool) "all arrived" true
    (List.sort compare !seen = [ (1, 10); (2, 20); (3, 30) ])

let test_net_handler_cascade () =
  (* Each delivery to 0 spawns a message to 1, which spawns nothing. *)
  let net =
    Anet.create ~seed:2L ~n:2 ~corrupt:[] ~msg_bits:(fun (_ : int) -> 8)
      ~scheduler:Anet.Fair ()
  in
  Anet.send net [ envelope 1 0 5 ];
  let events =
    Anet.run net
      ~handler:(fun ~me e -> if me = 0 then [ envelope 0 1 (e.payload + 1) ] else [])
      ~max_events:100
  in
  Alcotest.(check int) "two events" 2 events

let test_net_meter_good_only () =
  let net =
    Anet.create ~seed:3L ~n:4 ~corrupt:[ 2 ] ~msg_bits:(fun (_ : int) -> 8)
      ~scheduler:Anet.Fair ()
  in
  Anet.send net [ envelope 0 1 1; envelope 2 1 1 ];
  let m = Anet.meter net in
  Alcotest.(check int) "good sender charged" 8 (Ks_sim.Meter.sent_bits m 0);
  Alcotest.(check int) "corrupt sender free" 0 (Ks_sim.Meter.sent_bits m 2)

let test_net_starvation_is_eventual () =
  (* With only starved traffic pending, it still gets delivered. *)
  let net =
    Anet.create ~seed:4L ~n:3 ~corrupt:[] ~msg_bits:(fun (_ : int) -> 8)
      ~scheduler:(Anet.Delay_targets [ 1 ]) ()
  in
  Anet.send net [ envelope 0 1 42 ];
  let got = ref false in
  ignore
    (Anet.run net
       ~handler:(fun ~me e ->
         if me = 1 && e.payload = 42 then got := true;
         [])
       ~max_events:10);
  Alcotest.(check bool) "starved message eventually delivered" true !got

let run_ba ?(n = 32) ?(f = 10) ?(byz = Aba.Silent) ?(scheduler = Anet.Fair)
    ?(inputs = fun i -> i mod 2 = 0) ?(seed = 7L) () =
  Aba.run ~seed ~n ~f ~inputs:(Array.init n inputs) ~byz ~scheduler
    ~max_events:2_000_000 ()

let test_ba_honest () =
  let o = run_ba ~f:0 () in
  Alcotest.(check bool) "agreement" true o.Aba.agreement;
  Alcotest.(check bool) "validity" true o.Aba.validity

let test_ba_validity_unanimous () =
  let o1 = run_ba ~f:10 ~byz:Aba.Equivocate ~inputs:(fun _ -> true) () in
  Alcotest.(check bool) "agreement" true o1.Aba.agreement;
  Array.iteri
    (fun p d ->
      if not (d = None) then
        Alcotest.(check (option bool)) (Printf.sprintf "proc %d decides 1" p)
          (Some true) d)
    o1.Aba.decided;
  let o0 = run_ba ~f:10 ~byz:Aba.Equivocate ~inputs:(fun _ -> false) () in
  Alcotest.(check bool) "agreement 0" true o0.Aba.agreement

let test_ba_silent_third () =
  let o = run_ba ~f:10 ~byz:Aba.Silent () in
  Alcotest.(check bool) "agreement" true o.Aba.agreement;
  Alcotest.(check bool) "validity" true o.Aba.validity

let test_ba_equivocate_third () =
  let o = run_ba ~f:10 ~byz:Aba.Equivocate () in
  Alcotest.(check bool) "agreement" true o.Aba.agreement;
  Alcotest.(check bool) "validity" true o.Aba.validity

let test_ba_hostile_scheduler () =
  let o =
    run_ba ~f:10 ~byz:Aba.Equivocate
      ~scheduler:(Anet.Delay_targets [ 0; 1; 2; 3 ])
      ()
  in
  Alcotest.(check bool) "agreement despite starvation" true o.Aba.agreement;
  Alcotest.(check bool) "validity" true o.Aba.validity

let test_ba_many_seeds () =
  for seed = 1 to 8 do
    let o = run_ba ~seed:(Int64.of_int seed) ~byz:Aba.Equivocate () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d agreement" seed)
      true o.Aba.agreement
  done

let test_ba_rounds_small () =
  (* Expected-constant rounds with a common coin: generous bound. *)
  let o = run_ba ~f:10 ~byz:Aba.Equivocate () in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d reasonable" o.Aba.max_rounds)
    true (o.Aba.max_rounds <= 20)

let () =
  Alcotest.run "async"
    [
      ( "net",
        [
          Alcotest.test_case "delivers everything" `Quick test_net_delivers_everything;
          Alcotest.test_case "handler cascade" `Quick test_net_handler_cascade;
          Alcotest.test_case "meter good only" `Quick test_net_meter_good_only;
          Alcotest.test_case "starvation eventual" `Quick test_net_starvation_is_eventual;
        ] );
      ( "binary-ba",
        [
          Alcotest.test_case "honest" `Quick test_ba_honest;
          Alcotest.test_case "validity unanimous" `Quick test_ba_validity_unanimous;
          Alcotest.test_case "silent third" `Quick test_ba_silent_third;
          Alcotest.test_case "equivocate third" `Quick test_ba_equivocate_third;
          Alcotest.test_case "hostile scheduler" `Quick test_ba_hostile_scheduler;
          Alcotest.test_case "many seeds" `Slow test_ba_many_seeds;
          Alcotest.test_case "rounds bounded" `Quick test_ba_rounds_small;
        ] );
    ]
