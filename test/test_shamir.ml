module Zp = Ks_field.Zp
module Gf = Ks_field.Gf256
module Sh = Ks_shamir.Shamir.Make (Ks_field.Zp)
module ShG = Ks_shamir.Shamir.Make (Ks_field.Gf256)
module Add = Ks_shamir.Additive.Make (Ks_field.Zp)
module Pz = Ks_field.Poly.Make (Ks_field.Zp)
module Pg = Ks_field.Poly.Make (Ks_field.Gf256)
module OracleZ = Decode_oracle.Make (Ks_field.Zp)
module OracleG = Decode_oracle.Make (Ks_field.Gf256)
module Prng = Ks_stdx.Prng

let rng () = Prng.create 20260706L

let test_roundtrip () =
  let rng = rng () in
  for _ = 1 to 50 do
    let secret = Zp.random rng in
    let shares = Sh.deal rng ~threshold:5 ~holders:16 secret in
    match Sh.reconstruct ~threshold:5 (Array.to_list shares) with
    | Some v -> Alcotest.(check int) "recovers" (Zp.to_int secret) (Zp.to_int v)
    | None -> Alcotest.fail "reconstruction failed"
  done

let test_any_subset_reconstructs () =
  let rng = rng () in
  let secret = Zp.of_int 123456 in
  let shares = Sh.deal rng ~threshold:4 ~holders:12 secret in
  for _ = 1 to 30 do
    let idx = Prng.sample_without_replacement rng ~n:12 ~k:5 in
    let subset = Array.to_list (Array.map (fun i -> shares.(i)) idx) in
    match Sh.reconstruct ~threshold:4 subset with
    | Some v -> Alcotest.(check int) "any 5-subset" 123456 (Zp.to_int v)
    | None -> Alcotest.fail "subset reconstruction failed"
  done

let test_too_few_shares () =
  let rng = rng () in
  let shares = Sh.deal rng ~threshold:4 ~holders:12 (Zp.of_int 9) in
  let subset = Array.to_list (Array.sub shares 0 4) in
  Alcotest.(check bool) "threshold shares insufficient" true
    (Sh.reconstruct ~threshold:4 subset = None)

let test_duplicate_shares_ignored () =
  let rng = rng () in
  let shares = Sh.deal rng ~threshold:2 ~holders:6 (Zp.of_int 77) in
  (* Three distinct + duplicates of one: must reconstruct from distinct. *)
  let subset = [ shares.(0); shares.(0); shares.(1); shares.(1); shares.(2) ] in
  match Sh.reconstruct ~threshold:2 subset with
  | Some v -> Alcotest.(check int) "dedup" 77 (Zp.to_int v)
  | None -> Alcotest.fail "should reconstruct"

let test_hiding_statistical () =
  (* With t shares, the view distribution is independent of the secret:
     compare the first share's low bits across two secrets. *)
  let rng = rng () in
  let buckets = 16 in
  let hist secret =
    let h = Array.make buckets 0 in
    for _ = 1 to 4000 do
      let shares = Sh.deal rng ~threshold:3 ~holders:8 secret in
      let v = Zp.to_int shares.(0).Sh.value mod buckets in
      h.(v) <- h.(v) + 1
    done;
    h
  in
  let h0 = hist Zp.zero and h1 = hist (Zp.of_int 424242) in
  let tv = ref 0.0 in
  for i = 0 to buckets - 1 do
    tv := !tv +. Float.abs (float_of_int (h0.(i) - h1.(i)))
  done;
  let tv = !tv /. (2.0 *. 4000.0) in
  Alcotest.(check bool) (Printf.sprintf "TV small (%.3f)" tv) true (tv < 0.08)

let test_deal_validation () =
  let rng = rng () in
  Alcotest.check_raises "holders <= threshold"
    (Invalid_argument "Shamir.deal: holders <= threshold") (fun () ->
      ignore (Sh.deal rng ~threshold:5 ~holders:5 Zp.zero));
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Shamir.deal: negative threshold") (fun () ->
      ignore (Sh.deal rng ~threshold:(-1) ~holders:5 Zp.zero))

let test_deal_at_positions () =
  let rng = rng () in
  let xs = [| 9; 3; 25; 14; 7; 30 |] in
  let shares = Sh.deal_at rng ~threshold:2 ~xs (Zp.of_int 55) in
  Array.iteri
    (fun i s -> Alcotest.(check int) "index preserved" xs.(i) s.Sh.index)
    shares;
  match Sh.reconstruct ~threshold:2 (Array.to_list shares) with
  | Some v -> Alcotest.(check int) "reconstructs from positions" 55 (Zp.to_int v)
  | None -> Alcotest.fail "failed"

let corrupt_some rng shares ~count =
  let shares = Array.copy shares in
  let idx = Prng.sample_without_replacement rng ~n:(Array.length shares) ~k:count in
  Array.iter
    (fun i -> shares.(i) <- { shares.(i) with Sh.value = Zp.random rng })
    idx;
  shares

let test_robust_corrects_errors () =
  let rng = rng () in
  for _ = 1 to 30 do
    let secret = Zp.random rng in
    (* holders 16, threshold 5: classical radius (16-6)/2 = 5. *)
    let shares = Sh.deal rng ~threshold:5 ~holders:16 secret in
    let bad = corrupt_some rng shares ~count:4 in
    match Sh.reconstruct_robust ~threshold:5 (Array.to_list bad) with
    | Some v -> Alcotest.(check int) "corrected" (Zp.to_int secret) (Zp.to_int v)
    | None -> Alcotest.fail "robust reconstruction failed"
  done

let test_robust_beyond_radius_list_decoding () =
  (* 6 random errors among 16 with k = 6 exceed the BW radius, but random
     errors rarely form a competing codeword, so list decoding wins. *)
  let rng = rng () in
  let ok = ref 0 in
  let trials = 30 in
  for _ = 1 to trials do
    let secret = Zp.random rng in
    let shares = Sh.deal rng ~threshold:5 ~holders:16 secret in
    let bad = corrupt_some rng shares ~count:6 in
    match Sh.reconstruct_robust ~threshold:5 (Array.to_list bad) with
    | Some v when Zp.equal v secret -> incr ok
    | Some _ -> Alcotest.fail "wrong value accepted"
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "decodes beyond radius (%d/%d)" !ok trials)
    true
    (!ok >= trials * 2 / 3)

let test_robust_never_wrong_under_majority_garbage () =
  (* With 8 of 16 shares corrupted the truth is not recoverable; the
     decoder must answer None or (exceptionally) the truth — never a
     confidently wrong value. *)
  let rng = rng () in
  for _ = 1 to 20 do
    let secret = Zp.random rng in
    let shares = Sh.deal rng ~threshold:5 ~holders:16 secret in
    let bad = corrupt_some rng shares ~count:8 in
    match Sh.reconstruct_robust ~threshold:5 (Array.to_list bad) with
    | Some v -> Alcotest.(check int) "only truth accepted" (Zp.to_int secret) (Zp.to_int v)
    | None -> ()
  done

let test_robust_exact_threshold_rejected () =
  (* Exactly t+1 shares carry no redundancy: robust reconstruction must
     refuse rather than trust them blindly. *)
  let rng = rng () in
  let shares = Sh.deal rng ~threshold:5 ~holders:16 (Zp.of_int 8) in
  let subset = Array.to_list (Array.sub shares 0 6) in
  Alcotest.(check bool) "no redundancy -> None" true
    (Sh.reconstruct_robust ~threshold:5 subset = None)

let test_vector_roundtrip () =
  let rng = rng () in
  let words = Array.init 20 (fun i -> Zp.of_int (i * i)) in
  let per_holder = Sh.deal_vector rng ~threshold:4 ~holders:12 words in
  (* Rebuild per-word share lists. *)
  let per_word =
    Array.init 20 (fun w ->
        List.init 12 (fun h ->
            { Sh.index = h; value = per_holder.(h).(w).Sh.value }))
  in
  match Sh.reconstruct_vector ~threshold:4 per_word with
  | Some out ->
    Array.iteri
      (fun i v -> Alcotest.(check int) "word" (i * i) (Zp.to_int v))
      out
  | None -> Alcotest.fail "vector reconstruction failed"

let test_reconstruct_vectors_fast () =
  let rng = rng () in
  for trial = 1 to 20 do
    let words = Array.init 8 (fun i -> Zp.of_int ((trial * 100) + i)) in
    let xs = Array.init 14 (fun i -> i * 2) in
    let per_holder = Sh.deal_vector_at rng ~threshold:4 ~xs words in
    (* Corrupt three whole holders. *)
    let holders =
      List.init 14 (fun h ->
          let v =
            if h < 3 then Array.map (fun _ -> Zp.random rng) per_holder.(h)
            else per_holder.(h)
          in
          (xs.(h), v))
    in
    match Sh.reconstruct_vectors ~threshold:4 holders with
    | Some out ->
      Array.iteri
        (fun i v -> Alcotest.(check int) "word" ((trial * 100) + i) (Zp.to_int v))
        out
    | None -> Alcotest.fail "vector decode failed"
  done

let test_reconstruct_vectors_word_targeted_lie () =
  (* A holder honest on the probe word but lying on a later word must not
     silently poison that word. *)
  let rng = rng () in
  let words = Array.init 6 (fun i -> Zp.of_int (i + 1)) in
  let xs = Array.init 12 (fun i -> i) in
  let per_holder = Sh.deal_vector_at rng ~threshold:3 ~xs words in
  per_holder.(0).(4) <- Zp.random rng;
  let holders = List.init 12 (fun h -> (h, per_holder.(h))) in
  match Sh.reconstruct_vectors ~threshold:3 holders with
  | Some out ->
    Array.iteri (fun i v -> Alcotest.(check int) "word survives lie" (i + 1) (Zp.to_int v)) out
  | None -> Alcotest.fail "should decode"

let test_additive () =
  let rng = rng () in
  for _ = 1 to 20 do
    let secret = Zp.random rng in
    let shares = Add.deal rng ~holders:7 secret in
    Alcotest.(check int) "sum reconstructs" (Zp.to_int secret)
      (Zp.to_int (Add.reconstruct shares))
  done;
  Alcotest.check_raises "zero holders"
    (Invalid_argument "Additive.deal: need at least one holder") (fun () ->
      ignore (Add.deal rng ~holders:0 Zp.zero))

let prop_roundtrip =
  QCheck.Test.make ~name:"deal/reconstruct roundtrip (random t, holders)" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let rng = Prng.create (Int64.of_int ((a * 1000) + b)) in
      let threshold = 1 + (a mod 6) in
      let holders = threshold + 2 + (b mod 8) in
      let secret = Zp.random rng in
      let shares = Sh.deal rng ~threshold ~holders secret in
      match Sh.reconstruct ~threshold (Array.to_list shares) with
      | Some v -> Zp.equal v secret
      | None -> false)

let prop_robust_radius =
  QCheck.Test.make ~name:"robust corrects within radius" ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let rng = Prng.create (Int64.of_int ((a * 7919) + b + 1)) in
      let threshold = 2 + (a mod 4) in
      let holders = (3 * (threshold + 1)) + (b mod 4) in
      let radius = (holders - threshold - 1) / 2 in
      let errors = Stdlib.min radius (holders / 4) in
      let secret = Zp.random rng in
      let shares = Sh.deal rng ~threshold ~holders secret in
      let bad = corrupt_some rng shares ~count:errors in
      match Sh.reconstruct_robust ~threshold (Array.to_list bad) with
      | Some v -> Zp.equal v secret
      | None -> false)

let prop_subset_threshold_boundary =
  (* Any subset strictly above the threshold reconstructs; any subset at
     or below it yields None (information-theoretic hiding boundary). *)
  QCheck.Test.make ~name:"subset size vs threshold boundary" ~count:100
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Prng.create (Int64.of_int ((a * 65537) + (b * 257) + c + 1)) in
      let threshold = 1 + (a mod 5) in
      let holders = threshold + 2 + (b mod 8) in
      let secret = Zp.random rng in
      let shares = Sh.deal rng ~threshold ~holders secret in
      let k = 1 + (c mod holders) in
      let idx = Prng.sample_without_replacement rng ~n:holders ~k in
      let subset = Array.to_list (Array.map (fun i -> shares.(i)) idx) in
      match Sh.reconstruct ~threshold subset with
      | Some v -> k > threshold && Zp.equal v secret
      | None -> k <= threshold)

let prop_robust_at_exact_radius =
  (* Error patterns of every weight up to and including the classical
     radius ⌊(holders − threshold − 1) / 2⌋ must decode to the secret. *)
  QCheck.Test.make ~name:"robust corrects at the exact radius" ~count:60
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Prng.create (Int64.of_int ((a * 7907) + (b * 131) + c + 1)) in
      let threshold = 2 + (a mod 4) in
      let holders = (3 * (threshold + 1)) + (b mod 4) in
      let radius = (holders - threshold - 1) / 2 in
      let errors = c mod (radius + 1) in
      let secret = Zp.random rng in
      let shares = Sh.deal rng ~threshold ~holders secret in
      let bad = corrupt_some rng shares ~count:errors in
      match Sh.reconstruct_robust ~threshold (Array.to_list bad) with
      | Some v -> Zp.equal v secret
      | None -> false)

let prop_robust_beyond_radius_fails_cleanly =
  (* Past the radius the decoder may recover (list decoding) or give up,
     but it must never raise and never return a wrong secret for random
     (non-colluding) error patterns at these sizes. *)
  QCheck.Test.make ~name:"robust beyond radius: no crash, no wrong secret" ~count:60
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Prng.create (Int64.of_int ((a * 104729) + (b * 433) + c + 1)) in
      let threshold = 2 + (a mod 3) in
      let holders = (3 * (threshold + 1)) + (b mod 4) in
      let radius = (holders - threshold - 1) / 2 in
      let max_errors = holders - threshold - 1 in
      let errors = Stdlib.min max_errors (radius + 1 + (c mod 3)) in
      let secret = Zp.random rng in
      let shares = Sh.deal rng ~threshold ~holders secret in
      let bad = corrupt_some rng shares ~count:errors in
      match Sh.reconstruct_robust ~threshold (Array.to_list bad) with
      | Some v -> Zp.equal v secret
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Equivalence against the pre-optimization reference decoder
   (test/decode_oracle.ml).  The optimized kernels (support-mask
   memoization, barycentric evaluators, running-power Vandermonde rows)
   must be bit-for-bit behaviour-preserving, including the None-on-tie
   refusal. *)

let equal_opt eq a b =
  match (a, b) with
  | Some x, Some y -> eq x y
  | None, None -> true
  | _ -> false

let corrupt_some_g rng shares ~count =
  let shares = Array.copy shares in
  let idx = Prng.sample_without_replacement rng ~n:(Array.length shares) ~k:count in
  Array.iter
    (fun i -> shares.(i) <- { shares.(i) with ShG.value = Gf.random rng })
    idx;
  shares

let prop_robust_equiv_oracle_zp =
  (* Error weights sweep the whole range, well past the decodable radius:
     the optimized and reference decoders must agree on every verdict —
     recovered value, wrong-but-identical value, or None. *)
  QCheck.Test.make ~name:"optimized robust decode == reference oracle (Z_p)"
    ~count:120
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Prng.create (Int64.of_int ((a * 92821) + (b * 613) + c + 1)) in
      let threshold = 1 + (a mod 5) in
      let holders = threshold + 2 + (b mod 12) in
      let max_errors = holders - threshold - 1 in
      let errors = c mod (max_errors + 1) in
      let secret = Zp.random rng in
      let shares = Sh.deal rng ~threshold ~holders secret in
      let bad = Array.to_list (corrupt_some rng shares ~count:errors) in
      equal_opt Zp.equal
        (Sh.reconstruct_robust ~threshold bad)
        (OracleZ.reconstruct_robust ~threshold bad))

let prop_robust_equiv_oracle_gf256 =
  QCheck.Test.make ~name:"optimized robust decode == reference oracle (GF(256))"
    ~count:120
    QCheck.(triple small_nat small_nat small_nat)
    (fun (a, b, c) ->
      let rng = Prng.create (Int64.of_int ((a * 48611) + (b * 769) + c + 1)) in
      let threshold = 1 + (a mod 5) in
      let holders = threshold + 2 + (b mod 12) in
      let max_errors = holders - threshold - 1 in
      let errors = c mod (max_errors + 1) in
      let secret = Gf.random rng in
      let shares = ShG.deal rng ~threshold ~holders secret in
      let bad = Array.to_list (corrupt_some_g rng shares ~count:errors) in
      equal_opt Gf.equal
        (ShG.reconstruct_robust ~threshold bad)
        (OracleG.reconstruct_robust ~threshold bad))

let prop_lagrange_eval_equiv_oracle =
  QCheck.Test.make ~name:"Poly.lagrange_eval == reference oracle (both fields)"
    ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let rng = Prng.create (Int64.of_int ((a * 31337) + b + 1)) in
      let k = 1 + (a mod 10) in
      let ptsz = List.init k (fun i -> (Zp.of_int (i + 1), Zp.random rng)) in
      let xz = Zp.random rng in
      let ptsg = List.init k (fun i -> (Gf.of_int (i + 1), Gf.random rng)) in
      let xg = Gf.random rng in
      Zp.equal (Pz.lagrange_eval ptsz xz) (OracleZ.lagrange_eval ptsz xz)
      && Gf.equal (Pg.lagrange_eval ptsg xg) (OracleG.lagrange_eval ptsg xg))

let test_tie_yields_none_both_decoders () =
  (* threshold 1 (k = 2), m = 6: three shares on the zero line, three on
     the line y = x.  Each line explains exactly 3 points (below
     radius_accept = 4), the supports are disjoint, and no mixed pair
     beats them: an exact best/second tie.  Both decoders must refuse
     with None rather than guess a winner. *)
  let shares =
    List.init 6 (fun i ->
        { Sh.index = i; value = (if i < 3 then Zp.zero else Zp.of_int (i + 1)) })
  in
  Alcotest.(check bool) "optimized ties to None" true
    (Sh.reconstruct_robust ~threshold:1 shares = None);
  Alcotest.(check bool) "oracle ties to None" true
    (OracleZ.reconstruct_robust ~threshold:1 shares = None)

let () =
  Alcotest.run "shamir"
    [
      ( "basic",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "any subset" `Quick test_any_subset_reconstructs;
          Alcotest.test_case "too few" `Quick test_too_few_shares;
          Alcotest.test_case "duplicates" `Quick test_duplicate_shares_ignored;
          Alcotest.test_case "hiding" `Quick test_hiding_statistical;
          Alcotest.test_case "validation" `Quick test_deal_validation;
          Alcotest.test_case "deal at positions" `Quick test_deal_at_positions;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "robust",
        [
          Alcotest.test_case "corrects errors" `Quick test_robust_corrects_errors;
          Alcotest.test_case "list decoding beyond radius" `Quick
            test_robust_beyond_radius_list_decoding;
          Alcotest.test_case "never wrong at 50% garbage" `Quick
            test_robust_never_wrong_under_majority_garbage;
          Alcotest.test_case "exact threshold rejected" `Quick
            test_robust_exact_threshold_rejected;
          QCheck_alcotest.to_alcotest prop_robust_radius;
          QCheck_alcotest.to_alcotest prop_subset_threshold_boundary;
          QCheck_alcotest.to_alcotest prop_robust_at_exact_radius;
          QCheck_alcotest.to_alcotest prop_robust_beyond_radius_fails_cleanly;
        ] );
      ( "vector",
        [
          Alcotest.test_case "roundtrip" `Quick test_vector_roundtrip;
          Alcotest.test_case "fast decode with bad holders" `Quick
            test_reconstruct_vectors_fast;
          Alcotest.test_case "word-targeted lie" `Quick
            test_reconstruct_vectors_word_targeted_lie;
        ] );
      ("additive", [ Alcotest.test_case "roundtrip" `Quick test_additive ]);
      ( "oracle equivalence",
        [
          Alcotest.test_case "tie yields None (both decoders)" `Quick
            test_tie_yields_none_both_decoders;
          QCheck_alcotest.to_alcotest prop_robust_equiv_oracle_zp;
          QCheck_alcotest.to_alcotest prop_robust_equiv_oracle_gf256;
          QCheck_alcotest.to_alcotest prop_lagrange_eval_equiv_oracle;
        ] );
    ]
