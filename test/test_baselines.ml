module Rabin = Ks_baselines.Rabin
module Pk = Ks_baselines.Phase_king
module Bo = Ks_baselines.Ben_or
module Outcome = Ks_baselines.Outcome

let inputs_split n = Array.init n (fun i -> i mod 2 = 0)
let inputs_const n v = Array.make n v

let test_rabin_honest () =
  let n = 48 in
  let o =
    Rabin.run ~seed:1L ~n ~budget:0 ~rounds:12 ~epsilon:0.1 ~inputs:(inputs_split n)
      ~strategy:Ks_sim.Adversary.none
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  Alcotest.(check bool) "validity" true o.Outcome.validity;
  Alcotest.(check int) "rounds" 12 o.Outcome.rounds

let test_rabin_validity () =
  let n = 48 in
  let o =
    Rabin.run ~seed:1L ~n ~budget:0 ~rounds:12 ~epsilon:0.1
      ~inputs:(inputs_const n true) ~strategy:Ks_sim.Adversary.none
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  (match o.Outcome.decided.(0) with
   | Some v -> Alcotest.(check bool) "keeps unanimous input" true v
   | None -> Alcotest.fail "undecided")

let test_rabin_under_crash () =
  let n = 48 in
  let o =
    Rabin.run ~seed:2L ~n ~budget:12 ~rounds:14 ~epsilon:0.1 ~inputs:(inputs_split n)
      ~strategy:Ks_sim.Adversary.crash_random
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  Alcotest.(check bool) "validity" true o.Outcome.validity

let test_rabin_bits_linear () =
  let n = 48 in
  let o =
    Rabin.run ~seed:1L ~n ~budget:0 ~rounds:10 ~epsilon:0.1 ~inputs:(inputs_split n)
      ~strategy:Ks_sim.Adversary.none
  in
  (* All-to-all: (n-1) one-bit messages per round. *)
  Alcotest.(check int) "bits = (n-1)*rounds" ((n - 1) * 10) o.Outcome.max_sent_bits

let test_phase_king_honest () =
  let n = 40 in
  let o =
    Pk.run ~seed:1L ~n ~budget:0 ~faults:8 ~inputs:(inputs_split n)
      ~strategy:Ks_sim.Adversary.none
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  Alcotest.(check bool) "validity" true o.Outcome.validity

let test_phase_king_crash_quarter_minus () =
  let n = 40 in
  (* Phase King tolerates f < n/4: use 8 < 10. *)
  let o =
    Pk.run ~seed:3L ~n ~budget:8 ~faults:8 ~inputs:(inputs_split n)
      ~strategy:Ks_sim.Adversary.crash_random
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  Alcotest.(check bool) "validity" true o.Outcome.validity

let test_phase_king_unanimity_strong () =
  let n = 40 in
  let o =
    Pk.run ~seed:4L ~n ~budget:8 ~faults:8 ~inputs:(inputs_const n false)
      ~strategy:Ks_sim.Adversary.crash_random
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  (match o.Outcome.decided.(1) with
   | Some v -> Alcotest.(check bool) "unanimous zero kept" false v
   | None -> Alcotest.fail "undecided")

let test_ben_or_honest () =
  let n = 40 in
  let o =
    Bo.run ~seed:1L ~n ~budget:0 ~max_phases:30 ~inputs:(inputs_split n)
      ~strategy:Ks_sim.Adversary.none
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  Alcotest.(check bool) "validity" true o.Outcome.validity

let test_ben_or_crash_small () =
  let n = 50 in
  (* f < n/5; a biased start converges fast — an even split would take
     expected-exponential phases, which is exactly why the paper needs
     common coins. *)
  let inputs = Array.init n (fun i -> i < 40) in
  let o =
    Bo.run ~seed:2L ~n ~budget:8 ~max_phases:40 ~inputs
      ~strategy:Ks_sim.Adversary.crash_random
  in
  Alcotest.(check bool) "agreement" true o.Outcome.agreement;
  Alcotest.(check bool) "validity" true o.Outcome.validity

let test_ben_or_unanimity_one_phase () =
  let n = 40 in
  let o =
    Bo.run ~seed:1L ~n ~budget:0 ~max_phases:3 ~inputs:(inputs_const n true)
      ~strategy:Ks_sim.Adversary.none
  in
  Alcotest.(check bool) "fast unanimous decision" true o.Outcome.agreement;
  (match o.Outcome.decided.(0) with
   | Some v -> Alcotest.(check bool) "keeps input" true v
   | None -> Alcotest.fail "undecided")

let test_kssv_static_vs_adaptive () =
  let params = Ks_core.Params.practical 128 in
  let budget = Ks_core.Params.corruption_budget params in
  let static =
    Ks_baselines.Kssv_tournament.run ~seed:9L ~params ~adaptive:false ~budget
  in
  let adaptive =
    Ks_baselines.Kssv_tournament.run ~seed:9L ~params ~adaptive:true ~budget
  in
  Alcotest.(check bool) "committees formed" true
    (Array.length static.Ks_baselines.Kssv_tournament.committee > 0
     && Array.length adaptive.Ks_baselines.Kssv_tournament.committee > 0);
  Alcotest.(check bool) "static committee representative" true
    (static.Ks_baselines.Kssv_tournament.good_fraction >= 0.5);
  (* The whole point: the adaptive adversary owns the announced winners. *)
  Alcotest.(check (float 1e-9)) "adaptive committee owned" 0.0
    adaptive.Ks_baselines.Kssv_tournament.good_fraction

let test_outcome_detects_disagreement () =
  let net =
    Ks_sim.Net.create ~seed:1L ~n:4 ~budget:0 ~msg_bits:(fun (_ : unit) -> 1)
      ~strategy:Ks_sim.Adversary.none ()
  in
  let o =
    Outcome.of_decisions ~net ~inputs:[| true; true; false; false |]
      [| Some true; Some true; Some false; Some true |]
  in
  Alcotest.(check bool) "disagreement detected" false o.Outcome.agreement;
  let o2 =
    Outcome.of_decisions ~net ~inputs:[| true; true; false; false |]
      [| Some true; Some true; Some true; Some true |]
  in
  Alcotest.(check bool) "agreement detected" true o2.Outcome.agreement;
  Alcotest.(check bool) "validity detected" true o2.Outcome.validity

let () =
  Alcotest.run "baselines"
    [
      ( "rabin",
        [
          Alcotest.test_case "honest" `Quick test_rabin_honest;
          Alcotest.test_case "validity" `Quick test_rabin_validity;
          Alcotest.test_case "crash" `Quick test_rabin_under_crash;
          Alcotest.test_case "bits linear in n" `Quick test_rabin_bits_linear;
        ] );
      ( "phase-king",
        [
          Alcotest.test_case "honest" `Quick test_phase_king_honest;
          Alcotest.test_case "crash under n/4" `Quick test_phase_king_crash_quarter_minus;
          Alcotest.test_case "unanimity" `Quick test_phase_king_unanimity_strong;
        ] );
      ( "ben-or",
        [
          Alcotest.test_case "honest" `Quick test_ben_or_honest;
          Alcotest.test_case "crash" `Quick test_ben_or_crash_small;
          Alcotest.test_case "unanimous fast" `Quick test_ben_or_unanimity_one_phase;
        ] );
      ( "kssv",
        [ Alcotest.test_case "static vs adaptive" `Quick test_kssv_static_vs_adaptive ] );
      ( "outcome",
        [ Alcotest.test_case "agreement detection" `Quick test_outcome_detects_disagreement ] );
    ]
