module Comm = Ks_core.Comm
module Params = Ks_core.Params
module Tree = Ks_topology.Tree
module Prng = Ks_stdx.Prng

let static_strategy budget =
  Ks_sim.Adversary.make ~name:"static"
    ~initial_corruptions:(fun rng ~n ~budget:b ->
      Ks_sim.Adversary.uniform_random_set rng ~n ~budget:(Stdlib.min budget b))
    ()

let setup ?(n = 64) ?(budget = 0) ?(behavior = Comm.Follow) ?(words = 5) () =
  let params = Params.practical n in
  let tree = Tree.build (Prng.create 31L) (Params.tree_config params) in
  let comm =
    Comm.create ~params ~tree ~seed:11L ~behavior ~strategy:(static_strategy budget)
      ~budget ()
  in
  let arrays = Array.init n (fun i -> Array.init words (fun w -> (1000 * (w + 1)) + i)) in
  (params, tree, comm, arrays)

let test_structure_shape () =
  let _, tree, comm, _ = setup () in
  let s = Comm.structure comm in
  let k1 = Tree.node_size tree ~level:1 in
  Alcotest.(check int) "level1 count = k1" k1 (Comm.Structure.count s ~level:1);
  for inst = 0 to k1 - 1 do
    Alcotest.(check int) "level1 pos = id" inst (Comm.Structure.pos s ~level:1 ~inst);
    Alcotest.(check int) "level1 no parent" (-1) (Comm.Structure.parent s ~level:1 ~inst)
  done;
  (* Children/parents are mutually consistent. *)
  for level = 1 to Tree.levels tree - 1 do
    for inst = 0 to Comm.Structure.count s ~level - 1 do
      Array.iter
        (fun child ->
          Alcotest.(check int) "parent pointer" inst
            (Comm.Structure.parent s ~level:(level + 1) ~inst:child))
        (Comm.Structure.children s ~level ~inst)
    done
  done

let test_structure_positions_consistent () =
  let _, tree, comm, _ = setup () in
  let s = Comm.structure comm in
  for level = 1 to Tree.levels tree do
    let size = Tree.node_size tree ~level in
    let total = ref 0 in
    for pos = 0 to size - 1 do
      let insts = Comm.Structure.at_position s ~level ~pos in
      total := !total + Array.length insts;
      Array.iter
        (fun inst ->
          Alcotest.(check int) "at_position inverse" pos
            (Comm.Structure.pos s ~level ~inst))
        insts
    done;
    Alcotest.(check int) "all instances bucketed"
      (Comm.Structure.count s ~level) !total
  done

let test_structure_counts_multiply () =
  (* Each reshare splits every instance among its holder's uplinks, so
     counts multiply by the (uniform) uplink degree per level. *)
  let _, tree, comm, _ = setup () in
  let s = Comm.structure comm in
  for level = 1 to Tree.levels tree - 1 do
    let d = Array.length (Tree.uplinks tree ~level ~member:0) in
    Alcotest.(check int)
      (Printf.sprintf "count(%d) = count(%d) * d" (level + 1) level)
      (Comm.Structure.count s ~level * d)
      (Comm.Structure.count s ~level:(level + 1))
  done

let test_deal_places_shares () =
  let _, _, comm, arrays = setup () in
  Comm.deal_all comm ~arrays;
  Alcotest.(check (option int)) "live at level 1" (Some 1) (Comm.level_of comm ~cand:0);
  (* Every instance of every candidate holds a value (no corruption). *)
  let s = Comm.structure comm in
  let k1 = Comm.Structure.count s ~level:1 in
  for c = 0 to 7 do
    for inst = 0 to k1 - 1 do
      Alcotest.(check bool) "share held" true
        (Comm.held_value comm ~cand:c ~inst <> None)
    done
  done

let test_reshare_moves_level () =
  let _, _, comm, arrays = setup () in
  Comm.deal_all comm ~arrays;
  let all = List.init 64 (fun i -> i) in
  Comm.reshare_up comm ~cands:all ~drop:[];
  Alcotest.(check (option int)) "level 2" (Some 2) (Comm.level_of comm ~cand:0)

let test_drop_erases () =
  let _, _, comm, arrays = setup () in
  Comm.deal_all comm ~arrays;
  let keep = List.init 32 (fun i -> i) in
  let drop = List.init 32 (fun i -> 32 + i) in
  Comm.reshare_up comm ~cands:keep ~drop;
  Alcotest.(check (option int)) "dropped is gone" None (Comm.level_of comm ~cand:40);
  Alcotest.(check (option int)) "kept is live" (Some 2) (Comm.level_of comm ~cand:0)

let climb comm tree cands =
  let rec go level =
    if level < Tree.levels tree then begin
      Comm.reshare_up comm ~cands ~drop:[];
      go (level + 1)
    end
  in
  go 2

let open_and_check ~n ~budget ~behavior ~expect_all =
  let params, tree, comm, arrays = setup ~n ~budget ~behavior () in
  ignore params;
  Comm.deal_all comm ~arrays;
  let all = List.init n (fun i -> i) in
  Comm.reshare_up comm ~cands:all ~drop:[];
  climb comm tree all;
  let levels = Tree.levels tree in
  let net = Comm.net comm in
  (* Only good dealers' arrays are expected to open (a corrupt dealer may
     have dealt garbage or nothing). *)
  let cands =
    List.filteri (fun i _ -> i < 3)
      (List.filter (fun c -> not (Ks_sim.Net.is_corrupt net c)) all)
  in
  let view =
    Comm.open_ranges_view comm ~level:levels
      ~ranges:(List.map (fun c -> (c, 1, 2)) cands)
  in
  List.iter
    (fun c ->
      let correct = ref 0 and total = ref 0 in
      for p = 0 to n - 1 do
        if not (Ks_sim.Net.is_corrupt net p) then begin
          incr total;
          match view ~cand:c ~member:p with
          | Some w
            when Array.length w = 2 && w.(0) = 2000 + c && w.(1) = 3000 + c ->
            incr correct
          | Some _ | None -> ()
        end
      done;
      if expect_all then
        Alcotest.(check int) (Printf.sprintf "cand %d all correct" c) !total !correct
      else
        Alcotest.(check bool)
          (Printf.sprintf "cand %d mostly correct (%d/%d)" c !correct !total)
          true
          (float_of_int !correct >= 0.85 *. float_of_int !total))
    cands

let test_open_honest () = open_and_check ~n:64 ~budget:0 ~behavior:Comm.Follow ~expect_all:true

let test_open_crash_20 () =
  open_and_check ~n:64 ~budget:12 ~behavior:Comm.Silent ~expect_all:false

let test_open_garbage_25 () =
  open_and_check ~n:64 ~budget:16 ~behavior:Comm.Garbage ~expect_all:false

let test_secrecy_before_open () =
  (* Lemma 3(1): until a secret is sent down, an adversary holding every
     share visible to < 1/3 of each node learns nothing.  We check the
     mechanical precondition: no single processor's held values determine
     the secret — each instance value is a share under a threshold > 0. *)
  let _, _, comm, arrays = setup ~n:64 () in
  Comm.deal_all comm ~arrays;
  let s = Comm.structure comm in
  let k1 = Comm.Structure.count s ~level:1 in
  (* Values held are shares, not the secret itself. *)
  let cand = 3 in
  let secret_word = arrays.(cand).(0) in
  let leaks = ref 0 in
  for inst = 0 to k1 - 1 do
    match Comm.held_value comm ~cand ~inst with
    | Some w when w.(0) = secret_word -> incr leaks
    | Some _ | None -> ()
  done;
  (* A random share collides with the secret with probability ~2^-31. *)
  Alcotest.(check int) "no share equals the secret" 0 !leaks

let test_erasure_after_reshare () =
  (* After sendSecretUp the lower level is erased: corrupting a level-1
     holder afterwards must not yield level-1 share values.  We model the
     check through level_of/held_value: the candidate state no longer
     holds level-1 instances. *)
  let _, _, comm, arrays = setup ~n:64 () in
  Comm.deal_all comm ~arrays;
  let v_before = Comm.held_value comm ~cand:0 ~inst:0 in
  Alcotest.(check bool) "held before" true (v_before <> None);
  Comm.reshare_up comm ~cands:(List.init 64 (fun i -> i)) ~drop:[];
  (* Instance 0 now refers to level-2 numbering; the level-1 share values
     are gone from the store entirely (the array was replaced). *)
  Alcotest.(check (option int)) "live level moved" (Some 2) (Comm.level_of comm ~cand:0)

let test_open_rejects_bad_ranges () =
  let _, _, comm, arrays = setup ~n:64 () in
  Comm.deal_all comm ~arrays;
  let discard view =
    ignore (view : cand:int -> member:int -> Comm.word array option)
  in
  Alcotest.check_raises "wrong level"
    (Invalid_argument "Comm.open_ranges_view: candidate not live at this level")
    (fun () -> discard (Comm.open_ranges_view comm ~level:3 ~ranges:[ (0, 0, 1) ]));
  Comm.reshare_up comm ~cands:(List.init 64 (fun i -> i)) ~drop:[];
  Alcotest.check_raises "range out of bounds"
    (Invalid_argument "Comm.open_ranges_view: bad range") (fun () ->
      discard (Comm.open_ranges_view comm ~level:2 ~ranges:[ (0, 4, 3) ]))

let sample_payloads =
  [
    Comm.Deal { cand = 0; inst = 3; words = [| 1; 2147483646; 7 |] };
    Comm.Share_up { cand = 300; inst = 12345; words = [||] };
    Comm.Share_down
      { cand = 5; level = 3; node = 17; inst = 999; off = 2; words = [| 42 |] };
    Comm.Leaf_val { cand = 1; leaf = 63; inst = 9; off = 0; words = [| 0; 0 |] };
    Comm.Open_val { cand = 2; leaf = 0; off = 30; words = [| 123456789 |] };
    Comm.Vote { level = 2; node = 4; ba = 11; vote = true };
    Comm.Votes { level = 3; node = 0; packed = Bytes.of_string "\x0f\xf0" };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun payload ->
      match Comm.decode_payload (Comm.encode_payload payload) with
      | Ok decoded -> Alcotest.(check bool) "roundtrip" true (decoded = payload)
      | Error e -> Alcotest.fail (Ks_stdx.Wire.invalid_to_string e))
    sample_payloads

let test_codec_length_exact () =
  List.iter
    (fun payload ->
      Alcotest.(check int) "encoded_length = |encode|"
        (Bytes.length (Comm.encode_payload payload))
        (Comm.encoded_length payload))
    sample_payloads

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "bad tag" true
    (Comm.decode_payload (Bytes.of_string "\xff\x01") = Error (Ks_stdx.Wire.Bad_tag 0xff));
  Alcotest.(check bool) "trailing junk" true
    (Comm.decode_payload
       (Bytes.cat (Comm.encode_payload (Comm.Vote { level = 1; node = 0; ba = 0; vote = false }))
          (Bytes.of_string "x"))
     = Error (Ks_stdx.Wire.Trailing 1));
  Alcotest.(check bool) "empty" true
    (Comm.decode_payload Bytes.empty = Error Ks_stdx.Wire.Truncated)

let () =
  Alcotest.run "comm"
    [
      ( "structure",
        [
          Alcotest.test_case "shape" `Quick test_structure_shape;
          Alcotest.test_case "positions" `Quick test_structure_positions_consistent;
          Alcotest.test_case "counts multiply" `Quick test_structure_counts_multiply;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "deal places shares" `Quick test_deal_places_shares;
          Alcotest.test_case "reshare moves level" `Quick test_reshare_moves_level;
          Alcotest.test_case "drop erases" `Quick test_drop_erases;
          Alcotest.test_case "secrecy before open" `Quick test_secrecy_before_open;
          Alcotest.test_case "erasure after reshare" `Quick test_erasure_after_reshare;
          Alcotest.test_case "bad ranges" `Quick test_open_rejects_bad_ranges;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "length exact" `Quick test_codec_length_exact;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "open",
        [
          Alcotest.test_case "honest" `Slow test_open_honest;
          Alcotest.test_case "crash 20%" `Slow test_open_crash_20;
          Alcotest.test_case "garbage 25%" `Slow test_open_garbage_25;
        ] );
    ]
