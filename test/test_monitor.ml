(* The invariant-monitor and trace layer: JSON round-trips, ring-buffer
   semantics, replay cross-checks against the meter, byte-identical
   determinism, each built-in monitor firing on a deliberate violation,
   and a property-based adversarial sweep over the [Attacks] scenarios. *)

module Event = Ks_monitor.Event
module Trace = Ks_monitor.Trace
module Monitor = Ks_monitor.Monitor
module Hub = Ks_monitor.Hub
module Attacks = Ks_workload.Attacks
module Params = Ks_core.Params
open Ks_sim.Types

(* --- JSON round-trip ------------------------------------------------- *)

let event_gen : Event.t QCheck.Gen.t =
  let open QCheck.Gen in
  let small = int_bound 10_000 in
  let label = oneofl [ "tree"; "a2e"; "rabin"; "weird \"label\"\\with\nescapes" ] in
  oneof
    [
      (fun (net, n, budget) l -> Event.Run_start { net; label = l; n; budget })
      <$> triple small small small <*> label;
      (fun (net, round) -> Event.Round_start { net; round }) <$> pair small small;
      (fun ((net, round, src), (dst, bits, adv)) ->
        Event.Send { net; round; src; dst; bits; adv })
      <$> pair (triple small small small) (triple small small bool);
      (fun ((net, round, proc), (total, budget)) ->
        Event.Corrupt { net; round; proc; total; budget })
      <$> pair (triple small small small) (pair small small);
      (fun l -> Event.Phase { name = l }) <$> label;
      (fun (net, proc, value) -> Event.Decide { net; proc; value })
      <$> triple small small small;
      (fun ((net, round, msgs), (bits, adv_msgs, adv_bits)) ->
        Event.Round_end { net; round; msgs; bits; adv_msgs; adv_bits })
      <$> pair (triple small small small) (triple small small small);
      (fun ((net, proc, sent_bits), (recv_bits, sent_msgs)) ->
        Event.Meter_proc { net; proc; sent_bits; recv_bits; sent_msgs })
      <$> pair (triple small small small) (pair small small);
      (fun (net, rounds, total_bits) -> Event.Run_end { net; rounds; total_bits })
      <$> triple small small small;
      (fun ((net, proc, round), (observed, bound), l) ->
        Event.Violation
          { invariant = l; net; proc; round; observed; bound; detail = l })
      <$> triple (triple small small small)
            (pair (float_bound_inclusive 1e9) (float_bound_inclusive 1e9))
            label;
    ]

let prop_json_roundtrip =
  QCheck.Test.make ~name:"event JSON roundtrip" ~count:500
    (QCheck.make ~print:Event.to_json event_gen)
    (fun ev -> Event.of_json (Event.to_json ev) = Some ev)

let test_json_malformed () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Event.of_json s = None))
    [
      "";
      "not json";
      "{}";
      {|{"ev":"warp","net":1}|};
      {|{"ev":"round_start","net":1}|} (* missing field *);
      {|{"ev":"round_start","net":1,"round":"x"}|};
    ]

(* --- Ring buffer ----------------------------------------------------- *)

let test_ring_capacity () =
  let sink = Trace.ring ~capacity:4 in
  for r = 0 to 9 do
    Trace.emit sink (Event.Round_start { net = 1; round = r })
  done;
  let rounds =
    List.map
      (function Event.Round_start { round; _ } -> round | _ -> -1)
      (Trace.contents sink)
  in
  Alcotest.(check (list int)) "last 4, oldest first" [ 6; 7; 8; 9 ] rounds

(* --- A toy protocol to drive hand-built nets ------------------------- *)

(* Each good processor sends one [bits]-priced message to its successor
   per round. *)
let ring_protocol ~n =
  {
    Ks_sim.Engine.init = (fun _ -> ());
    step =
      (fun ~round:_ ~me () ~inbox:_ ->
        ((), [ { src = me; dst = (me + 1) mod n; payload = 8 } ]));
  }

let mk_net ?hub ?label ?(n = 8) ?(budget = 0) ?(strategy = Ks_sim.Adversary.none)
    ?(seed = 11L) () =
  Ks_sim.Net.create ?hub ?label ~seed ~n ~budget ~msg_bits:(fun b -> b) ~strategy ()

(* --- Trace replay vs the meter (the acceptance cross-check) ---------- *)

let test_replay_matches_meter () =
  let path = Filename.temp_file "ks_trace" ".jsonl" in
  let n = 16 in
  let hub = Hub.create ~trace:(Trace.file path) [] in
  let net = mk_net ~hub ~label:"toy" ~n () in
  ignore (Ks_sim.Engine.run net (ring_protocol ~n) ~rounds:5);
  Ks_sim.Net.emit_meter net;
  ignore (Hub.finish hub);
  let events = Trace.replay path in
  Sys.remove path;
  let sends = Trace.sent_bits_by_proc events in
  let meters = Trace.meter_by_proc events in
  let meter = Ks_sim.Net.meter net in
  Alcotest.(check int) "one net's snapshots" n (Hashtbl.length meters);
  for p = 0 to n - 1 do
    let sent, recv, msgs = Hashtbl.find meters (1, p) in
    Alcotest.(check int) "snapshot matches live meter (sent)"
      (Ks_sim.Meter.sent_bits meter p) sent;
    Alcotest.(check int) "snapshot matches live meter (recv)"
      (Ks_sim.Meter.recv_bits meter p) recv;
    Alcotest.(check int) "snapshot matches live meter (msgs)"
      (Ks_sim.Meter.sent_msgs meter p) msgs;
    Alcotest.(check int) "send events sum to the meter"
      sent
      (Option.value ~default:0 (Hashtbl.find_opt sends (1, p)))
  done

(* --- Determinism ----------------------------------------------------- *)

let traced_rabin ~seed =
  let sink = Trace.ring ~capacity:100_000 in
  let hub = Hub.create ~trace:sink [] in
  let params = Params.practical 32 in
  let scenario = Attacks.byzantine_static in
  let o =
    Hub.with_ambient hub (fun () ->
        Ks_baselines.Rabin.run ~seed ~n:32
          ~budget:(Attacks.budget_of scenario ~params)
          ~rounds:16 ~epsilon:params.Params.epsilon
          ~inputs:(Array.init 32 (fun i -> i mod 2 = 0))
          ~strategy:(Attacks.vote_flipper scenario ~params))
  in
  ignore (Hub.finish hub);
  (o, Trace.render (Trace.contents sink))

let test_trace_deterministic () =
  let o1, t1 = traced_rabin ~seed:9L in
  let o2, t2 = traced_rabin ~seed:9L in
  Alcotest.(check bool) "same outcome" true
    (o1.Ks_baselines.Outcome.decided = o2.Ks_baselines.Outcome.decided);
  Alcotest.(check bool) "trace nonempty" true (String.length t1 > 0);
  Alcotest.(check string) "byte-identical traces" t1 t2;
  let _, t3 = traced_rabin ~seed:10L in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

let test_monitoring_changes_nothing () =
  (* The monitored run must be bit-identical to the unmonitored one. *)
  let params = Params.practical 32 in
  let scenario = Attacks.byzantine_adaptive in
  let go hub =
    let f () =
      Ks_baselines.Phase_king.run ~seed:3L ~n:32 ~budget:7 ~faults:7
        ~inputs:(Array.init 32 (fun i -> i < 20))
        ~strategy:(Attacks.generic_strategy scenario ~params)
    in
    match hub with None -> f () | Some h -> Hub.with_ambient h f
  in
  let plain = go None in
  let hub = Hub.create (Ks_workload.Experiments.standard_monitors ()) in
  let monitored = go (Some hub) in
  Alcotest.(check bool) "no violations" true (Hub.finish hub = []);
  Alcotest.(check bool) "identical outcome" true
    (plain.Ks_baselines.Outcome.decided = monitored.Ks_baselines.Outcome.decided
    && plain.Ks_baselines.Outcome.max_sent_bits
       = monitored.Ks_baselines.Outcome.max_sent_bits)

let test_meter_merge_totals () =
  let run seed =
    let net = mk_net ~n:8 ~seed () in
    ignore (Ks_sim.Engine.run net (ring_protocol ~n:8) ~rounds:3);
    Ks_sim.Net.meter net
  in
  let m1 = run 1L and m2 = run 2L in
  let t1 = Ks_sim.Meter.total_sent_bits m1
  and t2 = Ks_sim.Meter.total_sent_bits m2 in
  let r1 = Ks_sim.Meter.rounds m1 and r2 = Ks_sim.Meter.rounds m2 in
  Ks_sim.Meter.merge_into m1 m2;
  Alcotest.(check int) "merged bits = sum" (t1 + t2) (Ks_sim.Meter.total_sent_bits m1);
  Alcotest.(check int) "merged rounds = sum" (r1 + r2) (Ks_sim.Meter.rounds m1)

(* --- Each monitor fires on a deliberate violation -------------------- *)

let violations_of monitors f =
  let hub = Hub.create monitors in
  f hub;
  Hub.finish hub

let invariants vs = List.sort_uniq compare (List.map (fun v -> v.Monitor.invariant) vs)

let test_corruption_budget_fires () =
  let strategy =
    Ks_sim.Adversary.make ~name:"grab3"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0; 1; 2 ])
      ()
  in
  let vs =
    violations_of
      [ Monitor.corruption_budget ~limit:1 () ]
      (fun hub -> ignore (mk_net ~hub ~budget:3 ~strategy ()))
  in
  Alcotest.(check (list string)) "fires" [ "corruption-budget" ] (invariants vs);
  Alcotest.(check int) "one firing per excess corruption" 2 (List.length vs)

let test_corruption_budget_quiet_within_budget () =
  let strategy =
    Ks_sim.Adversary.make ~name:"grab3"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0; 1; 2 ])
      ()
  in
  let vs =
    violations_of
      [ Monitor.corruption_budget () ]
      (fun hub -> ignore (mk_net ~hub ~budget:3 ~strategy ()))
  in
  Alcotest.(check (list string)) "quiet" [] (invariants vs)

let test_agreement_fires () =
  let vs =
    violations_of
      [ Monitor.agreement () ]
      (fun hub ->
        let net = mk_net ~hub () in
        Ks_sim.Net.decide net 0 1;
        Ks_sim.Net.decide net 1 1;
        Ks_sim.Net.decide net 2 0;
        (* A re-decision that changes value is also a violation. *)
        Ks_sim.Net.decide net 1 0)
  in
  Alcotest.(check (list string)) "fires" [ "agreement" ] (invariants vs);
  Alcotest.(check int) "conflict + re-decision" 2 (List.length vs)

let test_validity_fires () =
  let vs =
    violations_of
      [ Monitor.validity ~inputs:(Array.make 8 1) ]
      (fun hub ->
        let net = mk_net ~hub () in
        Ks_sim.Net.decide net 0 1;
        Ks_sim.Net.decide net 3 0)
  in
  Alcotest.(check (list string)) "fires" [ "validity" ] (invariants vs)

let test_validity_quiet_when_split () =
  let inputs = Array.init 8 (fun i -> i mod 2) in
  let vs =
    violations_of
      [ Monitor.validity ~inputs ]
      (fun hub ->
        let net = mk_net ~hub () in
        Ks_sim.Net.decide net 0 0;
        Ks_sim.Net.decide net 1 1)
  in
  Alcotest.(check (list string)) "split inputs: inert" [] (invariants vs)

let test_bit_budget_fires () =
  let vs =
    violations_of
      [ Monitor.bit_budget ~bound:(fun ~n:_ -> 20.0) () ]
      (fun hub ->
        let net = mk_net ~hub ~n:4 () in
        ignore (Ks_sim.Engine.run net (ring_protocol ~n:4) ~rounds:4))
  in
  (* 8 bits/round: each processor crosses 20 bits in round 2, once. *)
  Alcotest.(check (list string)) "fires" [ "bit-budget" ] (invariants vs);
  Alcotest.(check int) "one per processor" 4 (List.length vs)

let test_bit_budget_label_scoped () =
  let vs =
    violations_of
      [ Monitor.bit_budget ~labels:[ "tree" ] ~bound:(fun ~n:_ -> 20.0) () ]
      (fun hub ->
        let net = mk_net ~hub ~label:"rabin" ~n:4 () in
        ignore (Ks_sim.Engine.run net (ring_protocol ~n:4) ~rounds:4))
  in
  Alcotest.(check (list string)) "unwatched label: quiet" [] (invariants vs)

let test_round_bound_fires () =
  let vs =
    violations_of
      [ Monitor.round_bound ~bound:(fun ~n:_ -> 3.0) () ]
      (fun hub ->
        let net = mk_net ~hub ~n:4 () in
        ignore (Ks_sim.Engine.run net (ring_protocol ~n:4) ~rounds:6))
  in
  Alcotest.(check (list string)) "fires" [ "round-bound" ] (invariants vs);
  Alcotest.(check int) "flags once" 1 (List.length vs)

let test_termination_fires () =
  let vs =
    violations_of
      [ Monitor.decided_everywhere ~n:4 ]
      (fun hub ->
        let net = mk_net ~hub ~n:4 () in
        Ks_sim.Net.decide net 0 1;
        Ks_sim.Net.decide net 1 1)
  in
  Alcotest.(check (list string)) "fires" [ "termination" ] (invariants vs);
  Alcotest.(check int) "two procs never decided" 2 (List.length vs)

let test_engine_installs_monitors () =
  (* The [?monitors] path through Engine.run, without an ambient hub. *)
  let net = mk_net ~n:4 () in
  ignore
    (Ks_sim.Engine.run net (ring_protocol ~n:4) ~rounds:6
       ~monitors:[ Monitor.round_bound ~bound:(fun ~n:_ -> 3.0) () ]);
  match Ks_sim.Net.hub net with
  | None -> Alcotest.fail "Engine.run did not attach a hub"
  | Some hub ->
    Alcotest.(check (list string)) "fires" [ "round-bound" ]
      (invariants (Hub.finish hub))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_violation_report_renders () =
  let vs =
    violations_of
      [ Monitor.decided_everywhere ~n:2 ]
      (fun hub -> ignore (mk_net ~hub ~n:2 ()))
  in
  let table = Hub.render_violations vs in
  Alcotest.(check bool) "mentions invariant" true (contains table "termination");
  Alcotest.(check bool) "mentions header" true (contains table "INVARIANT VIOLATIONS")

(* --- Property-based adversarial sweep (the ISSUE's harness) ---------- *)

let scenario_gen =
  QCheck.Gen.(
    triple (oneofl Attacks.all) (int_range 32 256) (int_range 1 1000))

let print_scenario (s, n, seed) = Printf.sprintf "%s n=%d seed=%d" s.Attacks.label n seed

let prop_no_violations_under_budget =
  QCheck.Test.make ~name:"standard monitors quiet across Attacks scenarios" ~count:12
    (QCheck.make ~print:print_scenario scenario_gen)
    (fun (scenario, n, seed) ->
      let params = Params.practical n in
      let hub = Hub.create (Ks_workload.Experiments.standard_monitors ()) in
      ignore
        (Hub.with_ambient hub (fun () ->
             Ks_baselines.Rabin.run ~seed:(Int64.of_int seed) ~n
               ~budget:(Attacks.budget_of scenario ~params)
               ~rounds:12 ~epsilon:params.Params.epsilon
               ~inputs:(Array.init n (fun i -> (i + seed) mod 2 = 0))
               ~strategy:(Attacks.vote_flipper scenario ~params)));
      Hub.finish hub = [])

let prop_fires_when_budget_exceeded =
  (* Same runs, but the monitor is given a stricter limit than the model
     budget: every corrupting scenario must trip it. *)
  let corrupting =
    List.filter (fun s -> s.Attacks.schedule <> Attacks.No_corruption) Attacks.all
  in
  QCheck.Test.make ~name:"corruption monitor fires when limit exceeded" ~count:12
    (QCheck.make ~print:print_scenario
       QCheck.Gen.(triple (oneofl corrupting) (int_range 32 256) (int_range 1 1000)))
    (fun (scenario, n, seed) ->
      let params = Params.practical n in
      let budget = Attacks.budget_of scenario ~params in
      QCheck.assume (budget > 0);
      let hub = Hub.create [ Monitor.corruption_budget ~limit:0 () ] in
      ignore
        (Hub.with_ambient hub (fun () ->
             Ks_baselines.Rabin.run ~seed:(Int64.of_int seed) ~n ~budget ~rounds:12
               ~epsilon:params.Params.epsilon
               ~inputs:(Array.init n (fun i -> (i + seed) mod 2 = 0))
               ~strategy:(Attacks.vote_flipper scenario ~params)));
      invariants (Hub.finish hub) = [ "corruption-budget" ])

let () =
  Alcotest.run "monitor"
    [
      ( "trace",
        [
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          Alcotest.test_case "malformed JSON rejected" `Quick test_json_malformed;
          Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
          Alcotest.test_case "replay matches meter" `Quick test_replay_matches_meter;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick test_trace_deterministic;
          Alcotest.test_case "monitoring is passive" `Quick
            test_monitoring_changes_nothing;
          Alcotest.test_case "meter merge totals" `Quick test_meter_merge_totals;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "corruption budget fires" `Quick
            test_corruption_budget_fires;
          Alcotest.test_case "corruption budget quiet" `Quick
            test_corruption_budget_quiet_within_budget;
          Alcotest.test_case "agreement fires" `Quick test_agreement_fires;
          Alcotest.test_case "validity fires" `Quick test_validity_fires;
          Alcotest.test_case "validity inert when split" `Quick
            test_validity_quiet_when_split;
          Alcotest.test_case "bit budget fires" `Quick test_bit_budget_fires;
          Alcotest.test_case "bit budget label-scoped" `Quick
            test_bit_budget_label_scoped;
          Alcotest.test_case "round bound fires" `Quick test_round_bound_fires;
          Alcotest.test_case "termination fires" `Quick test_termination_fires;
          Alcotest.test_case "engine installs monitors" `Quick
            test_engine_installs_monitors;
          Alcotest.test_case "violation table renders" `Quick
            test_violation_report_renders;
        ] );
      ( "adversarial-properties",
        [
          QCheck_alcotest.to_alcotest prop_no_violations_under_budget;
          QCheck_alcotest.to_alcotest prop_fires_when_budget_exceeded;
        ] );
    ]
