open Ks_sim
module Prng = Ks_stdx.Prng

let mk_net ?(n = 8) ?(budget = 2) ?(strategy = Adversary.none) () =
  Net.create ~seed:5L ~n ~budget ~msg_bits:(fun (_ : int) -> 4) ~strategy ()

let envelope src dst payload = { Types.src; dst; payload }

let test_delivery () =
  let net = mk_net () in
  let inboxes = Net.exchange net [ envelope 0 1 42; envelope 2 1 43; envelope 0 3 7 ] in
  Alcotest.(check int) "two messages for 1" 2 (List.length inboxes.(1));
  Alcotest.(check int) "one for 3" 1 (List.length inboxes.(3));
  Alcotest.(check int) "none for 0" 0 (List.length inboxes.(0));
  Alcotest.(check int) "round advanced" 1 (Net.round net)

let test_meter_charges () =
  let net = mk_net () in
  ignore (Net.exchange net [ envelope 0 1 42; envelope 0 2 43 ]);
  let m = Net.meter net in
  Alcotest.(check int) "sender bits" 8 (Meter.sent_bits m 0);
  Alcotest.(check int) "sender msgs" 2 (Meter.sent_msgs m 0);
  Alcotest.(check int) "receiver bits" 4 (Meter.recv_bits m 1);
  Alcotest.(check int) "total" 8 (Meter.total_sent_bits m)

let test_corrupt_src_dropped () =
  let strategy =
    Adversary.make ~name:"c0"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0 ])
      ()
  in
  let net = mk_net ~strategy () in
  Alcotest.(check bool) "0 corrupt" true (Net.is_corrupt net 0);
  let inboxes = Net.exchange net [ envelope 0 1 42 ] in
  Alcotest.(check int) "message reclaimed" 0 (List.length inboxes.(1));
  Alcotest.(check int) "no bits charged" 0 (Meter.sent_bits (Net.meter net) 0)

let test_adversary_sends () =
  let strategy =
    Adversary.make ~name:"talker"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0 ])
      ~act:(fun _view -> [ envelope 0 1 99; envelope 3 1 666 ])
      ()
  in
  let net = mk_net ~strategy () in
  let inboxes = Net.exchange net [] in
  (* The forged message from good processor 3 must be rejected. *)
  Alcotest.(check int) "only corrupt-sourced delivered" 1 (List.length inboxes.(1));
  (match inboxes.(1) with
   | [ e ] ->
     Alcotest.(check int) "src" 0 e.Types.src;
     Alcotest.(check int) "payload" 99 e.Types.payload
   | _ -> Alcotest.fail "expected one message");
  Alcotest.(check int) "adversary bits not charged to good" 0
    (Meter.sent_bits (Net.meter net) 3)

let test_budget_enforced () =
  let strategy =
    Adversary.make ~name:"greedy"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0; 1; 2; 3; 4 ])
      ()
  in
  let net = mk_net ~budget:2 ~strategy () in
  Alcotest.(check int) "capped at budget" 2 (Net.corrupt_count net)

let test_adaptive_corruption () =
  let strategy =
    Adversary.make ~name:"adaptive"
      ~adapt:(fun view -> if view.Types.view_round = 1 then [ 5 ] else [])
      ()
  in
  let net = mk_net ~strategy () in
  ignore (Net.exchange net []);
  Alcotest.(check bool) "not yet corrupt" false (Net.is_corrupt net 5);
  ignore (Net.exchange net []);
  Alcotest.(check bool) "corrupted mid-run" true (Net.is_corrupt net 5);
  Alcotest.(check int) "good procs shrink" 7 (List.length (Net.good_procs net))

let test_rushing_visibility () =
  (* The adversary must see messages addressed to its processors before
     acting — and only those (private channels). *)
  let seen = ref [] in
  let strategy =
    Adversary.make ~name:"rushing"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 1 ])
      ~act:(fun view ->
        seen := List.map (fun e -> (e.Types.src, e.Types.dst, e.Types.payload))
            view.Types.view_visible;
        [])
      ()
  in
  let net = mk_net ~strategy () in
  ignore (Net.exchange net [ envelope 0 1 42; envelope 0 2 7 ]);
  Alcotest.(check (list (triple int int int))) "sees only its own traffic"
    [ (0, 1, 42) ] !seen

let test_on_corrupt_hook () =
  let fallen = ref [] in
  let strategy =
    Adversary.make ~name:"hook"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 3 ])
      ~on_corrupt:(fun p -> fallen := p :: !fallen)
      ()
  in
  let net = mk_net ~strategy () in
  Net.corrupt_now net [ 4 ];
  Alcotest.(check (list int)) "hook fired" [ 4; 3 ] !fallen

let test_proc_rng_memoized () =
  let net = mk_net () in
  let a = Net.proc_rng net 2 in
  let v1 = Prng.bits64 a in
  let b = Net.proc_rng net 2 in
  let v2 = Prng.bits64 b in
  Alcotest.(check bool) "stream advances across calls" true (v1 <> v2)

let test_engine_runs_protocol () =
  (* Flooding counter: each processor broadcasts its round number to
     everyone; states accumulate the payload sum. *)
  let net = mk_net ~budget:0 () in
  let n = Net.n net in
  let protocol =
    {
      Engine.init = (fun _ -> 0);
      step =
        (fun ~round ~me st ~inbox ->
          let st = st + List.fold_left (fun acc e -> acc + e.Types.payload) 0 inbox in
          (st, List.init n (fun dst -> envelope me dst round)));
    }
  in
  let states = Engine.run net protocol ~rounds:3 in
  (* Rounds 0,1 are received (round 2's sends are in flight): each
     processor hears 0 and 1 from all n. *)
  Array.iter
    (fun st -> Alcotest.(check int) "accumulated" (n * (0 + 1)) st)
    states

let test_engine_freezes_corrupt () =
  let strategy =
    Adversary.make ~name:"late"
      ~adapt:(fun view -> if view.Types.view_round = 1 then [ 0 ] else [])
      ()
  in
  let net = mk_net ~strategy () in
  let protocol =
    {
      Engine.init = (fun _ -> 0);
      step = (fun ~round:_ ~me:_ st ~inbox:_ -> (st + 1, []));
    }
  in
  let states = Engine.run net protocol ~rounds:5 in
  (* Processor 0 stepped in rounds 0 and 1, then fell. *)
  Alcotest.(check int) "frozen at corruption" 2 states.(0);
  Alcotest.(check int) "good steps all rounds" 5 states.(1)

(* Synthetic adversary views, for driving [adapt] at budget extremes the
   Net constructor itself forbids (budget >= n). *)
let mk_view ?(n = 8) ?(budget_left = 0) ?(is_corrupt = fun _ -> false) () =
  {
    Types.view_round = 0;
    view_n = n;
    view_is_corrupt = is_corrupt;
    view_corrupt = [];
    view_budget_left = budget_left;
    view_visible = [];
    view_rng = Prng.create 9L;
  }

let test_creeping_crash_terminates () =
  (* Regression: with [view_budget_left = n] the rejection sampler used
     to spin forever once every processor was corrupt.  Both extremes
     must return (bounded tries), picking only honest processors. *)
  let n = 8 in
  let s : int Types.strategy = Adversary.creeping_crash ~per_round:n in
  let all_corrupt =
    s.Types.adapt (mk_view ~n ~budget_left:n ~is_corrupt:(fun _ -> true) ())
  in
  Alcotest.(check (list int)) "all corrupt: nothing pickable" [] all_corrupt;
  let fresh = s.Types.adapt (mk_view ~n ~budget_left:n ()) in
  Alcotest.(check bool) "picks at most n" true (List.length fresh <= n);
  Alcotest.(check int) "no duplicates" (List.length fresh)
    (List.length (List.sort_uniq compare fresh));
  (* Half corrupt, budget still n: only the honest half is pickable. *)
  let half = s.Types.adapt (mk_view ~n ~budget_left:n ~is_corrupt:(fun p -> p < n / 2) ()) in
  Alcotest.(check bool) "only honest picked" true
    (List.for_all (fun p -> p >= n / 2) half)

let test_budget_edges_all_schedules () =
  (* Every canned workload schedule must cope with the two budget
     extremes: a zero budget (adaptation requests are all refused, and
     the schedule must not corrupt anyone) and a synthetic view claiming
     [view_budget_left = n] (more budget than honest processors — the
     [adapt] call must still terminate and stay within bounds). *)
  let n = 16 in
  let params = Ks_core.Params.practical n in
  List.iter
    (fun sc ->
      let label = sc.Ks_workload.Attacks.label in
      let strategy : int Types.strategy =
        Ks_workload.Attacks.generic_strategy sc ~params
      in
      let net =
        Net.create ~seed:3L ~n ~budget:0 ~msg_bits:(fun (_ : int) -> 1)
          ~strategy ()
      in
      for _ = 1 to 4 do
        ignore (Net.exchange net [ envelope 0 1 1 ])
      done;
      Alcotest.(check int)
        (label ^ ": budget 0 corrupts nobody")
        0 (Net.corrupt_count net);
      let picked =
        strategy.Types.adapt
          (mk_view ~n ~budget_left:n ~is_corrupt:(fun _ -> false) ())
      in
      Alcotest.(check bool)
        (label ^ ": budget n adapt stays within n")
        true
        (List.length picked <= n && List.for_all (fun p -> p >= 0 && p < n) picked);
      let saturated =
        strategy.Types.adapt
          (mk_view ~n ~budget_left:n ~is_corrupt:(fun _ -> true) ())
      in
      Alcotest.(check (list int))
        (label ^ ": everyone corrupt, nothing pickable")
        [] saturated)
    Ks_workload.Attacks.all

let test_meter_merge () =
  let a = Meter.create ~n:4 and b = Meter.create ~n:4 in
  Meter.charge_send a 0 ~bits:10;
  Meter.charge_send b 0 ~bits:5;
  Meter.tick_round a;
  Meter.tick_round b;
  Meter.merge_into a b;
  Alcotest.(check int) "bits merged" 15 (Meter.sent_bits a 0);
  Alcotest.(check int) "rounds merged" 2 (Meter.rounds a)

let () =
  Alcotest.run "sim"
    [
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_delivery;
          Alcotest.test_case "meter" `Quick test_meter_charges;
          Alcotest.test_case "corrupt src dropped" `Quick test_corrupt_src_dropped;
          Alcotest.test_case "adversary sends" `Quick test_adversary_sends;
          Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
          Alcotest.test_case "adaptive corruption" `Quick test_adaptive_corruption;
          Alcotest.test_case "rushing visibility" `Quick test_rushing_visibility;
          Alcotest.test_case "on_corrupt hook" `Quick test_on_corrupt_hook;
          Alcotest.test_case "proc rng memoized" `Quick test_proc_rng_memoized;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs protocol" `Quick test_engine_runs_protocol;
          Alcotest.test_case "freezes corrupt" `Quick test_engine_freezes_corrupt;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "creeping crash terminates" `Quick
            test_creeping_crash_terminates;
          Alcotest.test_case "budget edges, all schedules" `Quick
            test_budget_edges_all_schedules;
        ] );
      ("meter", [ Alcotest.test_case "merge" `Quick test_meter_merge ]);
    ]
