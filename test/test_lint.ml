(* Fixture tests for the ks_lint determinism & bit-accounting linter:
   every rule R1–R5 both firing and passing, suppression handling, and
   the determinism regression the linter exists to protect (same seed,
   byte-identical trace). *)

module L = Ks_lint_rules
module Trace = Ks_monitor.Trace
module Hub = Ks_monitor.Hub

let diags ~path src =
  match L.lint_source ~path src with
  | L.Clean -> []
  | L.Diagnostics ds -> ds
  | L.Parse_error e -> Alcotest.failf "unexpected parse error: %s" e

let rules ~path src = List.map (fun d -> L.rule_name d.L.rule) (diags ~path src)

let check_rules name ~path src expected =
  Alcotest.(check (list string)) name expected (rules ~path src)

(* --- R1: ambient randomness ------------------------------------------- *)

let test_r1 () =
  let src = "let x = Random.int 10\nlet y = Stdlib.Random.bits ()\n" in
  check_rules "R1 fires twice in lib/core" ~path:"lib/core/fixture.ml" src [ "R1"; "R1" ];
  check_rules "R1 fires in bin too" ~path:"bin/fixture.ml" src [ "R1"; "R1" ];
  check_rules "R1 exempt in lib/stdx (the PRNG home)" ~path:"lib/stdx/fixture.ml" src [];
  (* The fault injector draws from its own seeded plan stream; ambient
     randomness there would silently break fault-plan replay. *)
  check_rules "R1 fires in lib/faults" ~path:"lib/faults/fixture.ml" src
    [ "R1"; "R1" ];
  check_rules "seeded injector stream passes" ~path:"lib/faults/fixture.ml"
    "let x t = Ks_stdx.Prng.bernoulli t.rng t.plan.drop\n" [];
  check_rules "seeded PRNG passes" ~path:"lib/core/fixture.ml"
    "let x rng = Ks_stdx.Prng.int rng 10\n" []

(* --- R2: hashtable iteration order ------------------------------------ *)

let test_r2 () =
  let src =
    "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n\
     let g tbl = Stdlib.Hashtbl.fold (fun _ _ a -> a) tbl 0\n\
     let h tbl = Hashtbl.to_seq tbl\n"
  in
  check_rules "R2 fires on iter/fold/to_seq in lib/sim" ~path:"lib/sim/fixture.ml" src
    [ "R2"; "R2"; "R2" ];
  check_rules "R2 out of scope in lib/workload" ~path:"lib/workload/fixture.ml" src [];
  check_rules "sorted traversal passes" ~path:"lib/core/fixture.ml"
    "let f tbl = Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp (fun _ _ -> ()) tbl\n\
     let ok tbl = Hashtbl.replace tbl 1 2; Hashtbl.find_opt tbl 1\n"
    []

(* --- R3: polymorphic comparison --------------------------------------- *)

let test_r3 () =
  check_rules "R3 fires on bare compare and (=) as value"
    ~path:"lib/topology/fixture.ml"
    "let a = compare 1 2\n\
     let b = List.sort compare [ 3; 1 ]\n\
     let c = List.mem2 ( = ) 1 [ 1 ]\n"
    [ "R3"; "R3"; "R3" ];
  check_rules "infix equality and monomorphic comparators pass"
    ~path:"lib/topology/fixture.ml"
    "let a x = x = 1\nlet b = List.sort Int.compare [ 3; 1 ]\nlet c x y = x <> y\n" [];
  check_rules "R3 out of scope in test code" ~path:"test/fixture.ml"
    "let a = compare 1 2\n" []

(* --- R4: bypassing the metered network layer --------------------------- *)

let test_r4 () =
  let src =
    "let f m = Meter.charge_send m 0 ~bits:8\n\
     let g m = Ks_sim.Meter.tick_round m\n\
     let h () = print_endline \"leak\"\n\
     let i () = Printf.printf \"leak %d\" 1\n"
  in
  check_rules "R4 fires on Meter calls and raw channel writes in lib/core"
    ~path:"lib/core/fixture.ml" src
    [ "R4"; "R4"; "R4"; "R4" ];
  check_rules "the network layer itself is exempt" ~path:"lib/sim/net.ml" src [];
  check_rules "Format.fprintf to a caller's formatter (pp idiom) passes"
    ~path:"lib/core/fixture.ml"
    "let pp fmt t = Format.fprintf fmt \"%d\" t\n" []

(* --- R5: wall clock ----------------------------------------------------- *)

let test_r5 () =
  let src = "let a = Unix.gettimeofday ()\nlet b = Sys.time ()\n" in
  check_rules "R5 fires anywhere under lib/" ~path:"lib/monitor/fixture.ml" src
    [ "R5"; "R5" ];
  check_rules "R5 out of scope outside lib/" ~path:"bench/fixture.ml" src [];
  (* Fault timing must be measured in rounds, never wall clock — a
     wall-clock fault schedule could not replay. *)
  check_rules "R5 fires in lib/faults" ~path:"lib/faults/fixture.ml" src
    [ "R5"; "R5" ];
  check_rules "round-based silence windows pass" ~path:"lib/faults/fixture.ml"
    "let silent t p = t.silent_until.(p) > t.round\n" [];
  check_rules "logical round counters pass" ~path:"lib/sim/fixture.ml"
    "let a rounds = rounds + 1\n" []

(* --- lib/attacks is protocol code --------------------------------------- *)

(* Attack strategies must replay from their seed like everything else in
   the protocol tree: an attack drawing ambient randomness or wall clock
   would make every survival row in T17 unreproducible. *)
let test_attacks_in_scope () =
  check_rules "R1 fires in lib/attacks" ~path:"lib/attacks/fixture.ml"
    "let flip () = Random.bool ()\n" [ "R1" ];
  check_rules "R2 fires in lib/attacks" ~path:"lib/attacks/fixture.ml"
    "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n" [ "R2" ];
  check_rules "R5 fires in lib/attacks" ~path:"lib/attacks/fixture.ml"
    "let now () = Unix.gettimeofday ()\n" [ "R5" ];
  check_rules "seeded per-processor stream passes" ~path:"lib/attacks/fixture.ml"
    "let flip net p = Ks_stdx.Prng.bool (Ks_sim.Net.proc_rng net p)\n" []

(* --- Suppressions ------------------------------------------------------- *)

let test_suppressions () =
  check_rules "justified suppression on the same line is honoured"
    ~path:"lib/core/fixture.ml"
    "let x = Random.bits () (* ks_lint: allow R1 — fixture needs raw entropy *)\n" [];
  check_rules "justified suppression on the line above is honoured"
    ~path:"lib/core/fixture.ml"
    "(* ks_lint: allow R2 — replace-populated, order folded into a sum *)\n\
     let f tbl = Hashtbl.fold (fun _ v a -> v + a) tbl 0\n"
    [];
  (match
     diags ~path:"lib/core/fixture.ml"
       "(* ks_lint: allow R2 *)\nlet f tbl = Hashtbl.fold (fun _ v a -> v + a) tbl 0\n"
   with
   | [ d ] ->
     Alcotest.(check string) "unjustified suppression still reports R2" "R2"
       (L.rule_name d.L.rule);
     Alcotest.(check bool)
       "message demands a justification" true
       (let m = d.L.message in
        let rec has i =
          i + 13 <= String.length m && (String.sub m i 13 = "justification" || has (i + 1))
        in
        has 0)
   | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  check_rules "a suppression for the wrong rule does not mask"
    ~path:"lib/core/fixture.ml"
    "(* ks_lint: allow R1 — wrong rule entirely for this site *)\n\
     let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n"
    [ "R2" ]

(* --- Diagnostics & parse errors ----------------------------------------- *)

let test_rendering () =
  match diags ~path:"lib/core/fixture.ml" "let a = ()\nlet x = Random.int 10\n" with
  | [ d ] ->
    let rendered = L.render_diagnostic d in
    Alcotest.(check int) "line number" 2 d.L.line;
    let prefix = "lib/core/fixture.ml:2: [R1]" in
    Alcotest.(check string) "file:line: [rule] prefix" prefix
      (String.sub rendered 0 (String.length prefix))
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_parse_error () =
  match L.lint_source ~path:"lib/core/fixture.ml" "let let let" with
  | L.Parse_error _ -> ()
  | L.Clean | L.Diagnostics _ -> Alcotest.fail "expected a parse error"

(* --- The whole tree is lint-clean --------------------------------------- *)

(* Run the engine over the real sources, exactly as `dune build @lint`
   does.  The test cwd is _build/default/test, so walk up to the project
   roots; when the sandbox does not expose them, there is nothing to
   check. *)
let test_tree_clean () =
  let build_root = Filename.concat (Filename.dirname Sys.executable_name) ".." in
  let roots =
    List.filter Sys.file_exists
      (List.map (Filename.concat build_root)
         [ "lib"; "bin"; "bench"; "examples"; "test" ])
  in
  if roots <> [] then begin
    let summary = L.lint_paths roots in
    List.iter
      (fun d -> Printf.eprintf "%s\n" (L.render_diagnostic d))
      summary.L.diagnostics;
    Alcotest.(check int) "no violations in the tree" 0
      (List.length summary.L.diagnostics);
    Alcotest.(check (list string)) "no errors" [] summary.L.errors
  end

(* --- Determinism regression --------------------------------------------- *)

(* The invariant the linter protects, checked end to end: one experiment
   table, same seed, run twice — byte-identical structured trace and
   identical rows.  T3 exercises the sorted-traversal rewrites in
   comm.ml / ae_ba.ml / ae_to_e.ml. *)
let traced_t3 () =
  let sink = Trace.ring ~capacity:200_000 in
  let hub = Hub.create ~trace:sink [] in
  let rows =
    Hub.with_ambient hub (fun () ->
        Ks_workload.Experiments.t3_ae_agreement ~ns:[ 32 ] ~seeds:[ 1 ] ())
  in
  ignore (Hub.finish hub);
  (rows, Trace.render (Trace.contents sink))

let test_determinism () =
  let rows1, trace1 = traced_t3 () in
  let rows2, trace2 = traced_t3 () in
  Alcotest.(check bool) "trace is non-empty" true (String.length trace1 > 0);
  Alcotest.(check string) "same seed, byte-identical trace" trace1 trace2;
  Alcotest.(check (list (list string))) "same seed, identical rows" rows1 rows2

(* Same invariant for the optimized decode kernels (support-mask
   memoization in best_codeword, barycentric evaluators, Mersenne-shift
   multiplication): a seeded decoding workload rendered to text must be
   byte-identical across runs. *)
module ShZ = Ks_shamir.Shamir.Make (Ks_field.Zp)
module Zp = Ks_field.Zp

let decode_workload () =
  let rng = Ks_stdx.Prng.create 4242L in
  let out = Buffer.create 4096 in
  for trial = 1 to 40 do
    let threshold = 2 + (trial mod 4) in
    let holders = (3 * (threshold + 1)) + (trial mod 5) in
    let secret = Zp.random rng in
    let shares = ShZ.deal rng ~threshold ~holders secret in
    let nerr = trial mod (holders - threshold) in
    let idx = Ks_stdx.Prng.sample_without_replacement rng ~n:holders ~k:nerr in
    Array.iter
      (fun i -> shares.(i) <- { shares.(i) with ShZ.value = Zp.random rng })
      idx;
    (match ShZ.reconstruct_robust ~threshold (Array.to_list shares) with
     | Some v -> Buffer.add_string out (Printf.sprintf "%d:some:%d\n" trial (Zp.to_int v))
     | None -> Buffer.add_string out (Printf.sprintf "%d:none\n" trial));
    let words = Array.init 5 (fun w -> Zp.of_int ((trial * 10) + w)) in
    let xs = Array.init holders (fun i -> i) in
    let per_holder = ShZ.deal_vector_at rng ~threshold ~xs words in
    let holder_vecs =
      List.init holders (fun h ->
          let v =
            if h < nerr then Array.map (fun _ -> Zp.random rng) per_holder.(h)
            else per_holder.(h)
          in
          (xs.(h), v))
    in
    match ShZ.reconstruct_vectors ~threshold holder_vecs with
    | Some vs ->
      Buffer.add_string out
        (Printf.sprintf "%d:vec:%s\n" trial
           (String.concat ","
              (Array.to_list (Array.map (fun v -> string_of_int (Zp.to_int v)) vs))))
    | None -> Buffer.add_string out (Printf.sprintf "%d:vec:none\n" trial)
  done;
  Buffer.contents out

let test_decode_determinism () =
  let a = decode_workload () in
  let b = decode_workload () in
  Alcotest.(check bool) "workload is non-empty" true (String.length a > 0);
  Alcotest.(check string) "seeded decode workload twice, byte-identical" a b

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 ambient randomness" `Quick test_r1;
          Alcotest.test_case "R2 hashtable iteration" `Quick test_r2;
          Alcotest.test_case "R3 polymorphic comparison" `Quick test_r3;
          Alcotest.test_case "R4 unmetered channels" `Quick test_r4;
          Alcotest.test_case "R5 wall clock" `Quick test_r5;
          Alcotest.test_case "lib/attacks in scope" `Quick test_attacks_in_scope;
        ] );
      ( "suppressions",
        [ Alcotest.test_case "allow comments" `Quick test_suppressions ] );
      ( "diagnostics",
        [
          Alcotest.test_case "rendering" `Quick test_rendering;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "tree is lint-clean" `Quick test_tree_clean;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "t3 twice, same trace" `Slow test_determinism;
          Alcotest.test_case "decode workload twice, same bytes" `Quick
            test_decode_determinism;
        ] );
    ]
