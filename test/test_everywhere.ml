module E = Ks_core.Everywhere
module Params = Ks_core.Params
module Attacks = Ks_workload.Attacks
module Inputs = Ks_workload.Inputs
module Prng = Ks_stdx.Prng

let run ?(n = 32) ?(scenario = Attacks.honest) ?(seed = 1L) ?(inputs = Inputs.Split) () =
  let params = Params.practical n in
  let budget = Attacks.budget_of scenario ~params in
  let rng = Prng.create seed in
  let input_bits = Inputs.generate rng ~n inputs in
  let tree =
    Ks_topology.Tree.build (Prng.split rng) (Params.tree_config params)
  in
  E.run ~params ~seed ~inputs:input_bits ~behavior:scenario.Attacks.behavior
    ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
    ~a2e_strategy:(fun ~carried ~coin ->
      Attacks.a2e_strategy scenario ~params ~coin ~carried)
    ~budget ()

let test_honest () =
  let r = run () in
  Alcotest.(check bool) "success" true r.E.success;
  Alcotest.(check bool) "safe" true r.E.safe;
  Alcotest.(check bool) "agreed value present" true (r.E.agreed_value <> None)

let test_validity_all_one () =
  let r = run ~inputs:Inputs.All_one () in
  Alcotest.(check bool) "success" true r.E.success;
  Alcotest.(check (option int)) "decides the unanimous input" (Some 1) r.E.agreed_value

let test_validity_all_zero () =
  let r = run ~inputs:Inputs.All_zero () in
  Alcotest.(check bool) "success" true r.E.success;
  Alcotest.(check (option int)) "decides the unanimous input" (Some 0) r.E.agreed_value

let test_crash () =
  let r = run ~scenario:Attacks.crash () in
  Alcotest.(check bool) "success under crash" true r.E.success;
  Alcotest.(check bool) "safe" true r.E.safe

let test_byzantine () =
  let r = run ~scenario:Attacks.byzantine_static () in
  Alcotest.(check bool) "safe" true r.E.safe;
  Alcotest.(check bool) "success under byzantine" true r.E.success

let test_flood () =
  let r = run ~scenario:Attacks.flood () in
  Alcotest.(check bool) "safe under flooding" true r.E.safe;
  Alcotest.(check bool) "success under flooding" true r.E.success

let test_metrics_positive () =
  let r = run () in
  Alcotest.(check bool) "ae bits positive" true (r.E.max_sent_bits_ae > 0);
  Alcotest.(check bool) "a2e bits positive" true (r.E.max_sent_bits_a2e > 0);
  Alcotest.(check bool) "total >= parts" true
    (r.E.max_sent_bits_total >= r.E.max_sent_bits_ae
     && r.E.max_sent_bits_total >= r.E.max_sent_bits_a2e);
  Alcotest.(check bool) "rounds counted" true (r.E.ae_rounds > 0 && r.E.a2e_rounds > 0);
  Alcotest.(check bool) "total bits across procs" true
    (r.E.total_sent_bits >= r.E.max_sent_bits_total)

let test_carry_corruptions () =
  let base = Ks_sim.Adversary.none in
  let s = E.carry_corruptions base ~carried:[ 1; 2; 3 ] in
  let picked = s.Ks_sim.Types.initial_corruptions (Prng.create 1L) ~n:10 ~budget:5 in
  Alcotest.(check (list int)) "carried first" [ 1; 2; 3 ] picked

let test_corruption_carries_to_a2e () =
  let n = 32 in
  let params = Params.practical n in
  let scenario = Attacks.byzantine_static in
  let budget = Attacks.budget_of scenario ~params in
  let seen_carried = ref [] in
  let r =
    E.run ~params ~seed:5L
      ~inputs:(Array.init n (fun i -> i mod 2 = 0))
      ~behavior:scenario.Attacks.behavior
      ~tree_strategy:
        (Ks_sim.Adversary.make ~name:"static"
           ~initial_corruptions:(fun rng ~n ~budget:b ->
             Ks_sim.Adversary.uniform_random_set rng ~n ~budget:(Stdlib.min budget b))
           ())
      ~a2e_strategy:(fun ~carried ~coin:_ ->
        seen_carried := carried;
        E.carry_corruptions Ks_sim.Adversary.none ~carried)
      ~budget ()
  in
  ignore r;
  Alcotest.(check int) "all tree corruptions carried" budget
    (List.length !seen_carried)

let () =
  Alcotest.run "everywhere"
    [
      ( "integration",
        [
          Alcotest.test_case "honest" `Slow test_honest;
          Alcotest.test_case "validity all-one" `Slow test_validity_all_one;
          Alcotest.test_case "validity all-zero" `Slow test_validity_all_zero;
          Alcotest.test_case "crash" `Slow test_crash;
          Alcotest.test_case "byzantine" `Slow test_byzantine;
          Alcotest.test_case "flood" `Slow test_flood;
          Alcotest.test_case "metrics" `Slow test_metrics_positive;
        ] );
      ( "composition",
        [
          Alcotest.test_case "carry corruptions" `Quick test_carry_corruptions;
          Alcotest.test_case "corruption carries" `Slow test_corruption_carries_to_a2e;
        ] );
    ]
