(* CLI contract tests: the executables must reject unknown flags with a
   usage message and a distinct exit code, never a raw exception.  Runs
   the real binaries (declared as deps in test/dune); the test cwd is
   _build/default/test. *)

(* Resolve the binaries relative to this test executable so the paths
   hold both under `dune runtest` (cwd _build/default/test) and under
   `dune exec` from the project root. *)
let build_root = Filename.concat (Filename.dirname Sys.executable_name) ".."
let ba_sim = Filename.concat build_root "bin/ba_sim.exe"
let bench = Filename.concat build_root "bench/main.exe"
let ks_lint = Filename.concat build_root "bin/ks_lint.exe"

let run ?(stdin_null = true) cmd_line =
  let out = Filename.temp_file "ks_cli" ".out" in
  let err = Filename.temp_file "ks_cli" ".err" in
  let redirect_in = if stdin_null then " < /dev/null" else "" in
  let code = Sys.command (cmd_line ^ redirect_in ^ " > " ^ out ^ " 2> " ^ err) in
  let read f =
    let ic = open_in_bin f in
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove f)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, read out, read err)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_usage name (code, out, err) ~expect_code =
  Alcotest.(check int) (name ^ ": exit code") expect_code code;
  let text = out ^ err in
  Alcotest.(check bool)
    (name ^ ": prints usage, not a backtrace") true
    ((contains text "usage" || contains text "Usage") && not (contains text "Fatal error"))

let test_ba_sim_unknown_flag () =
  check_usage "ba_sim unknown option" (run (ba_sim ^ " run --definitely-not-a-flag"))
    ~expect_code:124;
  check_usage "ba_sim unknown command" (run (ba_sim ^ " frobnicate")) ~expect_code:124

let test_ba_sim_help () =
  let code, out, _ = run (ba_sim ^ " --help=plain") in
  Alcotest.(check int) "ba_sim --help exits 0" 0 code;
  Alcotest.(check bool) "help mentions the run command" true (contains out "run")

(* The run command's documented exit codes (docs/FAULTS.md): 0 = agreed
   cleanly, 3 = degraded but agreed, 4 = failed; bad command lines stay
   at cmdliner's 124.  Each pin is a deterministic seeded run. *)
let test_ba_sim_exit_codes () =
  let code, out, _ =
    run (ba_sim ^ " run --protocol ae -n 32 --adversary honest --seed 7")
  in
  Alcotest.(check int) "clean honest run exits 0" 0 code;
  Alcotest.(check bool) "reports no degradation" true
    (contains out "decode_failures=0");
  let code, out, _ =
    run
      (ba_sim
      ^ " run --protocol ae -n 32 --adversary honest --seed 7 --faults drop=0.05")
  in
  Alcotest.(check int) "benign drops degrade to exit 3" 3 code;
  Alcotest.(check bool) "agreement still reported" true
    (contains out "agreement=100.0%");
  let code, out, _ =
    run
      (ba_sim
      ^ " run --protocol phase-king -n 32 --adversary honest --seed 7 --faults \
         drop=0.8")
  in
  Alcotest.(check int) "heavy drops break phase-king: exit 4" 4 code;
  Alcotest.(check bool) "failure is explicit" true (contains out "FAILED");
  let code, _, err =
    run (ba_sim ^ " run --protocol rabin -n 16 --faults nonsense=1")
  in
  Alcotest.(check int) "malformed fault plan exits 124" 124 code;
  Alcotest.(check bool) "names the bad key" true (contains err "nonsense")

(* The discovery flags are part of the scripting surface (CI's attack
   matrix iterates over them), so the names they print are pinned. *)
let test_ba_sim_list_attacks () =
  let code, out, _ = run (ba_sim ^ " --list-attacks") in
  Alcotest.(check int) "--list-attacks exits 0" 0 code;
  List.iter
    (fun name ->
      Alcotest.(check bool) ("lists " ^ name) true (contains out name))
    [
      "equivocate"; "bad-share-inside"; "bad-share-outside"; "hunt-committee";
      "coin-split"; "wire-junk";
    ]

let test_ba_sim_list_faults () =
  let code, out, _ = run (ba_sim ^ " --list-faults") in
  Alcotest.(check int) "--list-faults exits 0" 0 code;
  List.iter
    (fun name ->
      Alcotest.(check bool) ("lists preset " ^ name) true (contains out name))
    [ "lossy"; "choppy"; "churn"; "flaky" ];
  Alcotest.(check bool) "shows the spec each preset expands to" true
    (contains out "drop=0.02")

let test_ba_sim_attack_flag () =
  let code, out, _ =
    run
      (ba_sim
      ^ " run --protocol everywhere -n 16 --attack wire-junk --corrupt 0.25 \
         --seed 3")
  in
  Alcotest.(check int) "attacked run below threshold: degraded but agreed" 3 code;
  Alcotest.(check bool) "labels the adversary" true
    (contains out "adversary=attack:wire-junk");
  Alcotest.(check bool) "reports quarantine convictions" true
    (contains out "quarantined=31");
  let code, _, err =
    run (ba_sim ^ " run --protocol everywhere -n 16 --attack nope --seed 3")
  in
  Alcotest.(check int) "unknown attack exits 124" 124 code;
  Alcotest.(check bool) "names the unknown attack" true (contains err "nope");
  let code, _, _ =
    run
      (ba_sim
      ^ " run --protocol everywhere -n 16 --attack wire-junk --corrupt 1.5 \
         --seed 3")
  in
  Alcotest.(check int) "corruption fraction outside [0,1] exits 124" 124 code;
  (* A preset name must behave exactly like its documented expansion. *)
  let preset =
    run (ba_sim ^ " run --protocol ae -n 32 --adversary honest --seed 7 --faults choppy")
  in
  let manual =
    run
      (ba_sim
      ^ " run --protocol ae -n 32 --adversary honest --seed 7 --faults \
         seed=22,drop=0.05,dup=0.02")
  in
  let pc, po, _ = preset and mc, mo, _ = manual in
  Alcotest.(check int) "preset exit = manual-spec exit" mc pc;
  Alcotest.(check string) "preset output = manual-spec output" mo po

let test_bench_unknown_flag () =
  check_usage "bench unknown option" (run (bench ^ " --definitely-not-a-flag"))
    ~expect_code:2;
  check_usage "bench unknown table" (run (bench ^ " --table t99")) ~expect_code:2;
  check_usage "bench missing table name" (run (bench ^ " --table")) ~expect_code:2;
  check_usage "bench trailing junk" (run (bench ^ " --quick --junk")) ~expect_code:2;
  check_usage "bench --trace without file" (run (bench ^ " --trace")) ~expect_code:2;
  check_usage "bench --json without file" (run (bench ^ " --json")) ~expect_code:2;
  check_usage "bench --baseline without --json"
    (run (bench ^ " --baseline some.json"))
    ~expect_code:2;
  check_usage "bench --enforce-baseline without --json"
    (run (bench ^ " --enforce-baseline"))
    ~expect_code:2

let test_ks_lint_cli () =
  check_usage "ks_lint unknown option" (run (ks_lint ^ " --bogus")) ~expect_code:2;
  let code, _, err = run (ks_lint ^ " no-such-dir") in
  Alcotest.(check int) "ks_lint missing path exits 2" 2 code;
  Alcotest.(check bool) "names the missing path" true (contains err "no-such-dir");
  let code, out, _ = run (ks_lint ^ " --help") in
  Alcotest.(check int) "ks_lint --help exits 0" 0 code;
  Alcotest.(check bool) "help names the rules doc" true (contains out "LINT.md")

(* End to end through the real binary: a fixture tree with a violation
   must produce a diagnostic and exit 1. *)
let test_ks_lint_fixture_tree () =
  let dir = Filename.temp_file "ks_lint_fixture" "" in
  Sys.remove dir;
  let core = Filename.concat dir "lib/core" in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdir_p core;
  let write f content =
    let oc = open_out (Filename.concat core f) in
    output_string oc content;
    close_out oc
  in
  write "bad.ml" "let x = Random.int 10\n";
  write "good.ml" "let x rng = Ks_stdx.Prng.int rng 10\n";
  let code, out, _ = run (ks_lint ^ " " ^ dir) in
  Alcotest.(check int) "violations exit 1" 1 code;
  Alcotest.(check bool) "diagnostic names file and rule" true
    (contains out "bad.ml:1: [R1]");
  Alcotest.(check bool) "clean file not reported" true (not (contains out "good.ml"));
  write "bad.ml" "let x rng = Ks_stdx.Prng.int rng 10\n";
  let code, out, _ = run (ks_lint ^ " " ^ dir) in
  Alcotest.(check int) "clean tree exits 0" 0 code;
  Alcotest.(check bool) "reports clean" true (contains out "clean")

let () =
  Alcotest.run "cli"
    [
      ( "ba_sim",
        [
          Alcotest.test_case "unknown flag" `Quick test_ba_sim_unknown_flag;
          Alcotest.test_case "help" `Quick test_ba_sim_help;
          Alcotest.test_case "exit codes" `Quick test_ba_sim_exit_codes;
          Alcotest.test_case "list attacks" `Quick test_ba_sim_list_attacks;
          Alcotest.test_case "list faults" `Quick test_ba_sim_list_faults;
          Alcotest.test_case "attack flag" `Quick test_ba_sim_attack_flag;
        ] );
      ( "bench",
        [ Alcotest.test_case "unknown flag" `Quick test_bench_unknown_flag ] );
      ( "ks_lint",
        [
          Alcotest.test_case "flags" `Quick test_ks_lint_cli;
          Alcotest.test_case "fixture tree" `Quick test_ks_lint_fixture_tree;
        ] );
    ]
