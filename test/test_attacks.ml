(* Attack-library tests: decoder fuzzers (every parser returns a typed
   result on arbitrary bytes — never an exception), the adversarial
   metering and rushing-view contracts of Ks_sim.Net, the quarantine
   layer's trace round-trip, the bad-share-inside safety property
   (robust decoding never silently flips a value), and the pin that
   Ks_attacks.protocol_tree really is the tree the protocol builds. *)

module Comm = Ks_core.Comm
module A2e = Ks_core.Ae_to_e
module Params = Ks_core.Params
module Tree = Ks_topology.Tree
module Wire = Ks_stdx.Wire
module Prng = Ks_stdx.Prng
module Event = Ks_monitor.Event
module Trace = Ks_monitor.Trace

(* --- fuzzers: every decode path is total ----------------------------- *)

let random_bytes rng =
  let len = Prng.int rng 64 in
  Bytes.init len (fun _ -> Char.chr (Prng.int rng 256))

(* [decoder buf] must return [Ok _] or [Error _]; raising is the bug
   class these fuzzers exist to catch. *)
let fuzz_random name decoder iters seed =
  let rng = Prng.create seed in
  for i = 1 to iters do
    let buf = random_bytes rng in
    match decoder buf with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "%s raised %s on case %d (%d bytes)" name
        (Printexc.to_string e) i (Bytes.length buf)
  done

let sample_payloads =
  [
    Comm.Deal { cand = 3; inst = 2; words = [| 1; 2; 3 |] };
    Comm.Share_up { cand = 0; inst = 7; words = [| 0 |] };
    Comm.Share_down
      { cand = 5; level = 2; node = 1; inst = 4; off = 6; words = [| 9; 8 |] };
    Comm.Leaf_val { cand = 1; leaf = 3; inst = 0; off = 2; words = [| 7 |] };
    Comm.Open_val { cand = 2; leaf = 1; off = 0; words = [| 5; 6; 7; 8 |] };
    Comm.Vote { level = 2; node = 3; ba = 1; vote = true };
    Comm.Votes { level = 1; node = 0; packed = Bytes.of_string "\x05\xaa" };
  ]

let sample_a2e =
  [ A2e.Request 0; A2e.Request 3000; A2e.Reply { label = 7; value = 123456 } ]

(* Every strict prefix of a valid encoding must come back [Error]:
   the codecs are self-delimiting and demand full consumption. *)
let fuzz_truncations name encode decode samples =
  List.iter
    (fun m ->
      let buf = encode m in
      Alcotest.(check bool)
        (Printf.sprintf "%s: full decode round-trips" name)
        true
        (decode buf = Ok m);
      for len = 0 to Bytes.length buf - 1 do
        match decode (Bytes.sub buf 0 len) with
        | Error _ -> ()
        | Ok _ ->
          Alcotest.failf "%s: %d-byte prefix of a %d-byte message decoded Ok"
            name len (Bytes.length buf)
        | exception e ->
          Alcotest.failf "%s: prefix decode raised %s" name (Printexc.to_string e)
      done)
    samples

(* Single-byte mutations of valid encodings: still total. *)
let fuzz_mutations name encode decode samples iters seed =
  let rng = Prng.create seed in
  let encoded = Array.of_list (List.map encode samples) in
  for i = 1 to iters do
    let buf = Bytes.copy encoded.(Prng.int rng (Array.length encoded)) in
    if Bytes.length buf > 0 then begin
      Bytes.set buf (Prng.int rng (Bytes.length buf))
        (Char.chr (Prng.int rng 256));
      match decode buf with
      | Ok _ | Error _ -> ()
      | exception e ->
        Alcotest.failf "%s raised %s on mutation %d" name (Printexc.to_string e) i
    end
  done

let test_fuzz_payload () =
  fuzz_random "Comm.decode_payload" Comm.decode_payload 10_000 101L;
  fuzz_truncations "Comm.decode_payload" Comm.encode_payload Comm.decode_payload
    sample_payloads;
  fuzz_mutations "Comm.decode_payload" Comm.encode_payload Comm.decode_payload
    sample_payloads 10_000 102L

let test_fuzz_a2e () =
  fuzz_random "A2e.decode_msg" A2e.decode_msg 10_000 103L;
  fuzz_truncations "A2e.decode_msg" A2e.encode_msg A2e.decode_msg sample_a2e;
  fuzz_mutations "A2e.decode_msg" A2e.encode_msg A2e.decode_msg sample_a2e
    10_000 104L

(* Drive the raw Wire readers with random scripts over random buffers:
   [Wire.decode] must map every outcome to a typed result. *)
let test_fuzz_wire_readers () =
  let rng = Prng.create 105L in
  for i = 1 to 10_000 do
    let buf = random_bytes rng in
    let script = Array.init (1 + Prng.int rng 5) (fun _ -> Prng.int rng 7) in
    let run r =
      Array.iter
        (fun op ->
          match op with
          | 0 -> ignore (Wire.Reader.varint r)
          | 1 -> ignore (Wire.Reader.byte r)
          | 2 -> ignore (Wire.Reader.bool r)
          | 3 -> ignore (Wire.Reader.u32 r)
          | 4 -> ignore (Wire.Reader.bytes r)
          | 5 -> ignore (Wire.Reader.word_array r)
          | _ -> ignore (Wire.Reader.varint_below r ~what:"fuzz" ~bound:1000))
        script
    in
    match Wire.decode buf run with
    | Ok () | Error _ -> ()
    | exception e ->
      Alcotest.failf "Wire.decode raised %s on case %d" (Printexc.to_string e) i
  done

(* --- adversarial envelope: corrupted senders only, metered ----------- *)

let echo_strategy ~forge =
  Ks_sim.Adversary.make ~name:"echo"
    ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0 ])
    ~act:(fun view ->
      let echoes =
        List.map
          (fun e -> { Ks_sim.Types.src = 0; dst = 1; payload = e.Ks_sim.Types.payload + 100 })
          view.Ks_sim.Types.view_visible
      in
      if forge then
        (* src 2 is good and src/dst 99 is out of range: the engine must
           drop both without delivering or metering them. *)
        { Ks_sim.Types.src = 2; dst = 1; payload = 666 }
        :: { Ks_sim.Types.src = 0; dst = 99; payload = 667 }
        :: { Ks_sim.Types.src = 99; dst = 1; payload = 668 }
        :: echoes
      else echoes)
    ()

let mk_int_net ~strategy ~sink =
  let hub = Ks_monitor.Hub.create ~trace:sink ~close_trace:false [] in
  let net =
    Ks_monitor.Hub.with_ambient hub (fun () ->
        Ks_sim.Net.create ~seed:77L ~n:4 ~budget:1
          ~msg_bits:(fun _ -> 32)
          ~strategy ())
  in
  (hub, net)

let test_adversarial_metering_pinned () =
  let sink = Trace.ring ~capacity:128 in
  let _hub, net = mk_int_net ~strategy:(echo_strategy ~forge:true) ~sink in
  let meter = Ks_sim.Net.meter net in
  let delivered =
    Ks_sim.Net.exchange net [ { Ks_sim.Types.src = 2; dst = 0; payload = 7 } ]
  in
  (* The good send 2->0 was delivered, and the rushing echo 0->1 of its
     payload arrived in the same round. *)
  Alcotest.(check (list int)) "corrupt proc received the good message" [ 7 ]
    (List.map (fun e -> e.Ks_sim.Types.payload) delivered.(0));
  Alcotest.(check (list int)) "echo delivered same round" [ 107 ]
    (List.map (fun e -> e.Ks_sim.Types.payload) delivered.(1));
  (* Forged/out-of-range envelopes dropped: nothing else was delivered. *)
  Alcotest.(check int) "no forged delivery to 1" 1 (List.length delivered.(1));
  Alcotest.(check int) "nothing for 2" 0 (List.length delivered.(2));
  Alcotest.(check int) "nothing for 3" 0 (List.length delivered.(3));
  (* Metering, pinned: the good sender paid 32 bits, the corrupted
     sender paid 32 bits for its echo (and nothing for the dropped
     forgeries), nobody else paid anything. *)
  Alcotest.(check int) "good sender metered" 32 (Ks_sim.Meter.sent_bits meter 2);
  Alcotest.(check int) "adversarial send metered" 32 (Ks_sim.Meter.sent_bits meter 0);
  Alcotest.(check int) "idle proc unmetered" 0 (Ks_sim.Meter.sent_bits meter 1);
  Alcotest.(check int) "total pinned" 64 (Ks_sim.Meter.total_sent_bits meter)

let test_rushing_send_ordering () =
  let sink = Trace.ring ~capacity:128 in
  let _hub, net = mk_int_net ~strategy:(echo_strategy ~forge:false) ~sink in
  ignore (Ks_sim.Net.exchange net [ { Ks_sim.Types.src = 2; dst = 0; payload = 7 } ]);
  let sends =
    List.filter_map
      (function
        | Event.Send { src; dst; adv; round; _ } -> Some (round, src, dst, adv)
        | _ -> None)
      (Trace.contents sink)
  in
  (* Pinned trace: the honest round-0 message is delivered (and logged)
     before the adversarial echo of it, in the same round — the rushing
     view saw it pre-delivery, the wire recorded it first. *)
  Alcotest.(check (list string))
    "good send precedes its adversarial echo within the round"
    [ "r0 2->0 adv=false"; "r0 0->1 adv=true" ]
    (List.map
       (fun (r, s, d, a) -> Printf.sprintf "r%d %d->%d adv=%b" r s d a)
       sends)

(* --- quarantine events: emitted, counted, replayable ----------------- *)

let run_attack ?(quarantine = true) ~name ~seed ~n () =
  let params = Params.practical n in
  let atk =
    match Ks_attacks.find name with
    | Some a -> a
    | None -> Alcotest.failf "unknown attack %s" name
  in
  let tree =
    Ks_attacks.protocol_tree ~params ~ae_seed:(Ks_attacks.ae_seed_of seed)
  in
  let budget = Ks_attacks.budget ~params ~fraction:0.25 in
  let inputs = Array.init n (fun i -> i land 1 = 0) in
  Ks_core.Everywhere.run ~quarantine ~params ~seed ~inputs
    ~behavior:atk.Ks_attacks.behavior
    ~tree_strategy:(atk.Ks_attacks.tree ~params ~tree)
    ~a2e_strategy:(fun ~carried ~coin -> atk.Ks_attacks.a2e ~params ~carried ~coin)
    ~budget ()

let test_quarantine_trace_roundtrip () =
  let file = Filename.temp_file "ks_attacks" ".jsonl" in
  let sink = Trace.file file in
  let hub = Ks_monitor.Hub.create ~trace:sink ~trace_sends:false [] in
  let r =
    Ks_monitor.Hub.with_ambient hub (fun () ->
        run_attack ~name:"wire-junk" ~seed:9L ~n:32 ())
  in
  ignore (Ks_monitor.Hub.finish hub);
  let events = Trace.replay file in
  Sys.remove file;
  let quar =
    List.filter_map
      (function Event.Quarantine _ as e -> Some e | _ -> None)
      events
  in
  Alcotest.(check bool) "wire-junk produces quarantine events" true
    (List.length quar > 0);
  Alcotest.(check int) "replayed events match the comm counter"
    (Comm.quarantine_events r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm)
    (List.length quar);
  List.iter
    (fun e ->
      (match e with
       | Event.Quarantine { evidence; accuser; offender; _ } ->
         Alcotest.(check bool)
           (Printf.sprintf "evidence kind %S is documented" evidence)
           true
           (List.mem evidence [ "out_of_field"; "wrong_length"; "equivocation" ]);
         Alcotest.(check bool) "accuser is not the offender" true
           (accuser <> offender)
       | _ -> assert false);
      (* JSON round-trip through the same codec Trace.replay uses. *)
      Alcotest.(check bool) "to_json/of_json round-trips" true
        (Event.of_json (Event.to_json e) = Some e))
    quar

let test_equivocation_evidence () =
  let r = run_attack ~name:"equivocate" ~seed:9L ~n:32 () in
  Alcotest.(check bool) "equivocation convictions recorded" true
    (Comm.quarantine_events r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm > 0)

let test_quarantine_replayable () =
  (* Same attack, same seed: bit-identical outcome, with and without the
     trace attached — the attack layer is fully seeded. *)
  let r1 = run_attack ~name:"equivocate" ~seed:9L ~n:32 () in
  let r2 = run_attack ~name:"equivocate" ~seed:9L ~n:32 () in
  Alcotest.(check int) "bits identical"
    r1.Ks_core.Everywhere.max_sent_bits_total r2.Ks_core.Everywhere.max_sent_bits_total;
  Alcotest.(check int) "quarantine count identical"
    (Comm.quarantine_events r1.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm)
    (Comm.quarantine_events r2.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm);
  Alcotest.(check bool) "success identical" r1.Ks_core.Everywhere.success
    r2.Ks_core.Everywhere.success

(* --- unattacked runs: attack layer compiled but inert ---------------- *)

let honest_run ?(quarantine = true) () =
  let n = 32 in
  let params = Params.practical n in
  let inputs = Array.init n (fun i -> i land 1 = 0) in
  Ks_core.Everywhere.run ~quarantine ~params ~seed:5L ~inputs
    ~behavior:Comm.Follow ~tree_strategy:Ks_sim.Adversary.none
    ~a2e_strategy:(fun ~carried:_ ~coin:_ -> Ks_sim.Adversary.none)
    ~budget:0 ()

let test_honest_quarantine_identity () =
  let on = honest_run ~quarantine:true () in
  let off = honest_run ~quarantine:false () in
  Alcotest.(check int) "bits identical with quarantine on/off"
    on.Ks_core.Everywhere.max_sent_bits_total off.Ks_core.Everywhere.max_sent_bits_total;
  Alcotest.(check int) "total bits identical"
    on.Ks_core.Everywhere.total_sent_bits off.Ks_core.Everywhere.total_sent_bits;
  Alcotest.(check int) "rounds identical"
    (on.Ks_core.Everywhere.ae_rounds + on.Ks_core.Everywhere.a2e_rounds)
    (off.Ks_core.Everywhere.ae_rounds + off.Ks_core.Everywhere.a2e_rounds);
  Alcotest.(check bool) "success" true on.Ks_core.Everywhere.success;
  Alcotest.(check int) "no convictions on honest traffic" 0
    (Comm.quarantine_events on.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm)

(* --- protocol_tree is the protocol's tree ---------------------------- *)

let trees_equal a b =
  Tree.levels a = Tree.levels b
  && List.for_all
       (fun level ->
         Tree.node_count a ~level = Tree.node_count b ~level
         && List.for_all
              (fun node ->
                Tree.members a ~level ~node = Tree.members b ~level ~node)
              (List.init (Tree.node_count a ~level) (fun i -> i)))
       (List.init (Tree.levels a) (fun i -> i + 1))

let test_protocol_tree_pin () =
  let params = Params.practical 32 in
  let r = honest_run () in
  let actual = Comm.tree r.Ks_core.Everywhere.ae.Ks_core.Ae_ba.comm in
  let predicted =
    Ks_attacks.protocol_tree ~params ~ae_seed:(Ks_attacks.ae_seed_of 5L)
  in
  Alcotest.(check bool)
    "Ks_attacks.protocol_tree rebuilds the tree Everywhere.run uses" true
    (trees_equal actual predicted)

(* --- bad shares inside the Berlekamp-Welch radius never flip --------- *)

let test_bad_share_inside_never_flips () =
  let n = 64 in
  let params = Params.practical n in
  let tree = Tree.build (Prng.create 31L) (Params.tree_config params) in
  let radius = Ks_attacks.leaf_radius ~params ~tree in
  Alcotest.(check bool) "correction radius is positive" true (radius >= 1);
  (* Corrupt exactly [radius] distinct processors, all drawn from leaf
     node 0.  The total is small enough that every node at every level —
     not just the leaves — stays inside its own Berlekamp-Welch radius,
     so the decoder either corrects the lies or reports failure; it can
     never land on a consistent shifted polynomial. *)
  let corrupt =
    let seen = Hashtbl.create 8 in
    Array.fold_left
      (fun acc p ->
        if List.length acc < radius && not (Hashtbl.mem seen p) then begin
          Hashtbl.replace seen p ();
          p :: acc
        end
        else acc)
      []
      (Tree.members tree ~level:1 ~node:0)
    |> List.rev
  in
  Alcotest.(check bool) "some processors corrupted" true (corrupt <> []);
  let strategy =
    Ks_sim.Adversary.make ~name:"inside-radius"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> corrupt)
      ()
  in
  let words = 3 in
  let comm =
    Comm.create ~params ~tree ~seed:11L ~behavior:Comm.Flip ~strategy
      ~budget:(List.length corrupt) ()
  in
  let arrays =
    Array.init n (fun i -> Array.init words (fun w -> (1000 * (w + 1)) + i))
  in
  Comm.deal_all comm ~arrays;
  let all = List.init n (fun i -> i) in
  let rec climb level =
    if level <= Tree.levels tree then begin
      Comm.reshare_up comm ~cands:all ~drop:[];
      climb (level + 1)
    end
  in
  climb 2;
  let levels = Tree.levels tree in
  let net = Comm.net comm in
  let cands =
    List.filteri
      (fun i _ -> i < 4)
      (List.filter (fun c -> not (Ks_sim.Net.is_corrupt net c)) all)
  in
  let view =
    Comm.open_ranges_view comm ~level:levels
      ~ranges:(List.map (fun c -> (c, 0, words)) cands)
  in
  (* Safety: a reconstructed value is either the true one or a detected
     failure (None) — with at most [radius] consistent liars per leaf,
     Berlekamp-Welch never lands on the shifted polynomial. *)
  List.iter
    (fun c ->
      let opened = ref 0 in
      for p = 0 to n - 1 do
        if not (Ks_sim.Net.is_corrupt net p) then
          match view ~cand:c ~member:p with
          | None -> ()
          | Some w ->
            incr opened;
            Alcotest.(check (array int))
              (Printf.sprintf "cand %d opened exactly right at member %d" c p)
              arrays.(c) w
      done;
      Alcotest.(check bool)
        (Printf.sprintf "cand %d opened for most good members (%d)" c !opened)
        true
        (!opened > 0))
    cands

(* --- registry and helper sanity -------------------------------------- *)

let test_registry () =
  Alcotest.(check int) "six attacks" 6 (List.length Ks_attacks.all);
  List.iter
    (fun a ->
      (match Ks_attacks.find a.Ks_attacks.name with
       | Some b -> Alcotest.(check string) "find" a.Ks_attacks.name b.Ks_attacks.name
       | None -> Alcotest.failf "find %s failed" a.Ks_attacks.name);
      Alcotest.(check bool)
        (Printf.sprintf "%s has a doc line" a.Ks_attacks.name)
        true
        (String.length a.Ks_attacks.doc > 10))
    Ks_attacks.all;
  Alcotest.(check (option string)) "unknown attack" None
    (Option.map (fun a -> a.Ks_attacks.name) (Ks_attacks.find "nope"));
  let params = Params.practical 32 in
  Alcotest.(check int) "budget 0.36 walks past 1/3" 11
    (Ks_attacks.budget ~params ~fraction:0.36);
  Alcotest.(check int) "budget capped at n-1" 31
    (Ks_attacks.budget ~params ~fraction:1.0)

let () =
  Alcotest.run "attacks"
    [
      ( "fuzz",
        [
          Alcotest.test_case "payload decoder total" `Quick test_fuzz_payload;
          Alcotest.test_case "a2e decoder total" `Quick test_fuzz_a2e;
          Alcotest.test_case "wire readers total" `Quick test_fuzz_wire_readers;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "adversarial metering pinned" `Quick
            test_adversarial_metering_pinned;
          Alcotest.test_case "rushing send ordering" `Quick
            test_rushing_send_ordering;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "trace round-trip" `Quick
            test_quarantine_trace_roundtrip;
          Alcotest.test_case "equivocation evidence" `Quick
            test_equivocation_evidence;
          Alcotest.test_case "replayable" `Quick test_quarantine_replayable;
          Alcotest.test_case "honest identity" `Quick
            test_honest_quarantine_identity;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "protocol tree pin" `Quick test_protocol_tree_pin;
          Alcotest.test_case "inside radius never flips" `Quick
            test_bad_share_inside_never_flips;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
    ]
