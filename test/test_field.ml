module Zp = Ks_field.Zp
module Gf256 = Ks_field.Gf256
module Prng = Ks_stdx.Prng

(* Field axioms as qcheck properties, instantiated for both fields. *)
module Axioms (F : Ks_field.Field_intf.S) (Name : sig
  val name : string
end) =
struct
  let elem =
    QCheck.map
      (fun seed -> F.random (Prng.create (Int64.of_int seed)))
      QCheck.small_nat

  let nonzero =
    QCheck.map
      (fun seed -> F.random_nonzero (Prng.create (Int64.of_int seed)))
      QCheck.small_nat

  let t name = Name.name ^ ": " ^ name

  let tests =
    [
      QCheck.Test.make ~name:(t "add commutative") ~count:200 (QCheck.pair elem elem)
        (fun (a, b) -> F.equal (F.add a b) (F.add b a));
      QCheck.Test.make ~name:(t "add associative") ~count:200
        (QCheck.triple elem elem elem)
        (fun (a, b, c) -> F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
      QCheck.Test.make ~name:(t "mul commutative") ~count:200 (QCheck.pair elem elem)
        (fun (a, b) -> F.equal (F.mul a b) (F.mul b a));
      QCheck.Test.make ~name:(t "mul associative") ~count:200
        (QCheck.triple elem elem elem)
        (fun (a, b, c) -> F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
      QCheck.Test.make ~name:(t "distributivity") ~count:200
        (QCheck.triple elem elem elem)
        (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      QCheck.Test.make ~name:(t "additive inverse") ~count:200 elem (fun a ->
          F.equal (F.add a (F.neg a)) F.zero);
      QCheck.Test.make ~name:(t "multiplicative inverse") ~count:200 nonzero (fun a ->
          F.equal (F.mul a (F.inv a)) F.one);
      QCheck.Test.make ~name:(t "sub = add neg") ~count:200 (QCheck.pair elem elem)
        (fun (a, b) -> F.equal (F.sub a b) (F.add a (F.neg b)));
      QCheck.Test.make ~name:(t "pow matches repeated mul") ~count:100
        (QCheck.pair elem (QCheck.int_bound 12))
        (fun (a, e) ->
          let rec go acc i = if i = 0 then acc else go (F.mul acc a) (i - 1) in
          F.equal (F.pow a e) (go F.one e));
      QCheck.Test.make ~name:(t "of_int/to_int roundtrip") ~count:200 elem (fun a ->
          F.equal a (F.of_int (F.to_int a)));
    ]
end

module Zp_axioms =
  Axioms
    (Zp)
    (struct
      let name = "Zp"
    end)

module Gf_axioms =
  Axioms
    (Gf256)
    (struct
      let name = "GF256"
    end)

let test_zp_edge () =
  Alcotest.(check int) "p-1 + 1 = 0" 0 (Zp.to_int (Zp.add (Zp.of_int (Zp.p - 1)) Zp.one));
  Alcotest.(check int) "neg zero" 0 (Zp.to_int (Zp.neg Zp.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Zp.inv Zp.zero));
  (* Mersenne-reduction edges: operands near p whose raw product exercises
     both folds, pinned against slow bona-fide modular arithmetic. *)
  List.iter
    (fun (a, b) ->
      let slow = a * b mod Zp.p in
      Alcotest.(check int)
        (Printf.sprintf "mul %d*%d" a b)
        slow
        (Zp.to_int (Zp.mul (Zp.of_int a) (Zp.of_int b))))
    [
      (Zp.p - 1, Zp.p - 1);
      (Zp.p - 1, 1);
      (Zp.p - 2, Zp.p - 2);
      (1 lsl 30, 1 lsl 30);
      ((1 lsl 30) + 12345, (1 lsl 30) - 54321);
      (0, Zp.p - 1);
    ]

(* of_int must reject anything outside [0, order) for both fields: silent
   truncation (the old Gf256 [land 0xFF]) or reduction (the old Zp [mod])
   would let distinct wire words alias the same field element. *)
let test_of_int_boundaries () =
  Alcotest.(check int) "Zp order-1 accepted" (Zp.p - 1) (Zp.to_int (Zp.of_int (Zp.p - 1)));
  Alcotest.check_raises "Zp order rejected" (Invalid_argument "Zp.of_int: out of range")
    (fun () -> ignore (Zp.of_int Zp.p));
  Alcotest.check_raises "Zp order+1 rejected" (Invalid_argument "Zp.of_int: out of range")
    (fun () -> ignore (Zp.of_int (Zp.p + 1)));
  Alcotest.check_raises "Zp negative rejected" (Invalid_argument "Zp.of_int: negative")
    (fun () -> ignore (Zp.of_int (-1)));
  Alcotest.(check int) "Gf256 255 accepted" 255 (Gf256.to_int (Gf256.of_int 255));
  Alcotest.check_raises "Gf256 256 rejected"
    (Invalid_argument "Gf256.of_int: out of range") (fun () ->
      ignore (Gf256.of_int 256));
  Alcotest.check_raises "Gf256 0x157 rejected (would truncate to 0x57)"
    (Invalid_argument "Gf256.of_int: out of range") (fun () ->
      ignore (Gf256.of_int 0x157));
  Alcotest.check_raises "Gf256 negative rejected"
    (Invalid_argument "Gf256.of_int: negative") (fun () ->
      ignore (Gf256.of_int (-1)))

let test_gf256_edge () =
  Alcotest.(check int) "x+x=0" 0 (Gf256.to_int (Gf256.add (Gf256.of_int 0x57) (Gf256.of_int 0x57)));
  (* Known AES value: 0x57 * 0x13 = 0xFE in GF(2^8)/0x11B. *)
  Alcotest.(check int) "AES known product" 0xFE
    (Gf256.to_int (Gf256.mul (Gf256.of_int 0x57) (Gf256.of_int 0x13)));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Gf256.inv Gf256.zero))

module P = Ks_field.Poly.Make (Zp)

let test_poly_eval () =
  (* 3 + 2x + x^2 at x = 5 -> 38 *)
  let p = P.of_coeffs [| Zp.of_int 3; Zp.of_int 2; Zp.of_int 1 |] in
  Alcotest.(check int) "eval" 38 (Zp.to_int (P.eval p (Zp.of_int 5)));
  Alcotest.(check int) "degree" 2 (P.degree p);
  Alcotest.(check int) "zero degree" (-1) (P.degree P.zero)

let test_poly_normalise () =
  let p = P.of_coeffs [| Zp.of_int 1; Zp.zero; Zp.zero |] in
  Alcotest.(check int) "trailing zeros dropped" 0 (P.degree p)

let test_poly_divmod () =
  let rng = Prng.create 9L in
  for _ = 1 to 50 do
    let a = P.random rng ~degree:7 ~const:(Zp.random rng) in
    let b = P.random rng ~degree:3 ~const:(Zp.random rng) in
    let q, r = P.divmod a b in
    Alcotest.(check bool) "a = qb + r" true (P.equal a (P.add (P.mul q b) r));
    Alcotest.(check bool) "deg r < deg b" true (P.degree r < Stdlib.max 1 (P.degree b))
  done

let test_poly_interpolate_roundtrip () =
  let rng = Prng.create 11L in
  for _ = 1 to 30 do
    let p = P.random rng ~degree:4 ~const:(Zp.random rng) in
    let pts = List.init 5 (fun i -> (Zp.of_int (i + 1), P.eval p (Zp.of_int (i + 1)))) in
    let q = P.interpolate pts in
    Alcotest.(check bool) "interpolation recovers" true (P.equal p q);
    Alcotest.(check int) "lagrange_eval agrees" (Zp.to_int (P.eval p (Zp.of_int 77)))
      (Zp.to_int (P.lagrange_eval pts (Zp.of_int 77)))
  done

let test_poly_evaluator () =
  let rng = Prng.create 13L in
  for _ = 1 to 30 do
    let p = P.random rng ~degree:5 ~const:(Zp.random rng) in
    let pts = List.init 6 (fun i -> (Zp.of_int (i + 1), P.eval p (Zp.of_int (i + 1)))) in
    let ev = P.evaluator pts in
    (* At the nodes the hole products vanish termwise: exact y_i, no 0/0
       special case. *)
    List.iter
      (fun (x, y) -> Alcotest.(check int) "node" (Zp.to_int y) (Zp.to_int (ev x)))
      pts;
    for x = 0 to 40 do
      let x = Zp.of_int x in
      Alcotest.(check int) "off-node" (Zp.to_int (P.eval p x)) (Zp.to_int (ev x))
    done
  done;
  Alcotest.check_raises "duplicate x"
    (Invalid_argument "Poly.interpolate: duplicate abscissa") (fun () ->
      ignore (P.evaluator [ (Zp.one, Zp.one); (Zp.one, Zp.zero) ] : Zp.t -> Zp.t))

let test_batch_inv () =
  let rng = Prng.create 14L in
  for _ = 1 to 20 do
    let a = Array.init 9 (fun _ -> Zp.random_nonzero rng) in
    let inv = P.batch_inv a in
    Array.iteri
      (fun i x -> Alcotest.(check int) "x * x^-1" 1 (Zp.to_int (Zp.mul x inv.(i))))
      a
  done;
  Alcotest.(check int) "empty" 0 (Array.length (P.batch_inv [||]));
  Alcotest.check_raises "zero entry" Division_by_zero (fun () ->
      ignore (P.batch_inv [| Zp.one; Zp.zero |]))

let test_poly_interpolate_errors () =
  Alcotest.check_raises "duplicate x" (Invalid_argument "Poly.interpolate: duplicate abscissa")
    (fun () -> ignore (P.interpolate [ (Zp.one, Zp.one); (Zp.one, Zp.zero) ]));
  Alcotest.check_raises "empty" (Invalid_argument "Poly.interpolate: no points")
    (fun () -> ignore (P.interpolate []))

module L = Ks_field.Linalg.Make (Zp)

let test_linalg_solve () =
  (* x + 2y = 5; 3x + 4y = 11 -> x = 1, y = 2 *)
  let a = [| [| Zp.of_int 1; Zp.of_int 2 |]; [| Zp.of_int 3; Zp.of_int 4 |] |] in
  let b = [| Zp.of_int 5; Zp.of_int 11 |] in
  match L.solve a b with
  | Some x ->
    Alcotest.(check int) "x" 1 (Zp.to_int x.(0));
    Alcotest.(check int) "y" 2 (Zp.to_int x.(1))
  | None -> Alcotest.fail "no solution found"

let test_linalg_inconsistent () =
  let a = [| [| Zp.one; Zp.one |]; [| Zp.one; Zp.one |] |] in
  let b = [| Zp.of_int 1; Zp.of_int 2 |] in
  Alcotest.(check bool) "inconsistent detected" true (L.solve a b = None)

let test_linalg_underdetermined () =
  let a = [| [| Zp.one; Zp.one |] |] in
  let b = [| Zp.of_int 5 |] in
  match L.solve a b with
  | Some x ->
    Alcotest.(check int) "solution satisfies" 5
      (Zp.to_int (Zp.add x.(0) x.(1)))
  | None -> Alcotest.fail "should be solvable"

let test_linalg_rank () =
  let a = [| [| Zp.one; Zp.of_int 2 |]; [| Zp.of_int 2; Zp.of_int 4 |] |] in
  Alcotest.(check int) "rank deficient" 1 (L.rank a);
  let b = [| [| Zp.one; Zp.zero |]; [| Zp.zero; Zp.one |] |] in
  Alcotest.(check int) "full rank" 2 (L.rank b)

let prop_linalg_random_solve =
  QCheck.Test.make ~name:"solve recovers planted solution" ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let n = 1 + (seed mod 6) in
      let x = Array.init n (fun _ -> Zp.random rng) in
      let a = Array.init n (fun _ -> Array.init n (fun _ -> Zp.random rng)) in
      let b =
        Array.map
          (fun row ->
            let acc = ref Zp.zero in
            Array.iteri (fun j v -> acc := Zp.add !acc (Zp.mul v x.(j))) row;
            !acc)
          a
      in
      match L.solve a b with
      | None -> false (* random square systems are a.s. nonsingular *)
      | Some y ->
        (* Any solution must satisfy the system. *)
        Array.for_all2
          (fun row bi ->
            let acc = ref Zp.zero in
            Array.iteri (fun j v -> acc := Zp.add !acc (Zp.mul v y.(j))) row;
            Zp.equal !acc bi)
          a b)

let () =
  Alcotest.run "field"
    [
      ("zp-axioms", List.map (fun t -> QCheck_alcotest.to_alcotest t) Zp_axioms.tests);
      ("gf256-axioms", List.map (fun t -> QCheck_alcotest.to_alcotest t) Gf_axioms.tests);
      ( "edges",
        [
          Alcotest.test_case "zp edges" `Quick test_zp_edge;
          Alcotest.test_case "gf256 edges" `Quick test_gf256_edge;
          Alcotest.test_case "of_int boundaries" `Quick test_of_int_boundaries;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "normalise" `Quick test_poly_normalise;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "interpolate roundtrip" `Quick test_poly_interpolate_roundtrip;
          Alcotest.test_case "interpolate errors" `Quick test_poly_interpolate_errors;
          Alcotest.test_case "evaluator" `Quick test_poly_evaluator;
          Alcotest.test_case "batch_inv" `Quick test_batch_inv;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "solve 2x2" `Quick test_linalg_solve;
          Alcotest.test_case "inconsistent" `Quick test_linalg_inconsistent;
          Alcotest.test_case "underdetermined" `Quick test_linalg_underdetermined;
          Alcotest.test_case "rank" `Quick test_linalg_rank;
          QCheck_alcotest.to_alcotest prop_linalg_random_solve;
        ] );
    ]
