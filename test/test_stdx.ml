module Prng = Ks_stdx.Prng
module Stats = Ks_stdx.Stats
module Intmath = Ks_stdx.Intmath
module Table = Ks_stdx.Table

let check_float = Alcotest.(check (float 1e-9))

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let root = Prng.create 7L in
  let a = Prng.split root and b = Prng.split root in
  Alcotest.(check bool) "different streams" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_split_at_stable () =
  let root = Prng.create 7L in
  let a = Prng.split_at root 3 and b = Prng.split_at root 3 in
  Alcotest.(check int64) "same child stream" (Prng.bits64 a) (Prng.bits64 b);
  let c = Prng.split_at root 4 in
  Alcotest.(check bool) "distinct children" true
    (Prng.bits64 (Prng.split_at root 3) <> Prng.bits64 c)

let test_prng_int_bounds () =
  let rng = Prng.create 1L in
  for _ = 1 to 10000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_prng_int_rejects_bad_bound () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int (Prng.create 1L) 0))

let test_prng_uniformity () =
  let rng = Prng.create 3L in
  let counts = Array.make 8 0 in
  let trials = 80000 in
  for _ = 1 to trials do
    let v = Prng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = trials / 8 in
      Alcotest.(check bool) "within 5%" true
        (abs (c - expected) < expected / 20))
    counts

let test_sample_without_replacement () =
  let rng = Prng.create 5L in
  let s = Prng.sample_without_replacement rng ~n:50 ~k:20 in
  Alcotest.(check int) "size" 20 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 19 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 50)) s

let test_sample_full () =
  let rng = Prng.create 5L in
  let s = Prng.sample_without_replacement rng ~n:10 ~k:10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 10 (fun i -> i)) sorted

let test_permutation () =
  let rng = Prng.create 5L in
  let p = Prng.permutation rng 30 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 30 (fun i -> i)) sorted

let test_stats_mean_var () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "variance" (5.0 /. 3.0) (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "singleton var" 0.0 (Stats.variance [| 9.0 |])

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 3.0; 5.0; 7.0; 9.0 |] in
  let a, b, r2 = Stats.linear_fit xs ys in
  check_float "intercept" 1.0 a;
  check_float "slope" 2.0 b;
  check_float "r2" 1.0 r2

let test_loglog_slope () =
  (* y = 4 n^1.5 *)
  let ns = [| 10.0; 100.0; 1000.0 |] in
  let ys = Array.map (fun n -> 4.0 *. (n ** 1.5)) ns in
  let b, r2 = Stats.loglog_slope ns ys in
  Alcotest.(check (float 1e-6)) "exponent" 1.5 b;
  Alcotest.(check (float 1e-6)) "r2" 1.0 r2

let test_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:50 ~trials:100 in
  Alcotest.(check bool) "contains p" true (lo < 0.5 && hi > 0.5);
  Alcotest.(check bool) "proper" true (lo >= 0.0 && hi <= 1.0 && lo < hi)

let test_intmath () =
  Alcotest.(check int) "ceil_log2 1" 0 (Intmath.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 9" 4 (Intmath.ceil_log2 9);
  Alcotest.(check int) "floor_log2 9" 3 (Intmath.floor_log2 9);
  Alcotest.(check int) "pow" 243 (Intmath.pow 3 5);
  Alcotest.(check int) "cdiv" 4 (Intmath.cdiv 10 3);
  Alcotest.(check int) "isqrt 35" 5 (Intmath.isqrt 35);
  Alcotest.(check int) "isqrt 36" 6 (Intmath.isqrt 36);
  Alcotest.(check int) "clamp" 5 (Intmath.clamp ~lo:1 ~hi:5 9)

let test_table_render () =
  let s =
    Table.render ~title:"t" ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.length (String.trim s) > 0);
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Table.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Table.render ~title:"t" ~headers:[ "a"; "b" ] [ [ "1" ] ]))

let prop_isqrt =
  QCheck.Test.make ~name:"isqrt floor property" ~count:500
    QCheck.(int_bound 1000000)
    (fun n ->
      let r = Intmath.isqrt n in
      (r * r <= n) && (r + 1) * (r + 1) > n)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement distinct" ~count:200
    QCheck.(pair (int_range 1 100) small_nat)
    (fun (n, seed) ->
      let rng = Prng.create (Int64.of_int seed) in
      let k = 1 + (seed mod n) in
      let s = Prng.sample_without_replacement rng ~n ~k in
      let tbl = Hashtbl.create 16 in
      Array.for_all
        (fun v ->
          if Hashtbl.mem tbl v then false
          else begin
            Hashtbl.add tbl v ();
            v >= 0 && v < n
          end)
        s)

module Wire = Ks_stdx.Wire

let test_wire_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w 0;
  Wire.Writer.varint w 127;
  Wire.Writer.varint w 128;
  Wire.Writer.varint w 987654321;
  Wire.Writer.byte w 200;
  Wire.Writer.bool w true;
  Wire.Writer.u32 w 0xDEADBEEF;
  Wire.Writer.bytes w (Bytes.of_string "hello");
  Wire.Writer.word_array w [| 1; 2; 300000 |];
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  Alcotest.(check int) "v0" 0 (Wire.Reader.varint r);
  Alcotest.(check int) "v127" 127 (Wire.Reader.varint r);
  Alcotest.(check int) "v128" 128 (Wire.Reader.varint r);
  Alcotest.(check int) "vbig" 987654321 (Wire.Reader.varint r);
  Alcotest.(check int) "byte" 200 (Wire.Reader.byte r);
  Alcotest.(check bool) "bool" true (Wire.Reader.bool r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.Reader.u32 r);
  Alcotest.(check string) "bytes" "hello" (Bytes.to_string (Wire.Reader.bytes r));
  Alcotest.(check (array int)) "words" [| 1; 2; 300000 |] (Wire.Reader.word_array r);
  Alcotest.(check bool) "consumed" true (Wire.Reader.at_end r)

let test_wire_truncated () =
  let r = Wire.Reader.of_bytes (Bytes.of_string "\x80") in
  Alcotest.check_raises "truncated varint" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.varint r))

let prop_wire_varint =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound 1073741823)
    (fun v ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w v;
      let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
      Wire.Reader.varint r = v && Wire.Reader.at_end r)

(* A random sequence of wire operations, written then read back in
   order: the whole format round-trips, not just single fields. *)
type wire_op =
  | Op_varint of int
  | Op_byte of int
  | Op_bool of bool
  | Op_u32 of int
  | Op_bytes of string
  | Op_words of int array

let wire_op_gen =
  QCheck.Gen.(
    oneof
      [
        (fun v -> Op_varint v) <$> int_bound 1073741823;
        (fun v -> Op_byte v) <$> int_bound 255;
        (fun b -> Op_bool b) <$> bool;
        (fun v -> Op_u32 v) <$> int_bound 0xFFFFFFFF;
        (fun s -> Op_bytes s) <$> string_size (int_bound 32);
        (fun a -> Op_words a) <$> array_size (int_bound 16) (int_bound 1_000_000);
      ])

let write_op w = function
  | Op_varint v -> Wire.Writer.varint w v
  | Op_byte v -> Wire.Writer.byte w v
  | Op_bool b -> Wire.Writer.bool w b
  | Op_u32 v -> Wire.Writer.u32 w v
  | Op_bytes s -> Wire.Writer.bytes w (Bytes.of_string s)
  | Op_words a -> Wire.Writer.word_array w a

let read_op_matches r = function
  | Op_varint v -> Wire.Reader.varint r = v
  | Op_byte v -> Wire.Reader.byte r = v
  | Op_bool b -> Wire.Reader.bool r = b
  | Op_u32 v -> Wire.Reader.u32 r = v
  | Op_bytes s -> Bytes.to_string (Wire.Reader.bytes r) = s
  | Op_words a -> Wire.Reader.word_array r = a

let prop_wire_sequence_roundtrip =
  QCheck.Test.make ~name:"wire op-sequence roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_bound 24) wire_op_gen))
    (fun ops ->
      let w = Wire.Writer.create () in
      List.iter (write_op w) ops;
      let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
      List.for_all (read_op_matches r) ops && Wire.Reader.at_end r)

let prop_wire_truncation_robust =
  (* Chopping the encoded buffer anywhere must produce [Truncated] (or a
     clean short read of the prefix fields) — never a crash or a phantom
     value read past the end. *)
  QCheck.Test.make ~name:"wire truncation raises cleanly" ~count:200
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_bound 12) wire_op_gen) (int_bound 1000)))
    (fun (ops, cut) ->
      let w = Wire.Writer.create () in
      List.iter (write_op w) ops;
      let full = Wire.Writer.contents w in
      let cut = Stdlib.min cut (Bytes.length full) in
      let r = Wire.Reader.of_bytes (Bytes.sub full 0 cut) in
      (* Reading the ops back either matches the original writes until
         the data runs out, or raises Truncated — anything else fails. *)
      try List.for_all (read_op_matches r) ops || cut < Bytes.length full
      with Wire.Reader.Truncated -> cut < Bytes.length full)

(* --- Dtbl: deterministic hashtable traversal (lint rule R2's cure) --- *)

let test_dtbl_sorted () =
  let tbl = Hashtbl.create 8 in
  (* Insertion order deliberately scrambled. *)
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) [ (5, "e"); (1, "a"); (9, "i"); (3, "c") ]
  ;
  Alcotest.(check (list int))
    "sorted_keys ascending" [ 1; 3; 5; 9 ]
    (Ks_stdx.Dtbl.sorted_keys ~cmp:Ks_stdx.Dtbl.int_cmp tbl);
  Alcotest.(check (list (pair int string)))
    "bindings_sorted" [ (1, "a"); (3, "c"); (5, "e"); (9, "i") ]
    (Ks_stdx.Dtbl.bindings_sorted ~cmp:Ks_stdx.Dtbl.int_cmp tbl);
  let visited = ref [] in
  Ks_stdx.Dtbl.iter_sorted ~cmp:Ks_stdx.Dtbl.int_cmp
    (fun k _ -> visited := k :: !visited)
    tbl;
  Alcotest.(check (list int)) "iter_sorted order" [ 9; 5; 3; 1 ] !visited;
  Alcotest.(check string) "fold_sorted accumulates in key order" "acei"
    (Ks_stdx.Dtbl.fold_sorted ~cmp:Ks_stdx.Dtbl.int_cmp (fun _ v acc -> acc ^ v) tbl "")

let test_dtbl_comparators () =
  let sorted cmp l = List.sort cmp l in
  Alcotest.(check (list (pair int int)))
    "pair_cmp lexicographic"
    [ (1, 2); (1, 9); (2, 0) ]
    (sorted Ks_stdx.Dtbl.pair_cmp [ (2, 0); (1, 9); (1, 2) ]);
  Alcotest.(check bool) "triple_cmp equal" true
    (Ks_stdx.Dtbl.triple_cmp (1, 2, 3) (1, 2, 3) = 0);
  Alcotest.(check bool) "triple_cmp third component decides" true
    (Ks_stdx.Dtbl.triple_cmp (1, 2, 3) (1, 2, 4) < 0);
  Alcotest.(check bool) "int_list_cmp prefix is smaller" true
    (Ks_stdx.Dtbl.int_list_cmp [ 1; 2 ] [ 1; 2; 0 ] < 0);
  Alcotest.(check bool) "int_list_cmp lexicographic" true
    (Ks_stdx.Dtbl.int_list_cmp [ 1; 3 ] [ 1; 2; 9 ] > 0)

let () =
  Alcotest.run "stdx"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "split_at stable" `Quick test_prng_split_at_stable;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "sampling distinct" `Quick test_sample_without_replacement;
          Alcotest.test_case "sampling full range" `Quick test_sample_full;
          Alcotest.test_case "permutation" `Quick test_permutation;
          QCheck_alcotest.to_alcotest prop_sample_distinct;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_var;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "linear fit" `Quick test_stats_fit;
          Alcotest.test_case "loglog slope" `Quick test_loglog_slope;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
        ] );
      ( "intmath",
        [
          Alcotest.test_case "basics" `Quick test_intmath;
          QCheck_alcotest.to_alcotest prop_isqrt;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
      ( "dtbl",
        [
          Alcotest.test_case "sorted traversal" `Quick test_dtbl_sorted;
          Alcotest.test_case "comparators" `Quick test_dtbl_comparators;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          QCheck_alcotest.to_alcotest prop_wire_varint;
          QCheck_alcotest.to_alcotest prop_wire_sequence_roundtrip;
          QCheck_alcotest.to_alcotest prop_wire_truncation_robust;
        ] );
    ]
