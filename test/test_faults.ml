(* The benign-fault layer (lib/faults, docs/FAULTS.md): plan
   serialization, per-channel omission/duplication, crash-recover churn,
   silence windows, the pay-for-what-you-use guarantee (a trivial plan
   is bit-identical to no plan at all), seeded determinism, trace
   round-trips through [Trace.replay], and the graceful-degradation
   counters the fault layer feeds (Comm retries, Shamir decode-failure
   detection). *)

open Ks_sim
module Plan = Ks_faults.Plan
module Injector = Ks_faults.Injector

let plan s =
  match Plan.of_string s with Ok p -> p | Error e -> Alcotest.fail e

let envelope src dst payload = { Types.src; dst; payload }

let mk_net ?faults ?hub ?(n = 8) ?(budget = 0) () =
  Net.create ?hub ?faults ~seed:5L ~n ~budget
    ~msg_bits:(fun (_ : int) -> 4)
    ~strategy:Adversary.none ()

(* All-to-all traffic for [rounds] rounds; returns the inbox counts of
   the last round. *)
let drive net ~n ~rounds =
  let msgs =
    List.concat_map
      (fun src -> List.filter_map
          (fun dst -> if src = dst then None else Some (envelope src dst src))
          (List.init n (fun i -> i)))
      (List.init n (fun i -> i))
  in
  let last = ref [||] in
  for _ = 1 to rounds do
    last := Net.exchange net msgs
  done;
  !last

(* --- Plan serialization --- *)

let test_plan_roundtrip () =
  let p = plan "seed=42,drop=0.25,dup=0.125,crash=0.5,recover=0.75,max_down=3,silence=0.0625,silence_len=4" in
  (match Plan.of_string (Plan.to_string p) with
   | Ok p' -> Alcotest.(check string) "round-trip" (Plan.to_string p) (Plan.to_string p')
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "non-trivial" false (Plan.is_trivial p);
  Alcotest.(check bool) "none trivial" true (Plan.is_trivial Plan.none);
  (* Churn-only and silence-only plans are non-trivial too. *)
  Alcotest.(check bool) "churn non-trivial" false (Plan.is_trivial (plan "crash=0.1"));
  Alcotest.(check bool) "silence non-trivial" false (Plan.is_trivial (plan "silence=0.1"))

let test_plan_errors () =
  let bad s =
    match Plan.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
    | Error _ -> ()
  in
  bad "bogus=1";
  bad "drop=1.5";
  bad "drop=-0.1";
  bad "drop=abc";
  bad "silence_len=0";
  bad "max_down=-1";
  bad "seed=x";
  bad "drop";
  (* Empty fields are tolerated; empty string parses to the trivial plan. *)
  match Plan.of_string "" with
  | Ok p -> Alcotest.(check bool) "empty is trivial" true (Plan.is_trivial p)
  | Error e -> Alcotest.fail e

let test_trivial_plan_no_injector () =
  Alcotest.(check bool) "no injector for trivial plan" true
    (Injector.create Plan.none ~label:"x" ~n:4 = None)

(* --- Pay for what you use: a trivial plan is bit-identical to none. --- *)

let trace_of ?faults ?ambient_plan () =
  let sink = Ks_monitor.Trace.ring ~capacity:4096 in
  let hub = Ks_monitor.Hub.create ~trace:sink ~close_trace:false [] in
  let go () =
    let net = mk_net ?faults ~hub ~n:6 () in
    ignore (drive net ~n:6 ~rounds:3);
    Net.emit_meter net
  in
  (match ambient_plan with
   | Some p -> Plan.with_plan p go
   | None -> go ());
  ignore (Ks_monitor.Hub.finish hub);
  Ks_monitor.Trace.render (Ks_monitor.Trace.contents sink)

let test_empty_plan_identical () =
  let bare = trace_of () in
  Alcotest.(check string) "explicit trivial plan"
    bare (trace_of ~faults:Plan.none ());
  Alcotest.(check string) "ambient trivial plan"
    bare (trace_of ~ambient_plan:Plan.none ());
  Alcotest.(check bool) "trace non-empty" true (String.length bare > 0)

let test_faulted_trace_deterministic () =
  let p = plan "seed=7,drop=0.3,dup=0.2,crash=0.1,recover=0.5,silence=0.2,silence_len=2" in
  let a = trace_of ~faults:p () and b = trace_of ~faults:p () in
  Alcotest.(check string) "same plan, same trace" a b;
  Alcotest.(check bool) "differs from unfaulted" true (a <> trace_of ());
  (* A different plan seed reshuffles the fault stream. *)
  let c = trace_of ~faults:{ p with Plan.seed = 8L } () in
  Alcotest.(check bool) "different seed, different trace" true (a <> c)

(* --- Omission and duplication semantics --- *)

let test_drop_all () =
  let net = mk_net ~faults:(plan "drop=1") ~n:4 () in
  let inboxes = Net.exchange net [ envelope 0 1 9; envelope 2 3 9 ] in
  Array.iter
    (fun inbox -> Alcotest.(check int) "nothing delivered" 0 (List.length inbox))
    inboxes;
  (* The senders still paid: omission is in-flight, below the meter. *)
  let m = Net.meter net in
  Alcotest.(check int) "sender 0 charged" 4 (Meter.sent_bits m 0);
  Alcotest.(check int) "sender 2 charged" 4 (Meter.sent_bits m 2);
  Alcotest.(check int) "receiver 1 not charged" 0 (Meter.recv_bits m 1)

let test_dup_all () =
  let net = mk_net ~faults:(plan "dup=1") ~n:4 () in
  let inboxes = Net.exchange net [ envelope 0 1 9 ] in
  Alcotest.(check int) "delivered twice" 2 (List.length inboxes.(1));
  let m = Net.meter net in
  Alcotest.(check int) "sender charged once" 4 (Meter.sent_bits m 0);
  Alcotest.(check int) "receiver charged twice" 8 (Meter.recv_bits m 1)

(* --- Crash-recover churn --- *)

let test_churn_cap_and_silence () =
  (* crash=1 with a cap of 2: exactly two processors are ever down at
     once; they neither send nor receive while down. *)
  let p = plan "crash=1,recover=0,max_down=2" in
  let net = mk_net ~faults:p ~n:6 () in
  let inboxes = drive net ~n:6 ~rounds:2 in
  let delivered_to = Array.map List.length inboxes in
  let silent_dsts =
    Array.to_list delivered_to |> List.filter (fun c -> c = 0) |> List.length
  in
  Alcotest.(check int) "exactly the two crashed receive nothing" 2 silent_dsts;
  (* Everyone else hears from all senders except the two crashed. *)
  Array.iteri
    (fun dst c -> if c > 0 then Alcotest.(check int)
        (Printf.sprintf "dst %d hears n-1-2 senders" dst) 3 c)
    delivered_to

let test_churn_recovery () =
  (* crash everyone (no cap), then recover=1 brings each back the next
     round: deliveries resume. *)
  let p = plan "crash=1,recover=1" in
  let net = mk_net ~faults:p ~n:4 () in
  let r0 = Net.exchange net [ envelope 0 1 9 ] in
  Alcotest.(check int) "round 0: all down, nothing delivered" 0
    (List.length r0.(1));
  (* Round 1: everyone recovers at round start (recover=1), and with the
     cap-free crash=1 draw they all crash again — churn is per-round.
     Observable effect: state keeps evolving deterministically; the run
     does not wedge. *)
  let r1 = Net.exchange net [ envelope 0 1 9 ] in
  ignore r1;
  Alcotest.(check int) "rounds advanced" 2 (Net.round net)

let test_silence_windows () =
  (* silence=1, silence_len=3: every good sender is silenced for 3
     rounds starting at round 0; their sends are suppressed before
     metering (unlike in-flight drops). *)
  let p = plan "silence=1,silence_len=3" in
  let net = mk_net ~faults:p ~n:4 () in
  let r0 = Net.exchange net [ envelope 0 1 9 ] in
  Alcotest.(check int) "suppressed" 0 (List.length r0.(1));
  Alcotest.(check int) "suppressed sends are never charged" 0
    (Meter.sent_bits (Net.meter net) 0)

(* --- Faults never touch the corruption budget --- *)

let test_budget_untouched () =
  let p = plan "drop=0.5,dup=0.5,crash=0.3,recover=0.2,silence=0.3" in
  let net = mk_net ~faults:p ~n:8 ~budget:3 () in
  ignore (drive net ~n:8 ~rounds:5);
  Alcotest.(check int) "no corruptions from faults" 0 (Net.corrupt_count net)

(* --- Fault events: emission, JSON round-trip, file replay --- *)

let test_fault_event_json () =
  let e =
    Ks_monitor.Event.Fault
      { net = 3; round = 7; kind = "drop"; proc = 1; dst = 4; info = 12 }
  in
  match Ks_monitor.Event.of_json (Ks_monitor.Event.to_json e) with
  | Some e' ->
    Alcotest.(check string) "round-trip" (Ks_monitor.Event.to_json e)
      (Ks_monitor.Event.to_json e')
  | None -> Alcotest.fail "fault event did not parse back"

let test_replay_reconstructs_faults () =
  let path = Filename.temp_file "ks_faults" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Ks_monitor.Trace.file path in
      let hub = Ks_monitor.Hub.create ~trace:sink ~close_trace:true [] in
      let p = plan "seed=3,drop=0.4,dup=0.2,crash=0.2,recover=0.5,silence=0.2" in
      let net = mk_net ~faults:p ~hub ~n:6 () in
      ignore (drive net ~n:6 ~rounds:4);
      Net.emit_meter net;
      ignore (Ks_monitor.Hub.finish hub);
      let events = Ks_monitor.Trace.replay path in
      let faults =
        List.filter
          (function Ks_monitor.Event.Fault _ -> true | _ -> false)
          events
      in
      Alcotest.(check bool) "fault events present" true (List.length faults > 0);
      (* Byte-for-byte: re-rendering the replayed events reproduces the
         file, injected faults included. *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "render (replay file) == file" raw
        (Ks_monitor.Trace.render events))

(* --- Graceful degradation: bounded retry + decode-failure detection --- *)

let test_shamir_failure_hook () =
  let module Sh = Ks_shamir.Shamir.Make (Ks_field.Zp) in
  let failures = ref 0 in
  (* An empty holder list cannot reconstruct anything. *)
  (match Sh.reconstruct_vectors ~failures ~threshold:2 [] with
   | Some _ -> Alcotest.fail "reconstructed from nothing"
   | None -> ());
  Alcotest.(check int) "failure counted" 1 !failures

let ae_run ~retries ~faults () =
  let n = 16 in
  let params = Ks_core.Params.practical n in
  Plan.with_plan faults (fun () ->
      Ks_core.Ae_ba.run ~retries ~params ~seed:11L
        ~inputs:(Array.init n (fun i -> i mod 2 = 0))
        ~behavior:Ks_core.Comm.Follow ~strategy:Adversary.none ())

let test_comm_retries_observable () =
  let p = plan "seed=5,drop=0.1" in
  let faulted = ae_run ~retries:2 ~faults:p () in
  Alcotest.(check bool) "re-request rounds taken" true
    (Ks_core.Comm.retries_used faulted.Ks_core.Ae_ba.comm > 0);
  let no_retry = ae_run ~retries:0 ~faults:p () in
  Alcotest.(check int) "retries=0 never re-requests" 0
    (Ks_core.Comm.retries_used no_retry.Ks_core.Ae_ba.comm);
  Alcotest.(check bool) "failures still detected without retries" true
    (Ks_core.Comm.decode_failures no_retry.Ks_core.Ae_ba.comm > 0);
  (* With no faults and no adversary, nothing fails and nothing retries. *)
  let clean = ae_run ~retries:2 ~faults:Plan.none () in
  Alcotest.(check int) "clean run: no failures" 0
    (Ks_core.Comm.decode_failures clean.Ks_core.Ae_ba.comm);
  Alcotest.(check int) "clean run: no retries" 0
    (Ks_core.Comm.retries_used clean.Ks_core.Ae_ba.comm)

(* --- Async net: in-flight faults at enqueue --- *)

let mk_async ?faults () =
  Ks_async.Async_net.create ?faults ~seed:5L ~n:4 ~corrupt:[]
    ~msg_bits:(fun (_ : int) -> 4)
    ~scheduler:Ks_async.Async_net.Fair ()

let test_async_drop_and_dup () =
  let dropped = mk_async ~faults:(plan "drop=1") () in
  Ks_async.Async_net.send dropped [ envelope 0 1 9 ];
  Alcotest.(check int) "drop=1: nothing pending" 0
    (Ks_async.Async_net.pending dropped);
  Alcotest.(check int) "sender still charged" 4
    (Meter.sent_bits (Ks_async.Async_net.meter dropped) 0);
  let duped = mk_async ~faults:(plan "dup=1") () in
  Ks_async.Async_net.send duped [ envelope 0 1 9 ];
  Alcotest.(check int) "dup=1: queued twice" 2
    (Ks_async.Async_net.pending duped);
  let plain = mk_async () in
  Ks_async.Async_net.send plain [ envelope 0 1 9 ];
  Alcotest.(check int) "no plan: queued once" 1
    (Ks_async.Async_net.pending plain)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_plan_errors;
          Alcotest.test_case "trivial plan, no injector" `Quick
            test_trivial_plan_no_injector;
        ] );
      ( "pay-for-what-you-use",
        [
          Alcotest.test_case "empty plan identical" `Quick
            test_empty_plan_identical;
          Alcotest.test_case "budget untouched" `Quick test_budget_untouched;
        ] );
      ( "injection",
        [
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "dup all" `Quick test_dup_all;
          Alcotest.test_case "churn cap" `Quick test_churn_cap_and_silence;
          Alcotest.test_case "churn recovery" `Quick test_churn_recovery;
          Alcotest.test_case "silence windows" `Quick test_silence_windows;
          Alcotest.test_case "deterministic trace" `Quick
            test_faulted_trace_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fault event json" `Quick test_fault_event_json;
          Alcotest.test_case "replay reconstructs faults" `Quick
            test_replay_reconstructs_faults;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "shamir failure hook" `Quick
            test_shamir_failure_hook;
          Alcotest.test_case "comm retries observable" `Quick
            test_comm_retries_observable;
        ] );
      ( "async",
        [
          Alcotest.test_case "drop and dup" `Quick test_async_drop_and_dup;
        ] );
    ]
