module A2e = Ks_core.Ae_to_e
module Params = Ks_core.Params
module Prng = Ks_stdx.Prng

let config_for n =
  let params = Params.practical n in
  A2e.config_of_params params

let mk_net ?(budget = 0) ?(strategy = Ks_sim.Adversary.none) ~n (_config : A2e.config) =
  Ks_sim.Net.create ~seed:123L ~n ~budget
    ~msg_bits:A2e.msg_bits
    ~strategy ()

(* The standard setup: [confused] good processors hold the wrong belief
   and miss the coin; everyone else is knowledgeable with message 1. *)
let scenario ~n ?(confused = fun _ -> false) () =
  let config = config_for n in
  let knows p = Some (if confused p then 0 else 1) in
  let rng = Prng.create 5L in
  let ks =
    Array.init config.A2e.iterations (fun _ -> Prng.int rng config.A2e.labels)
  in
  let coin ~iteration p =
    if confused p then None else Some ks.(iteration)
  in
  (config, knows, coin)

let test_msg_bits () =
  (* Tag byte + 1-byte varint label = 2 bytes; reply adds a fixed u32. *)
  Alcotest.(check int) "request" 16 (A2e.msg_bits (A2e.Request 3));
  Alcotest.(check int) "reply" 48 (A2e.msg_bits (A2e.Reply { label = 3; value = 1 }));
  (* msg_bits equals the true encoded size. *)
  List.iter
    (fun m ->
      Alcotest.(check int) "bits = 8 * encoded bytes"
        (8 * Bytes.length (A2e.encode_msg m))
        (A2e.msg_bits m);
      Alcotest.(check bool) "roundtrip" true (A2e.decode_msg (A2e.encode_msg m) = Ok m))
    [ A2e.Request 0; A2e.Request 3000; A2e.Reply { label = 7; value = 123456789 } ]

let test_rounds_needed () =
  let config = config_for 64 in
  Alcotest.(check int) "2k+1" ((2 * config.A2e.iterations) + 1)
    (A2e.rounds_needed config)

let test_all_knowledgeable_decide () =
  let n = 64 in
  let config, knows, coin = scenario ~n () in
  let net = mk_net ~n config in
  let res = A2e.run ~net ~config ~knows ~coin in
  Array.iteri
    (fun p d ->
      ignore p;
      Alcotest.(check (option int)) "decided M" (Some 1) d)
    res.A2e.decided

let test_confused_minority_learns () =
  let n = 64 in
  let confused p = p mod 8 = 0 in
  let config, knows, coin = scenario ~n ~confused () in
  let net = mk_net ~n config in
  let res = A2e.run ~net ~config ~knows ~coin in
  (* Everyone — including the confused minority — must land on M = 1. *)
  Array.iter
    (fun d -> Alcotest.(check (option int)) "decided M" (Some 1) d)
    res.A2e.decided

let test_safety_under_corruption () =
  let n = 64 in
  let confused p = p mod 10 = 0 in
  let config, knows, coin = scenario ~n ~confused () in
  let budget = 16 in
  let net = mk_net ~budget ~strategy:Ks_sim.Adversary.crash_random ~n config in
  let res = A2e.run ~net ~config ~knows ~coin in
  Array.iteri
    (fun p d ->
      if not (Ks_sim.Net.is_corrupt net p) then
        match d with
        | Some v -> Alcotest.(check int) "never a wrong decision" 1 v
        | None -> ())
    res.A2e.decided

let test_sqrt_n_bits () =
  let bits n =
    let config, knows, coin = scenario ~n () in
    let net = mk_net ~n config in
    let res = A2e.run ~net ~config ~knows ~coin in
    float_of_int res.A2e.max_sent_bits
  in
  let b64 = bits 64 and b1024 = bits 1024 in
  (* A 16x growth in n should grow bits by far less than 16x (the √n·polylog
     law gives ~6-8x here). *)
  Alcotest.(check bool)
    (Printf.sprintf "sub-linear growth: %.0f -> %.0f" b64 b1024)
    true
    (b1024 /. b64 < 12.0)

let test_no_coin_no_decision () =
  (* Without any agreed label nobody can serve, so nobody decides — and
     nobody decides wrongly. *)
  let n = 64 in
  let config, knows, _ = scenario ~n () in
  let net = mk_net ~n config in
  let res = A2e.run ~net ~config ~knows ~coin:(fun ~iteration:_ _ -> None) in
  Array.iter
    (fun d -> Alcotest.(check (option int)) "undecided" None d)
    res.A2e.decided

let test_poisoned_replies_rejected () =
  (* Corrupt processors reply with a poison value to everything they can;
     the threshold keeps good processors from deciding on it. *)
  let n = 64 in
  let config, knows, coin = scenario ~n () in
  let poison_strategy =
    Ks_sim.Adversary.make ~name:"poison"
      ~initial_corruptions:(fun rng ~n ~budget ->
        Ks_sim.Adversary.uniform_random_set rng ~n ~budget)
      ~act:(fun view ->
        List.filter_map
          (fun e ->
            match e.Ks_sim.Types.payload with
            | A2e.Request label ->
              Some
                { Ks_sim.Types.src = e.Ks_sim.Types.dst;
                  dst = e.Ks_sim.Types.src;
                  payload = A2e.Reply { label; value = 666 } }
            | A2e.Reply _ -> None)
          view.Ks_sim.Types.view_visible)
      ()
  in
  let net = mk_net ~budget:16 ~strategy:poison_strategy ~n config in
  let res = A2e.run ~net ~config ~knows ~coin in
  Array.iteri
    (fun p d ->
      if not (Ks_sim.Net.is_corrupt net p) then
        match d with
        | Some v -> Alcotest.(check int) "poison rejected" 1 v
        | None -> ())
    res.A2e.decided

let test_overload_rule_fires () =
  let n = 64 in
  let config, knows, coin = scenario ~n () in
  (* One corrupt processor hammers a single victim with every label; when
     its guess matches the round's k the victim must go silent. *)
  let flood_strategy =
    Ks_sim.Adversary.make ~name:"hammer"
      ~initial_corruptions:(fun _ ~n:_ ~budget:_ -> [ 0 ])
      ~act:(fun view ->
        if view.Ks_sim.Types.view_round mod 2 = 0 then
          List.concat_map
            (fun label ->
              List.init ((n - 1) / config.A2e.labels) (fun _ ->
                  { Ks_sim.Types.src = 0; dst = 1; payload = A2e.Request label }))
            (List.init config.A2e.labels (fun l -> l))
        else [])
      ()
  in
  let net = mk_net ~budget:1 ~strategy:flood_strategy ~n config in
  let res = A2e.run ~net ~config ~knows ~coin in
  (* The flood is below the overload cap here, so the run still succeeds;
     the test pins the safety outcome. *)
  Array.iteri
    (fun p d ->
      if not (Ks_sim.Net.is_corrupt net p) then
        match d with
        | Some v -> Alcotest.(check int) "still correct" 1 v
        | None -> ())
    res.A2e.decided;
  Alcotest.(check bool) "overload counter sane" true (res.A2e.overloaded_events >= 0)

let () =
  Alcotest.run "ae_to_e"
    [
      ( "unit",
        [
          Alcotest.test_case "msg bits" `Quick test_msg_bits;
          Alcotest.test_case "rounds" `Quick test_rounds_needed;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "all knowledgeable" `Quick test_all_knowledgeable_decide;
          Alcotest.test_case "confused learn" `Quick test_confused_minority_learns;
          Alcotest.test_case "safety under crash" `Quick test_safety_under_corruption;
          Alcotest.test_case "sqrt-n bits" `Slow test_sqrt_n_bits;
          Alcotest.test_case "no coin, no decision" `Quick test_no_coin_no_decision;
          Alcotest.test_case "poison rejected" `Quick test_poisoned_replies_rejected;
          Alcotest.test_case "hammer flood" `Quick test_overload_rule_fires;
        ] );
    ]
