(* Reference decoder: the pre-optimization robust-decoding kernels, kept
   verbatim as an oracle for equivalence testing.

   The optimized `Shamir.best_codeword` memoizes window candidates by
   support mask and evaluates through precomputed barycentric weights;
   `Poly.lagrange_eval` now routes through `Poly.evaluator`.  Both are
   claimed to be *behaviour-preserving* — same polynomial, same
   None-on-tie verdicts, bit for bit.  This module is the slow, obviously
   correct original that the property tests in `test_shamir.ml` compare
   against.  Do not "optimize" this file; its value is that it never
   changed. *)

module Make (F : Ks_field.Field_intf.S) = struct
  module P = Ks_field.Poly.Make (F)
  module L = Ks_field.Linalg.Make (F)
  module Sh = Ks_shamir.Shamir.Make (F)

  let point index = F.of_int (index + 1)

  (* Pre-optimization Shamir.dedup: first-seen order per distinct index. *)
  let dedup shares =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun s ->
        if Hashtbl.mem seen s.Sh.index then false
        else begin
          Hashtbl.add seen s.Sh.index ();
          true
        end)
      shares

  (* Pre-optimization Poly.lagrange_eval: per-term numerator/denominator
     folds with a field division per point. *)
  let lagrange_eval pts x =
    let term (xi, yi) =
      let num, denom =
        List.fold_left
          (fun (num, denom) (xj, _) ->
            if F.equal xi xj then (num, denom)
            else (F.mul num (F.sub x xj), F.mul denom (F.sub xi xj)))
          (F.one, F.one)
          pts
      in
      F.mul yi (F.div num denom)
    in
    List.fold_left (fun acc pt -> F.add acc (term pt)) F.zero pts

  (* Pre-optimization Berlekamp–Welch with per-entry F.pow rows. *)
  let berlekamp_welch_poly ~threshold pts =
    let m = Array.length pts in
    let k = threshold + 1 in
    if m < k then None
    else begin
      let e_max = (m - k) / 2 in
      let matches poly =
        Array.fold_left
          (fun acc (x, y) -> if F.equal (P.eval poly x) y then acc + 1 else acc)
          0 pts
      in
      let try_e e =
        let nq = k + e in
        let ncols = nq + e in
        let a =
          Array.init m (fun i ->
              let x, y = pts.(i) in
              Array.init ncols (fun c ->
                  if c < nq then F.pow x c else F.neg (F.mul y (F.pow x (c - nq)))))
        in
        let b =
          Array.init m (fun i ->
              let x, y = pts.(i) in
              F.mul y (F.pow x e))
        in
        match L.solve a b with
        | None -> None
        | Some sol ->
          let q = P.of_coeffs (Array.sub sol 0 nq) in
          let e_coeffs = Array.append (Array.sub sol nq e) [| F.one |] in
          let err = P.of_coeffs e_coeffs in
          let quot, rem = P.divmod q err in
          if P.degree rem >= 0 then None
          else if P.degree quot > threshold then None
          else if matches quot >= Stdlib.max (k + 1) (m - e_max) then Some quot
          else None
      in
      let rec search e =
        if e < 0 then None
        else match try_e e with Some p -> Some p | None -> search (e - 1)
      in
      search e_max
    end

  (* Pre-optimization best_codeword: no support-mask memoization, naive
     O(k²)-per-eval window evaluators with a division per weight. *)
  let best_codeword ~threshold pts =
    let m = Array.length pts in
    let k = threshold + 1 in
    if m < k + 1 then None
    else if m > 62 then berlekamp_welch_poly ~threshold pts
    else begin
      let e_max = (m - k) / 2 in
      let radius_accept = Stdlib.max (k + 1) (m - e_max) in
      let support_of eval =
        let mask = ref 0 and count = ref 0 in
        for p = 0 to m - 1 do
          let x, y = pts.(p) in
          if F.equal (eval x) y then begin
            mask := !mask lor (1 lsl p);
            incr count
          end
        done;
        (!mask, !count)
      in
      let strides =
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        List.filter (fun s -> s < m && m / gcd s m >= k) [ 1; 3; 7; 11; 13 ]
      in
      let subsets =
        List.concat_map
          (fun s ->
            List.init m (fun start -> Array.init k (fun j -> (start + (j * s)) mod m)))
          strides
      in
      let best = ref (0, 0) and second_count = ref 0 in
      let winner = ref None in
      let eval_of_subset idx =
        let weights =
          Array.map
            (fun i ->
              let xi, yi = pts.(i) in
              let den = ref F.one in
              Array.iter
                (fun j ->
                  if j <> i then begin
                    let xj, _ = pts.(j) in
                    den := F.mul !den (F.sub xi xj)
                  end)
                idx;
              F.div yi !den)
            idx
        in
        fun x ->
          let acc = ref F.zero in
          for a = 0 to k - 1 do
            let prod = ref weights.(a) in
            for b = 0 to k - 1 do
              if b <> a then begin
                let xb, _ = pts.(idx.(b)) in
                prod := F.mul !prod (F.sub x xb)
              end
            done;
            acc := F.add !acc !prod
          done;
          !acc
      in
      let rec scan = function
        | [] -> ()
        | idx :: rest ->
          let eval = eval_of_subset idx in
          let mask, count = support_of eval in
          if count >= radius_accept then winner := Some idx
          else begin
            let bmask, bcount = !best in
            if mask <> bmask then begin
              if count > bcount then begin
                if bcount > !second_count then second_count := bcount;
                best := (mask, count)
              end
              else if count > !second_count then second_count := count
            end;
            scan rest
          end
      in
      scan subsets;
      match !winner with
      | Some idx ->
        Some (P.interpolate (List.map (fun i -> pts.(i)) (Array.to_list idx)))
      | None ->
        let bw = berlekamp_welch_poly ~threshold pts in
        let bw_scored =
          Option.map
            (fun poly ->
              let mask, count = support_of (P.eval poly) in
              (poly, mask, count))
            bw
        in
        let bmask, bcount = !best in
        (match bw_scored with
         | Some (poly, mask, count) when mask <> bmask && count > bcount ->
           if count >= k + 1 && count > bcount then Some poly else None
         | _ ->
           if bcount >= k + 1 && bcount > !second_count then begin
             let pts_of_mask =
               List.filteri (fun i _ -> bmask land (1 lsl i) <> 0)
                 (Array.to_list pts)
             in
             let chosen = List.filteri (fun i _ -> i < k) pts_of_mask in
             Some (P.interpolate chosen)
           end
           else None)
    end

  let reconstruct_robust ~threshold shares =
    let shares = dedup shares in
    let pts = Array.of_list (List.map (fun s -> (point s.Sh.index, s.Sh.value)) shares) in
    Option.map (fun p -> P.eval p F.zero) (best_codeword ~threshold pts)
end
