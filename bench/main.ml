(* Benchmark harness for the King–Saia reproduction.

   Modes:
   - no arguments / [--quick]: regenerate every experiment table of
     EXPERIMENTS.md (T1–T10) by running the full protocol stack, the
     baselines and the substrate measurements.
   - [--table tN]: regenerate a single table.
   - [--bechamel]: wall-clock micro-benchmarks, one [Test.make] per table
     (the dominating kernel of each experiment). *)

module Experiments = Ks_workload.Experiments
module Attacks = Ks_workload.Attacks
module Inputs = Ks_workload.Inputs
module Params = Ks_core.Params
module Prng = Ks_stdx.Prng

let scaling_pts = lazy (Experiments.collect_scaling ~ns:[ 64; 128; 256 ] ~seeds:[ 1 ])

let known_tables = List.init 15 (fun i -> Printf.sprintf "t%d" (i + 1))

let run_table = function
  | "t1" -> ignore (Experiments.t1_bits (Lazy.force scaling_pts))
  | "t2" -> ignore (Experiments.t2_latency (Lazy.force scaling_pts))
  | "t3" -> ignore (Experiments.t3_ae_agreement ())
  | "t4" -> ignore (Experiments.t4_aeba_coins ())
  | "t5" -> ignore (Experiments.t5_election ())
  | "t6" -> ignore (Experiments.t6_a2e ())
  | "t7" -> ignore (Experiments.t7_hiding ())
  | "t8" -> ignore (Experiments.t8_samplers ())
  | "t9" -> ignore (Experiments.t9_threshold ())
  | "t10" -> ignore (Experiments.t10_crossover (Lazy.force scaling_pts))
  | "t11" -> ignore (Experiments.t11_ablation ())
  | "t12" -> ignore (Experiments.t12_universe ())
  | "t13" -> ignore (Experiments.t13_kssv ())
  | "t14" -> ignore (Experiments.t14_parameters ())
  | "t15" -> ignore (Experiments.t15_async ())
  | other ->
    (* Callers validate against [known_tables] first; keep a hard failure
       here so the two lists cannot silently drift apart. *)
    invalid_arg (Printf.sprintf "run_table: %S not in t1..t15" other)

(* --- Bechamel micro-benchmarks: one kernel per table. --- *)

let everywhere_kernel ~n ~scenario ~seed () =
  let params = Params.practical n in
  let rng = Prng.create seed in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  let tree = Ks_topology.Tree.build (Prng.split rng) (Params.tree_config params) in
  let budget = Attacks.budget_of scenario ~params in
  Ks_core.Everywhere.run ~params ~seed ~inputs ~behavior:scenario.Attacks.behavior
    ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
    ~a2e_strategy:(fun ~carried ~coin ->
      Attacks.a2e_strategy scenario ~params ~coin ~carried)
    ~budget ()

let ae_ba_kernel ~n ~seed () =
  let params = Params.practical n in
  let rng = Prng.create seed in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  let tree = Ks_topology.Tree.build (Prng.split rng) (Params.tree_config params) in
  let scenario = Attacks.byzantine_static in
  Ks_core.Ae_ba.run ~params ~seed ~inputs ~behavior:scenario.Attacks.behavior
    ~strategy:(Attacks.tree_strategy scenario ~params ~tree)
    ~budget:(Attacks.budget_of scenario ~params) ()

let aeba_coin_kernel ~n ~seed () =
  let params = Params.practical n in
  let rng = Prng.create seed in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  Ks_core.Aeba_coin.run_standalone ~seed ~n ~degree:params.Params.aeba_degree
    ~rounds:8 ~epsilon:params.Params.epsilon ~budget:(n / 4) ~inputs
    ~strategy:(Attacks.vote_flipper Attacks.byzantine_static ~params)
    ~coin:Ks_core.Aeba_coin.Ideal ()

let a2e_kernel ~n ~seed () =
  let params = Params.practical n in
  let config = Ks_core.Ae_to_e.config_of_params params in
  let net =
    Ks_sim.Net.create ~label:"a2e" ~seed ~n ~budget:0
      ~msg_bits:Ks_core.Ae_to_e.msg_bits
      ~strategy:Ks_sim.Adversary.none ()
  in
  Ks_core.Ae_to_e.run ~net ~config
    ~knows:(fun _ -> Some 1)
    ~coin:(fun ~iteration _ -> Some (iteration mod config.Ks_core.Ae_to_e.labels))

let shamir_kernel ~seed () =
  let module Sh = Ks_shamir.Shamir.Make (Ks_field.Zp) in
  let rng = Prng.create seed in
  let shares = Sh.deal rng ~threshold:5 ~holders:16 (Ks_field.Zp.of_int 123) in
  shares.(3) <- { shares.(3) with Sh.value = Ks_field.Zp.of_int 1 };
  Sh.reconstruct_robust ~threshold:5 (Array.to_list shares)

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"t1/t10: everywhere BA, n=32, 25% byz"
      (Staged.stage (everywhere_kernel ~n:32 ~scenario:Attacks.byzantine_static ~seed:1L));
    Test.make ~name:"t2: rabin all-to-all, n=256"
      (Staged.stage (fun () ->
           Ks_baselines.Rabin.run ~seed:1L ~n:256 ~budget:64 ~rounds:16 ~epsilon:0.08
             ~inputs:(Array.init 256 (fun i -> i mod 2 = 0))
             ~strategy:Ks_sim.Adversary.crash_random));
    Test.make ~name:"t3: almost-everywhere BA, n=32"
      (Staged.stage (ae_ba_kernel ~n:32 ~seed:2L));
    Test.make ~name:"t4: algorithm 5, n=256, 8 rounds"
      (Staged.stage (aeba_coin_kernel ~n:256 ~seed:3L));
    Test.make ~name:"t5: feige election, r=256"
      (Staged.stage (fun () ->
           let rng = Prng.create 4L in
           let bins = Array.init 256 (fun _ -> Prng.int rng 32) in
           Ks_core.Election.winner_indices ~num_bins:32 ~target:8 bins));
    Test.make ~name:"t6: almost-everywhere-to-everywhere, n=256"
      (Staged.stage (a2e_kernel ~n:256 ~seed:5L));
    Test.make ~name:"t7: shamir robust reconstruct (16,6)+err"
      (Staged.stage (shamir_kernel ~seed:6L));
    Test.make ~name:"t8: sampler build r=s=1024 d=16"
      (Staged.stage (fun () ->
           Ks_sampler.Sampler.create (Prng.create 7L) ~r:1024 ~s:1024 ~d:16));
    Test.make ~name:"t9: everywhere BA at the threshold, n=32, 33%"
      (Staged.stage (fun () ->
           everywhere_kernel ~n:32 ~scenario:Attacks.byzantine_static ~seed:8L ()));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 5.0) ~kde:None () in
  let analysis = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  Printf.printf "\n== Bechamel micro-benchmarks (one kernel per table) ==\n";
  Printf.printf "%-50s %16s\n" "kernel" "time/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let ols = Analyze.one analysis Instance.monotonic_clock raw in
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
            let human =
              if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
              else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
              else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
              else Printf.sprintf "%.0f ns" t
            in
            Printf.printf "%-50s %16s\n%!" (Test.Elt.name elt) human
          | Some [] | None ->
            Printf.printf "%-50s %16s\n%!" (Test.Elt.name elt) "n/a")
        (Test.elements test))
    bechamel_tests

let usage_and_exit () =
  prerr_endline "usage: main.exe [--quick | --table tN | --bechamel] [--trace FILE]";
  Printf.eprintf "  tables: %s\n" (String.concat " " known_tables);
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* [--trace FILE] streams the JSONL event trace of whatever runs. *)
  let trace, args =
    let rec strip acc = function
      | "--trace" :: file :: rest ->
        let sink =
          try Ks_monitor.Trace.file file
          with Sys_error e ->
            Printf.eprintf "bench: --trace: %s\n" e;
            exit 2
        in
        (Some sink, List.rev_append acc rest)
      | [ "--trace" ] ->
        prerr_endline "bench: --trace requires a FILE argument";
        usage_and_exit ()
      | a :: rest -> strip (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    strip [] args
  in
  let traced f =
    match trace with
    | None -> f ()
    | Some sink ->
      let hub = Ks_monitor.Hub.create ~trace:sink [] in
      Ks_monitor.Hub.with_ambient hub f;
      ignore (Ks_monitor.Hub.finish hub)
  in
  (* Exactly one mode; anything unrecognised is an error, not a no-op. *)
  match args with
  | [ "--bechamel" ] -> run_bechamel ()
  | [ "--table" ] ->
    prerr_endline "bench: --table requires a table name";
    usage_and_exit ()
  | [ "--table"; name ] ->
    if List.mem name known_tables then traced (fun () -> run_table name)
    else begin
      Printf.eprintf "bench: unknown table %S (expected t1..t15)\n" name;
      usage_and_exit ()
    end
  | [ "--quick" ] -> Experiments.run_all ~quick:true ?trace ()
  | [] -> Experiments.run_all ?trace ()
  | args ->
    let known a = List.mem a [ "--quick"; "--bechamel"; "--table" ] in
    (match List.find_opt (fun a -> not (known a)) args with
     | Some unknown when String.length unknown > 0 && unknown.[0] = '-' ->
       Printf.eprintf "bench: unknown option %s\n" unknown
     | Some stray -> Printf.eprintf "bench: unexpected argument %s\n" stray
     | None -> prerr_endline "bench: expected exactly one mode");
    usage_and_exit ()
