(* Benchmark harness for the King–Saia reproduction.

   Modes:
   - no arguments / [--quick]: regenerate every experiment table of
     EXPERIMENTS.md (T1–T10) by running the full protocol stack, the
     baselines and the substrate measurements.
   - [--table tN]: regenerate a single table.
   - [--bechamel]: wall-clock micro-benchmarks, one [Test.make] per table
     (the dominating kernel of each experiment).
   - [--json FILE]: coding-kernel micro-benchmarks (field mul, Lagrange
     evaluation, robust Reed–Solomon decoding at protocol sizes), written
     as machine-readable JSON (schema ks-bench/1) so the perf trajectory
     is a tracked artifact — see docs/PERF.md.  [--baseline FILE]
     additionally prints a speedup-vs-baseline table and flags kernels
     that regressed more than 2x after machine-speed normalisation
     ([--enforce-baseline] turns the flag into a non-zero exit). *)

module Experiments = Ks_workload.Experiments
module Attacks = Ks_workload.Attacks
module Inputs = Ks_workload.Inputs
module Params = Ks_core.Params
module Prng = Ks_stdx.Prng

let scaling_pts = lazy (Experiments.collect_scaling ~ns:[ 64; 128; 256 ] ~seeds:[ 1 ])

let known_tables = List.init 17 (fun i -> Printf.sprintf "t%d" (i + 1))

let run_table = function
  | "t1" -> ignore (Experiments.t1_bits (Lazy.force scaling_pts))
  | "t2" -> ignore (Experiments.t2_latency (Lazy.force scaling_pts))
  | "t3" -> ignore (Experiments.t3_ae_agreement ())
  | "t4" -> ignore (Experiments.t4_aeba_coins ())
  | "t5" -> ignore (Experiments.t5_election ())
  | "t6" -> ignore (Experiments.t6_a2e ())
  | "t7" -> ignore (Experiments.t7_hiding ())
  | "t8" -> ignore (Experiments.t8_samplers ())
  | "t9" -> ignore (Experiments.t9_threshold ())
  | "t10" -> ignore (Experiments.t10_crossover (Lazy.force scaling_pts))
  | "t11" -> ignore (Experiments.t11_ablation ())
  | "t12" -> ignore (Experiments.t12_universe ())
  | "t13" -> ignore (Experiments.t13_kssv ())
  | "t14" -> ignore (Experiments.t14_parameters ())
  | "t15" -> ignore (Experiments.t15_async ())
  | "t16" -> ignore (Experiments.t16_faults ())
  | "t17" -> ignore (Experiments.t17_attacks ())
  | other ->
    (* Callers validate against [known_tables] first; keep a hard failure
       here so the two lists cannot silently drift apart. *)
    invalid_arg (Printf.sprintf "run_table: %S not in t1..t17" other)

(* --- Bechamel micro-benchmarks: one kernel per table. --- *)

let everywhere_kernel ~n ~scenario ~seed () =
  let params = Params.practical n in
  let rng = Prng.create seed in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  let tree = Ks_topology.Tree.build (Prng.split rng) (Params.tree_config params) in
  let budget = Attacks.budget_of scenario ~params in
  Ks_core.Everywhere.run ~params ~seed ~inputs ~behavior:scenario.Attacks.behavior
    ~tree_strategy:(Attacks.tree_strategy scenario ~params ~tree)
    ~a2e_strategy:(fun ~carried ~coin ->
      Attacks.a2e_strategy scenario ~params ~coin ~carried)
    ~budget ()

let ae_ba_kernel ~n ~seed () =
  let params = Params.practical n in
  let rng = Prng.create seed in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  let tree = Ks_topology.Tree.build (Prng.split rng) (Params.tree_config params) in
  let scenario = Attacks.byzantine_static in
  Ks_core.Ae_ba.run ~params ~seed ~inputs ~behavior:scenario.Attacks.behavior
    ~strategy:(Attacks.tree_strategy scenario ~params ~tree)
    ~budget:(Attacks.budget_of scenario ~params) ()

let aeba_coin_kernel ~n ~seed () =
  let params = Params.practical n in
  let rng = Prng.create seed in
  let inputs = Inputs.generate rng ~n Inputs.Split in
  Ks_core.Aeba_coin.run_standalone ~seed ~n ~degree:params.Params.aeba_degree
    ~rounds:8 ~epsilon:params.Params.epsilon ~budget:(n / 4) ~inputs
    ~strategy:(Attacks.vote_flipper Attacks.byzantine_static ~params)
    ~coin:Ks_core.Aeba_coin.Ideal ()

let a2e_kernel ~n ~seed () =
  let params = Params.practical n in
  let config = Ks_core.Ae_to_e.config_of_params params in
  let net =
    Ks_sim.Net.create ~label:"a2e" ~seed ~n ~budget:0
      ~msg_bits:Ks_core.Ae_to_e.msg_bits
      ~strategy:Ks_sim.Adversary.none ()
  in
  Ks_core.Ae_to_e.run ~net ~config
    ~knows:(fun _ -> Some 1)
    ~coin:(fun ~iteration _ -> Some (iteration mod config.Ks_core.Ae_to_e.labels))

let shamir_kernel ~seed () =
  let module Sh = Ks_shamir.Shamir.Make (Ks_field.Zp) in
  let rng = Prng.create seed in
  let shares = Sh.deal rng ~threshold:5 ~holders:16 (Ks_field.Zp.of_int 123) in
  shares.(3) <- { shares.(3) with Sh.value = Ks_field.Zp.of_int 1 };
  Sh.reconstruct_robust ~threshold:5 (Array.to_list shares)

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"t1/t10: everywhere BA, n=32, 25% byz"
      (Staged.stage (everywhere_kernel ~n:32 ~scenario:Attacks.byzantine_static ~seed:1L));
    Test.make ~name:"t2: rabin all-to-all, n=256"
      (Staged.stage (fun () ->
           Ks_baselines.Rabin.run ~seed:1L ~n:256 ~budget:64 ~rounds:16 ~epsilon:0.08
             ~inputs:(Array.init 256 (fun i -> i mod 2 = 0))
             ~strategy:Ks_sim.Adversary.crash_random));
    Test.make ~name:"t3: almost-everywhere BA, n=32"
      (Staged.stage (ae_ba_kernel ~n:32 ~seed:2L));
    Test.make ~name:"t4: algorithm 5, n=256, 8 rounds"
      (Staged.stage (aeba_coin_kernel ~n:256 ~seed:3L));
    Test.make ~name:"t5: feige election, r=256"
      (Staged.stage (fun () ->
           let rng = Prng.create 4L in
           let bins = Array.init 256 (fun _ -> Prng.int rng 32) in
           Ks_core.Election.winner_indices ~num_bins:32 ~target:8 bins));
    Test.make ~name:"t6: almost-everywhere-to-everywhere, n=256"
      (Staged.stage (a2e_kernel ~n:256 ~seed:5L));
    Test.make ~name:"t7: shamir robust reconstruct (16,6)+err"
      (Staged.stage (shamir_kernel ~seed:6L));
    Test.make ~name:"t8: sampler build r=s=1024 d=16"
      (Staged.stage (fun () ->
           Ks_sampler.Sampler.create (Prng.create 7L) ~r:1024 ~s:1024 ~d:16));
    Test.make ~name:"t9: everywhere BA at the threshold, n=32, 33%"
      (Staged.stage (fun () ->
           everywhere_kernel ~n:32 ~scenario:Attacks.byzantine_static ~seed:8L ()));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 5.0) ~kde:None () in
  let analysis = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  Printf.printf "\n== Bechamel micro-benchmarks (one kernel per table) ==\n";
  Printf.printf "%-50s %16s\n" "kernel" "time/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let ols = Analyze.one analysis Instance.monotonic_clock raw in
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
            let human =
              if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
              else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
              else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
              else Printf.sprintf "%.0f ns" t
            in
            Printf.printf "%-50s %16s\n%!" (Test.Elt.name elt) human
          | Some [] | None ->
            Printf.printf "%-50s %16s\n%!" (Test.Elt.name elt) "n/a")
        (Test.elements test))
    bechamel_tests

(* --- Coding-kernel micro-benchmarks with machine-readable output. ---

   Each kernel is a pure decode/arithmetic hot path with deterministic,
   pre-built inputs (the PRNG seeds are fixed, so every run measures the
   same work).  Sizes n in {64, 128, 256} derive holder counts and
   thresholds exactly as the protocol does ([Params.practical]). *)

module Kernels = struct
  module Zp = Ks_field.Zp
  module Gf = Ks_field.Gf256
  module PZ = Ks_field.Poly.Make (Ks_field.Zp)
  module Sh = Ks_shamir.Shamir.Make (Ks_field.Zp)

  let protocol_sizes = [ 64; 128; 256 ]

  let mul_zp =
    let rng = Prng.create 101L in
    let xs = Array.init 256 (fun _ -> Zp.random_nonzero rng) in
    fun () ->
      let acc = ref Zp.one in
      for i = 0 to 255 do
        acc := Zp.mul !acc xs.(i)
      done;
      ignore (Sys.opaque_identity !acc)

  let mul_gf256 =
    let rng = Prng.create 102L in
    let xs = Array.init 256 (fun _ -> Gf.random_nonzero rng) in
    fun () ->
      let acc = ref Gf.one in
      for i = 0 to 255 do
        acc := Gf.mul !acc xs.(i)
      done;
      ignore (Sys.opaque_identity !acc)

  let lagrange_eval =
    let rng = Prng.create 103L in
    let pts = List.init 12 (fun i -> (Zp.of_int (i + 1), Zp.random rng)) in
    let xs = Array.init 16 (fun i -> Zp.of_int (100 + i)) in
    fun () ->
      let acc = ref Zp.zero in
      Array.iter (fun x -> acc := Zp.add !acc (PZ.lagrange_eval pts x)) xs;
      ignore (Sys.opaque_identity !acc)

  let interp_zero =
    let rng = Prng.create 104L in
    let shares = Sh.deal rng ~threshold:5 ~holders:12 (Zp.of_int 4242) in
    let shares = Array.to_list shares in
    fun () -> ignore (Sys.opaque_identity (Sh.reconstruct ~threshold:5 shares))

  (* Robust word decode at protocol sizes: holders = k1(n), protocol
     threshold, [errors_of ~radius] corrupted shares. *)
  let robust_case ~n ~errors_of =
    let params = Params.practical n in
    let holders = params.Params.k1 in
    let threshold = Params.share_threshold params ~holders in
    let rng = Prng.create (Int64.of_int (7700 + n)) in
    let secret = Zp.random rng in
    let shares = Sh.deal rng ~threshold ~holders secret in
    let radius = (holders - threshold - 1) / 2 in
    let errors = errors_of ~radius in
    let idx = Prng.sample_without_replacement rng ~n:holders ~k:errors in
    Array.iter
      (fun i -> shares.(i) <- { shares.(i) with Sh.value = Zp.random rng })
      idx;
    let shares = Array.to_list shares in
    fun () ->
      ignore (Sys.opaque_identity (Sh.reconstruct_robust ~threshold shares))

  (* Vector decode (the sendDown hot path): 32-word vectors, two wholly
     corrupted holders plus one word-targeted lie, which forces the probe
     decode and at least one per-word fallback. *)
  let vectors_case ~n =
    let params = Params.practical n in
    let holders = params.Params.k1 in
    let threshold = Params.share_threshold params ~holders in
    let rng = Prng.create (Int64.of_int (8800 + n)) in
    let words = Array.init 32 (fun _ -> Zp.random rng) in
    let xs = Array.init holders (fun i -> i) in
    let per_holder = Sh.deal_vector_at rng ~threshold ~xs words in
    for h = 0 to 1 do
      per_holder.(h) <- Array.map (fun _ -> Zp.random rng) per_holder.(h)
    done;
    per_holder.(2).(17) <- Zp.random rng;
    let holders_l = List.init holders (fun h -> (xs.(h), per_holder.(h))) in
    fun () ->
      ignore
        (Sys.opaque_identity (Sh.reconstruct_vectors ~threshold holders_l))

  let all () =
    [
      ("field/zp_mul_256", mul_zp);
      ("field/gf256_mul_256", mul_gf256);
      ("poly/lagrange_eval_k12_x16", lagrange_eval);
      ("shamir/interp_zero_m12_t5", interp_zero);
    ]
    @ List.concat_map
        (fun n ->
          [
            ( Printf.sprintf "shamir/robust_scatter_n%d" n,
              robust_case ~n ~errors_of:(fun ~radius -> Stdlib.max 1 (radius - 1)) );
            ( Printf.sprintf "shamir/robust_radius_n%d" n,
              robust_case ~n ~errors_of:(fun ~radius -> radius) );
            (Printf.sprintf "shamir/vectors32_n%d" n, vectors_case ~n);
          ])
        protocol_sizes
end

type kernel_result = { name : string; ns_per_op : float; words_per_op : float }

let measure_kernels ~quick =
  let open Bechamel in
  let open Toolkit in
  let quota = if quick then 0.5 else 2.0 in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second quota) ~kde:None () in
  let analysis = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  List.map
    (fun (name, fn) ->
      let test = Test.make ~name (Staged.stage fn) in
      let elt = List.hd (Test.elements test) in
      let raw = Benchmark.run cfg Instance.[ minor_allocated; monotonic_clock ] elt in
      let est instance =
        let ols = Analyze.one analysis instance raw in
        match Analyze.OLS.estimates ols with
        | Some (v :: _) -> v
        | Some [] | None -> Float.nan
      in
      let r =
        {
          name;
          ns_per_op = est Instance.monotonic_clock;
          words_per_op = est Instance.minor_allocated;
        }
      in
      Printf.printf "%-32s %12.0f ns/op %12.0f w/op\n%!" r.name r.ns_per_op
        r.words_per_op;
      r)
    (Kernels.all ())

let write_json path results =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"ks-bench/1\",\n  \"kernels\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_op\": %.2f, \"words_per_op\": %.2f}%s\n"
        r.name r.ns_per_op r.words_per_op
        (if i = last then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

(* Minimal parser for the flat ks-bench/1 schema this binary writes: scan
   "name" / "ns_per_op" field pairs.  Kernel names contain no escapes. *)
let parse_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let find_from needle i =
    let nn = String.length needle and nt = String.length text in
    let rec go i =
      if i + nn > nt then None
      else if String.sub text i nn = needle then Some (i + nn)
      else go (i + 1)
    in
    go i
  in
  let rec scan i acc =
    match find_from "\"name\": \"" i with
    | None -> List.rev acc
    | Some j ->
      let close = String.index_from text j '"' in
      let name = String.sub text j (close - j) in
      (match find_from "\"ns_per_op\": " close with
       | None -> failwith "parse_baseline: missing ns_per_op"
       | Some k ->
         let stop = ref k in
         while
           !stop < String.length text
           && (match text.[!stop] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
         do
           incr stop
         done;
         let ns = float_of_string (String.sub text k (!stop - k)) in
         scan !stop ((name, ns) :: acc))
  in
  match find_from "ks-bench/1" 0 with
  | None -> failwith (path ^ ": not a ks-bench/1 file")
  | Some _ -> scan 0 []

(* Speedup table plus a regression gate.  Raw ratios confound machine
   speed with code changes when the baseline was recorded elsewhere, so
   the gate normalises by the median ratio: a uniformly slower machine
   moves every ratio equally and trips nothing, while a single kernel
   regressing > 2x relative to its peers is flagged.  A kernel must also
   be absolutely slower than its baseline to flag — when most kernels
   just got faster, the ones left unchanged are not regressions. *)
let compare_baseline ~enforce results baseline =
  let rows =
    List.filter_map
      (fun r ->
        match List.assoc_opt r.name baseline with
        | Some base when base > 0.0 && Float.is_finite r.ns_per_op ->
          Some (r.name, base, r.ns_per_op, r.ns_per_op /. base)
        | Some _ | None -> None)
      results
  in
  if rows = [] then begin
    prerr_endline "bench: baseline shares no kernels with this run";
    exit 2
  end;
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let m = median (List.map (fun (_, _, _, r) -> r) rows) in
  Printf.printf "\n%-32s %14s %14s %9s\n" "kernel" "baseline" "current" "speedup";
  List.iter
    (fun (name, base, now, _) ->
      Printf.printf "%-32s %11.0f ns %11.0f ns %8.2fx\n" name base now (base /. now))
    rows;
  let flagged = List.filter (fun (_, _, _, r) -> r > 1.0 && r > 2.0 *. m) rows in
  List.iter
    (fun (name, base, now, r) ->
      Printf.eprintf
        "bench: REGRESSION %s: %.0f -> %.0f ns/op (%.2fx vs %.2fx median)\n" name
        base now r m)
    flagged;
  if flagged <> [] && enforce then exit 1

let run_json ~quick ~json ~baseline ~enforce =
  let results = measure_kernels ~quick in
  write_json json results;
  Printf.printf "bench: wrote %s (%d kernels, schema ks-bench/1)\n" json
    (List.length results);
  match baseline with
  | None -> ()
  | Some path ->
    (match parse_baseline path with
     | baseline -> compare_baseline ~enforce results baseline
     | exception (Sys_error e | Failure e) ->
       Printf.eprintf "bench: --baseline: %s\n" e;
       exit 2)

let usage_and_exit () =
  prerr_endline
    "usage: main.exe [--quick | --table tN | --bechamel | --json FILE] [--trace FILE]";
  prerr_endline "                [--baseline FILE] [--enforce-baseline]";
  Printf.eprintf "  tables: %s\n" (String.concat " " known_tables);
  prerr_endline "  --json FILE: coding-kernel microbenchmarks as ks-bench/1 JSON";
  prerr_endline "               (--quick shortens the measurement quota;";
  prerr_endline "                --baseline FILE prints a speedup table and flags >2x";
  prerr_endline "                normalised regressions, fatal with --enforce-baseline)";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* [--trace FILE] streams the JSONL event trace of whatever runs. *)
  let trace, args =
    let rec strip acc = function
      | "--trace" :: file :: rest ->
        let sink =
          try Ks_monitor.Trace.file file
          with Sys_error e ->
            Printf.eprintf "bench: --trace: %s\n" e;
            exit 2
        in
        (Some sink, List.rev_append acc rest)
      | [ "--trace" ] ->
        prerr_endline "bench: --trace requires a FILE argument";
        usage_and_exit ()
      | a :: rest -> strip (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    strip [] args
  in
  (* [--json FILE] / [--baseline FILE] / [--enforce-baseline] select and
     configure the coding-kernel microbenchmark mode. *)
  let take_file flag args =
    let rec strip acc = function
      | f :: file :: rest when f = flag && String.length file > 0 && file.[0] <> '-' ->
        (Some file, List.rev_append acc rest)
      | [ f ] when f = flag ->
        Printf.eprintf "bench: %s requires a FILE argument\n" flag;
        usage_and_exit ()
      | f :: _ when f = flag ->
        Printf.eprintf "bench: %s requires a FILE argument\n" flag;
        usage_and_exit ()
      | a :: rest -> strip (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    strip [] args
  in
  let json, args = take_file "--json" args in
  let baseline, args = take_file "--baseline" args in
  let enforce = List.mem "--enforce-baseline" args in
  let args = List.filter (fun a -> a <> "--enforce-baseline") args in
  (match json, baseline, enforce with
   | None, Some _, _ | None, _, true ->
     prerr_endline "bench: --baseline/--enforce-baseline need --json FILE";
     usage_and_exit ()
   | _ -> ());
  match json with
  | Some json ->
    (match args with
     | [] -> run_json ~quick:false ~json ~baseline ~enforce
     | [ "--quick" ] -> run_json ~quick:true ~json ~baseline ~enforce
     | _ ->
       prerr_endline "bench: --json combines only with --quick/--baseline";
       usage_and_exit ())
  | None ->
    let traced f =
      match trace with
      | None -> f ()
      | Some sink ->
        let hub = Ks_monitor.Hub.create ~trace:sink [] in
        Ks_monitor.Hub.with_ambient hub f;
        ignore (Ks_monitor.Hub.finish hub)
    in
    (* Exactly one mode; anything unrecognised is an error, not a no-op. *)
    (match args with
     | [ "--bechamel" ] -> run_bechamel ()
     | [ "--table" ] ->
       prerr_endline "bench: --table requires a table name";
       usage_and_exit ()
     | [ "--table"; name ] ->
       if List.mem name known_tables then traced (fun () -> run_table name)
       else begin
         Printf.eprintf "bench: unknown table %S (expected t1..t17)\n" name;
         usage_and_exit ()
       end
     | [ "--quick" ] -> Experiments.run_all ~quick:true ?trace ()
     | [] -> Experiments.run_all ?trace ()
     | args ->
       let known a = List.mem a [ "--quick"; "--bechamel"; "--table" ] in
       (match List.find_opt (fun a -> not (known a)) args with
        | Some unknown when String.length unknown > 0 && unknown.[0] = '-' ->
          Printf.eprintf "bench: unknown option %s\n" unknown
        | Some stray -> Printf.eprintf "bench: unexpected argument %s\n" stray
        | None -> prerr_endline "bench: expected exactly one mode");
       usage_and_exit ())
